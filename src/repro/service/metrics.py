"""Service metrics: Prometheus text-format counters, gauges, histograms.

``GET /metrics`` renders this registry in the Prometheus exposition
format (text/plain; version=0.0.4) using only the stdlib.  Three kinds of
series are exposed:

* **counters** — request totals by endpoint/status, cache hits by tier,
  pool recycles, admission rejections;
* **gauges** — sampled at render time through registered callables:
  queue depth, in-flight requests, cache hit rate, pool workers, uptime;
* **histograms** — request latency per endpoint and *per-stage* pipeline
  latency (``repro_stage_seconds``), fed from the per-request
  :class:`~repro.pipeline.instrumentation.PipelineInstrumentation`
  records that workers ship back with each response.

Thread-safe: the event loop and the loadgen-facing render path touch the
registry from one thread, but worker completions may be recorded from
executor callback threads.

Histograms optionally carry **exemplars** — the last ``trace_id`` whose
observation landed in each bucket.  They surface only in the
OpenMetrics-style rendering (``render(exemplars=True)``, negotiated via
``Accept: application/openmetrics-text``) as
``bucket{...} N # {trace_id="..."} value`` suffixes; the default
Prometheus 0.0.4 text stays byte-compatible with earlier releases.
That links "the p99 is slow" directly to a persisted request trace
(docs/OBSERVABILITY.md).

Trust: **advisory** — observability only; nothing here feeds a verdict.
"""

from __future__ import annotations

import threading
from bisect import bisect_left
from typing import Callable, Dict, Iterable, List, Mapping, Optional, Tuple

#: Default latency buckets (seconds) — spans sub-millisecond parse times
#: through multi-second MPP checks.
DEFAULT_BUCKETS: Tuple[float, ...] = (
    0.001, 0.0025, 0.005, 0.01, 0.025, 0.05, 0.1, 0.25, 0.5, 1.0, 2.5, 5.0, 10.0,
)

LabelItems = Tuple[Tuple[str, str], ...]


def _labels(labels: Optional[Mapping[str, str]]) -> LabelItems:
    return tuple(sorted((labels or {}).items()))


def _render_labels(items: LabelItems, extra: Optional[Mapping[str, str]] = None) -> str:
    merged = dict(items)
    if extra:
        merged.update(extra)
    if not merged:
        return ""
    body = ",".join(f'{k}="{v}"' for k, v in sorted(merged.items()))
    return "{" + body + "}"


def _format_value(value: float) -> str:
    if value == float("inf"):
        return "+Inf"
    if float(value).is_integer():
        return str(int(value))
    return repr(float(value))


class Histogram:
    """A fixed-bucket latency histogram (cumulative, Prometheus-style)."""

    def __init__(self, buckets: Iterable[float] = DEFAULT_BUCKETS):
        self.buckets: Tuple[float, ...] = tuple(sorted(buckets))
        if not self.buckets:
            raise ValueError("histogram needs at least one bucket")
        self.counts: List[int] = [0] * len(self.buckets)
        self.count = 0
        self.sum = 0.0
        #: Last (value, trace_id) observed per bucket index; the +Inf
        #: overflow bucket lives at index ``len(self.buckets)``.
        self.exemplars: Dict[int, Tuple[float, str]] = {}

    def observe(self, value: float, exemplar: Optional[str] = None) -> None:
        index = bisect_left(self.buckets, value)
        if index < len(self.counts):
            self.counts[index] += 1
        self.count += 1
        self.sum += value
        if exemplar:
            self.exemplars[min(index, len(self.buckets))] = (value, exemplar)

    def cumulative(self) -> List[Tuple[float, int]]:
        """``(upper_bound, cumulative_count)`` pairs, ending with +Inf."""
        out: List[Tuple[float, int]] = []
        running = 0
        for bound, count in zip(self.buckets, self.counts):
            running += count
            out.append((bound, running))
        out.append((float("inf"), self.count))
        return out


class ServiceMetrics:
    """The service-wide metric registry."""

    def __init__(self) -> None:
        self._lock = threading.Lock()
        self._counters: Dict[Tuple[str, LabelItems], float] = {}
        self._histograms: Dict[Tuple[str, LabelItems], Histogram] = {}
        self._gauges: Dict[Tuple[str, LabelItems], Callable[[], float]] = {}
        self._help: Dict[str, str] = {}
        # Every registry — node or router — identifies its build, so a
        # mixed-version fleet is visible during rolling restarts:
        # sum(repro_build_info) by (version) counts instances per version.
        from .. import __version__

        self.register_gauge(
            "repro_build_info",
            lambda: 1.0,
            "Constant 1, labelled with the running version.",
            labels={"version": __version__},
        )

    # -- recording ---------------------------------------------------------

    def inc(
        self,
        name: str,
        amount: float = 1.0,
        labels: Optional[Mapping[str, str]] = None,
        help: str = "",
    ) -> None:
        key = (name, _labels(labels))
        with self._lock:
            if help:
                self._help.setdefault(name, help)
            self._counters[key] = self._counters.get(key, 0.0) + amount

    def observe(
        self,
        name: str,
        value: float,
        labels: Optional[Mapping[str, str]] = None,
        help: str = "",
        buckets: Iterable[float] = DEFAULT_BUCKETS,
        exemplar: Optional[str] = None,
    ) -> None:
        key = (name, _labels(labels))
        with self._lock:
            if help:
                self._help.setdefault(name, help)
            histogram = self._histograms.get(key)
            if histogram is None:
                histogram = self._histograms[key] = Histogram(buckets)
            histogram.observe(value, exemplar=exemplar)

    def register_gauge(
        self,
        name: str,
        sample: Callable[[], float],
        help: str = "",
        labels: Optional[Mapping[str, str]] = None,
    ) -> None:
        """Register a callable sampled at render time.

        The same gauge name may be registered once per label set (e.g.
        ``repro_cluster_ring_share{node="..."}``).
        """
        with self._lock:
            if help:
                self._help.setdefault(name, help)
            self._gauges[(name, _labels(labels))] = sample

    # -- worker-result ingestion ------------------------------------------

    def record_stage_seconds(self, stage_seconds: Mapping[str, float]) -> None:
        """Feed per-stage latencies from one pipeline run's records."""
        for stage, seconds in stage_seconds.items():
            self.observe(
                "repro_stage_seconds",
                float(seconds),
                labels={"stage": stage},
                help="Pipeline stage latency in seconds.",
            )

    def record_worker_counters(self, counters: Mapping[str, float]) -> None:
        """Roll PipelineInstrumentation counters into service counters."""
        for counter, value in counters.items():
            self.inc(
                "repro_pipeline_counter_total",
                float(value),
                labels={"counter": counter},
                help="Aggregated PipelineInstrumentation counters.",
            )

    # -- queries -----------------------------------------------------------

    def counter_value(
        self, name: str, labels: Optional[Mapping[str, str]] = None
    ) -> float:
        with self._lock:
            return self._counters.get((name, _labels(labels)), 0.0)

    def counter_total(self, name: str) -> float:
        """Sum of a counter across all label sets."""
        with self._lock:
            return sum(v for (n, _), v in self._counters.items() if n == name)

    # -- rendering ---------------------------------------------------------

    def render(self, exemplars: bool = False) -> str:
        """The text exposition of the whole registry.

        With ``exemplars=True`` (the OpenMetrics-style variant) histogram
        bucket lines gain ``# {trace_id="..."} value`` suffixes where a
        traced observation landed in that bucket, and the document ends
        with the OpenMetrics ``# EOF`` terminator.
        """
        lines: List[str] = []
        with self._lock:
            counters = dict(self._counters)
            histograms = {
                k: (v.cumulative(), v.sum, v.count, dict(v.exemplars))
                for k, v in self._histograms.items()
            }
            gauges = dict(self._gauges)
            helps = dict(self._help)

        counter_names = sorted({name for name, _ in counters})
        for name in counter_names:
            if helps.get(name):
                lines.append(f"# HELP {name} {helps[name]}")
            lines.append(f"# TYPE {name} counter")
            for (cname, labels), value in sorted(counters.items()):
                if cname == name:
                    lines.append(f"{name}{_render_labels(labels)} {_format_value(value)}")

        gauge_names = sorted({name for name, _ in gauges})
        for name in gauge_names:
            if helps.get(name):
                lines.append(f"# HELP {name} {helps[name]}")
            lines.append(f"# TYPE {name} gauge")
            for (gname, labels), sample in sorted(gauges.items()):
                if gname != name:
                    continue
                try:
                    value = float(sample())
                except Exception:  # pragma: no cover - defensive: never 500 /metrics
                    value = float("nan")
                lines.append(f"{name}{_render_labels(labels)} {value}")

        histogram_names = sorted({name for name, _ in histograms})
        for name in histogram_names:
            if helps.get(name):
                lines.append(f"# HELP {name} {helps[name]}")
            lines.append(f"# TYPE {name} histogram")
            for (hname, labels), (cumulative, total, count, marks) in sorted(
                histograms.items()
            ):
                if hname != name:
                    continue
                for index, (bound, running) in enumerate(cumulative):
                    le = {"le": _format_value(bound)}
                    line = f"{name}_bucket{_render_labels(labels, le)} {running}"
                    if exemplars and index in marks:
                        value, trace_id = marks[index]
                        line += f' # {{trace_id="{trace_id}"}} {repr(float(value))}'
                    lines.append(line)
                lines.append(f"{name}_sum{_render_labels(labels)} {repr(total)}")
                lines.append(f"{name}_count{_render_labels(labels)} {count}")
        if exemplars:
            lines.append("# EOF")
        return "\n".join(lines) + "\n"
