"""A persistent worker pool for the certification service.

:mod:`repro.pipeline.executor` owns *batch* fan-out (one pool per
``parallel_map`` call, torn down when the corpus is done).  A server
cannot pay pool startup per request, so this module keeps a
``ProcessPoolExecutor`` alive across requests while reusing the
executor's worker discipline and fallback policy:

* the job target is the module-level, picklable
  :func:`repro.service.worker.handle_job`, configured per process through
  the pool initializer (exactly how ``executor`` requires module-level
  workers);
* worker counts resolve through
  :func:`repro.pipeline.executor.resolve_jobs` (``0`` = one per CPU,
  negative rejected);
* the same infrastructure-failure set
  (:data:`repro.pipeline.executor._FALLBACK_ERRORS`) is recognised — at
  *startup* it degrades executor creation to a thread pool; *mid-job* it
  means a worker died (OOM kill, SIGKILL): the pool recycles itself to a
  fresh executor of the same mode and raises :class:`WorkerCrash`, so
  the request fails cleanly (5xx) instead of silently retrying — crash
  visibility is what the cluster router's failover is built on.

On top of that, serving-specific policies:

* **per-request timeouts** — :meth:`WorkerPool.submit` wraps the future
  in ``asyncio.wait_for``; timed-out work is cancelled if still queued;
* **cancellation** — if the awaiting task is cancelled (client
  disconnect, server drain), the queued pool future is cancelled too;
* **worker recycling** — after ``recycle_after`` dispatched jobs the
  process pool is replaced; the old one finishes its in-flight work and
  shuts down in the background (guards against leaks in long-lived
  workers, and doubles as a cheap way to re-read the disk tier).

Tracing: payloads carrying a ``traceparent`` are stamped with a
``dispatched_unix`` wall-clock time at submission, so the worker can
report the pool-queue wait (span attribute ``queue_wait_seconds``)
without any cross-process clock tricks beyond epoch seconds.

Trust: **untrusted** infrastructure — scheduling only; every verdict
still comes from the worker's fresh reparse+kernel run.
"""

from __future__ import annotations

import asyncio
import threading
import time
from concurrent.futures import Executor, ProcessPoolExecutor, ThreadPoolExecutor
from dataclasses import dataclass, field
from typing import Any, Callable, Dict, List, Optional, Tuple

from ..pipeline.executor import _FALLBACK_ERRORS, resolve_jobs
from . import worker as worker_module


class PoolTimeout(Exception):
    """A job exceeded its per-request deadline."""


class WorkerCrash(Exception):
    """A worker died mid-job; the pool recycled and the job was lost."""


@dataclass
class PoolConfig:
    """Static configuration for one :class:`WorkerPool`."""

    #: Worker processes: ``0`` = one per CPU, ``1`` = single worker,
    #: ``None`` = single worker.  Negative values raise (executor policy).
    jobs: Optional[int] = 0
    #: Replace worker processes after this many dispatched jobs
    #: (``None``/0 disables recycling).
    recycle_after: Optional[int] = 500
    #: Per-request wall-clock deadline in seconds (``None`` = unbounded).
    request_timeout: Optional[float] = 60.0
    #: Force the thread fallback (used by tests and single-core setups).
    use_threads: bool = False
    #: Passed through to :func:`repro.service.worker.configure`.
    worker_config: Dict[str, Any] = field(default_factory=dict)


@dataclass
class PoolStats:
    submitted: int = 0
    completed: int = 0
    failures: int = 0
    timeouts: int = 0
    cancelled: int = 0
    recycles: int = 0
    fallbacks: int = 0
    crashes: int = 0

    def to_dict(self) -> Dict[str, int]:
        return {
            "submitted": self.submitted,
            "completed": self.completed,
            "failures": self.failures,
            "timeouts": self.timeouts,
            "cancelled": self.cancelled,
            "recycles": self.recycles,
            "fallbacks": self.fallbacks,
            "crashes": self.crashes,
        }


class WorkerPool:
    """A persistent, recycling, timeout-aware pool around ``handle_job``."""

    def __init__(self, config: Optional[PoolConfig] = None):
        self.config = config or PoolConfig()
        self.workers = max(1, resolve_jobs(self.config.jobs))
        self.stats = PoolStats()
        self._executor: Optional[Executor] = None
        self._mode = "down"
        self._dispatched_since_recycle = 0
        #: Bumped on every executor replacement; crash handling compares
        #: generations so N concurrent crashed jobs recycle the pool once.
        self._generation = 0
        self._lock = threading.Lock()

    # -- lifecycle ---------------------------------------------------------

    @property
    def mode(self) -> str:
        """``process`` | ``thread`` | ``down``."""
        return self._mode

    def start(self) -> None:
        if self._executor is not None:
            return
        self._executor = self._make_executor()

    def _make_executor(self) -> Executor:
        if not self.config.use_threads:
            try:
                executor = ProcessPoolExecutor(
                    max_workers=self.workers,
                    initializer=worker_module.configure,
                    initargs=(self.config.worker_config,),
                )
                self._mode = "process"
                return executor
            except _FALLBACK_ERRORS:
                self.stats.fallbacks += 1
        # Thread fallback: workers share the process; configure in-process.
        worker_module.configure(self.config.worker_config)
        self._mode = "thread"
        return ThreadPoolExecutor(
            max_workers=self.workers, thread_name_prefix="repro-worker"
        )

    def shutdown(self, wait: bool = True) -> None:
        executor, self._executor = self._executor, None
        self._mode = "down"
        if executor is not None:
            executor.shutdown(wait=wait)

    # -- recycling ---------------------------------------------------------

    def _maybe_recycle(self) -> None:
        limit = self.config.recycle_after
        if not limit or limit < 1:
            return
        if self._dispatched_since_recycle < limit:
            return
        self._dispatched_since_recycle = 0
        self.stats.recycles += 1
        self._generation += 1
        old, self._executor = self._executor, self._make_executor()
        if old is not None:
            # Let in-flight work finish; reap the old pool off-thread.
            threading.Thread(
                target=old.shutdown, kwargs={"wait": True}, daemon=True
            ).start()

    def _recycle_broken_locked(self) -> None:
        """Replace a broken executor with a fresh one (caller holds lock)."""
        self.stats.recycles += 1
        self._generation += 1
        self._dispatched_since_recycle = 0
        old, self._executor = self._executor, self._make_executor()
        if old is not None:
            threading.Thread(
                target=old.shutdown, kwargs={"wait": False}, daemon=True
            ).start()

    def _handle_crash(self, generation: int) -> None:
        """Recycle after a mid-job worker death, at most once per generation."""
        self.stats.crashes += 1
        self.stats.failures += 1
        with self._lock:
            if generation == self._generation:
                self._recycle_broken_locked()

    def worker_pids(self) -> List[int]:
        """PIDs of live worker processes (empty in thread mode)."""
        executor = self._executor
        if not isinstance(executor, ProcessPoolExecutor):
            return []
        processes = getattr(executor, "_processes", None) or {}
        return [proc.pid for proc in processes.values() if proc.pid is not None]

    # -- submission --------------------------------------------------------

    @staticmethod
    def _stamp_dispatch(payload: Dict[str, Any]) -> None:
        """Record the dispatch time on traced payloads (queue-wait spans)."""
        if "traceparent" in payload:
            payload.setdefault("dispatched_unix", time.time())

    def _submit_raw(self, fn: Callable[..., Any], *args: Any) -> Tuple[Any, int]:
        """Submit and return ``(future, generation)`` for crash tracking."""
        with self._lock:
            if self._executor is None:
                self.start()
            self._maybe_recycle()
            self._dispatched_since_recycle += 1
            self.stats.submitted += 1
            try:
                return self._executor.submit(fn, *args), self._generation
            except _FALLBACK_ERRORS:
                # The pool broke while idle (a worker died between jobs).
                # The job never started, so a one-shot resubmit on a fresh
                # executor is transparent to the caller.
                self.stats.crashes += 1
                self._recycle_broken_locked()
                return self._executor.submit(fn, *args), self._generation

    def submit_sync(self, payload: Dict[str, Any]) -> Dict[str, Any]:
        """Blocking submit (tests, non-async callers)."""
        self._stamp_dispatch(payload)
        future, generation = self._submit_raw(worker_module.handle_job, payload)
        try:
            result = future.result(timeout=self.config.request_timeout)
        except TimeoutError:
            self.stats.timeouts += 1
            future.cancel()
            raise PoolTimeout(
                f"request exceeded {self.config.request_timeout}s"
            ) from None
        except _FALLBACK_ERRORS as error:
            self._handle_crash(generation)
            raise WorkerCrash(
                f"worker crashed mid-job ({type(error).__name__}: {error})"
            ) from None
        self.stats.completed += 1
        return result

    async def submit(
        self, payload: Dict[str, Any], timeout: Optional[float] = None
    ) -> Dict[str, Any]:
        """Submit one job from the event loop; returns the response dict.

        Raises :class:`PoolTimeout` on deadline expiry and re-raises
        ``asyncio.CancelledError`` (after cancelling queued pool work) if
        the awaiting task is cancelled — e.g. the client disconnected.
        """
        deadline = timeout if timeout is not None else self.config.request_timeout
        self._stamp_dispatch(payload)
        future, generation = self._submit_raw(worker_module.handle_job, payload)
        wrapped = asyncio.wrap_future(future)
        try:
            result = await asyncio.wait_for(wrapped, deadline)
        except asyncio.TimeoutError:
            self.stats.timeouts += 1
            future.cancel()
            raise PoolTimeout(f"request exceeded {deadline}s") from None
        except asyncio.CancelledError:
            self.stats.cancelled += 1
            future.cancel()
            raise
        except _FALLBACK_ERRORS as error:
            # A worker died mid-job (OOM kill, SIGKILL, fork trouble).
            # Recycle to a fresh pool of the same mode and fail *this*
            # request cleanly — a silent in-process retry would hide real
            # crashes from the operator and from the router's failover.
            self._handle_crash(generation)
            raise WorkerCrash(
                f"worker crashed mid-job ({type(error).__name__}: {error})"
            ) from None
        self.stats.completed += 1
        if not result.get("ok", False):
            self.stats.failures += 1
        return result
