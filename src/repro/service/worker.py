"""The service worker: one certification job, two cache tiers, fresh kernel.

This module is the process-pool target, following the
:mod:`repro.pipeline.executor` worker discipline: everything the pool
calls is a **module-level, picklable callable**, and per-process state
(the in-memory :class:`~repro.pipeline.cache.ArtifactCache` and the
shared :class:`~repro.service.diskcache.DiskCache`) lives in module
globals initialised by :func:`configure` — the pool passes it as the
``ProcessPoolExecutor`` initializer, and the serial/thread fallbacks call
it in-process.

Per request, :func:`handle_job` resolves artifacts through the tiers:

1. **memory** — the worker's own ``ArtifactCache`` serves the live
   ``TranslationResult`` and the rendered certificate text; the pipeline
   skips translate/generate/render natively (whole-program entries) and
   re-translates only edited method units (per-unit entries).
2. **disk** — on a memory miss, a persisted ``(boogie text, certificate
   text)`` pair is loaded; the Boogie text is re-parsed, a
   ``TranslationResult`` is reconstructed exactly like ``repro check``
   does for the independent-check CLI, and the entry is promoted into the
   memory tier.
3. **unit disk** — when the whole-file entry misses (the file was
   edited), each *method unit* is looked up by its content-addressed key
   (body digest + callee interface digests + options); cached procedure
   and certificate-block texts are spliced together with freshly
   translated ones for the edited units, so one edited method re-runs
   one unit's untrusted work, not the file's.
4. **miss** — the full untrusted pipeline runs and its artifacts are
   written through to every tier (whole-file entry plus one envelope per
   unit).

**In every case the trusted path runs fresh**: the certificate text is
re-parsed and the independent kernel re-derives the verdict, method by
method, per request — incrementality is entirely untrusted.  Cache state
can therefore only cause spurious rejections (upon which the offending
disk entries are quarantined), never a false acceptance — see
``docs/SERVICE.md`` § Trust.

Trust: **untrusted-but-checked** — every artifact this module serves or
rebuilds passes through the fresh reparse+kernel path before an answer
leaves the worker.

When the payload carries a ``traceparent`` header (the server sends one
whenever tracing is enabled), the job runs under a ``worker.handle``
span, per-stage and per-unit spans are derived from the instrumentation
records afterwards, and the whole set travels back in the response's
``trace`` field — the worker never writes trace files itself.  Tracing
is advisory: span derivation happens after the verdict is final and
touches nothing the kernel reads (docs/OBSERVABILITY.md).
"""

from __future__ import annotations

import time
import traceback
from typing import Any, Dict, Optional

from ..boogie.parser import parse_boogie_program
from ..boogie.pretty import pretty_boogie_program, pretty_procedure
from ..certification import (
    assemble_certificate_text,
    check_program_certificate,
    generate_method_certificate,
    parse_program_certificate,
    render_method_certificate,
)
from ..frontend import background_boogie_program, translate_method, TranslationOptions
from ..frontend.background import build_background
from ..frontend.translator import TranslationResult
from ..pipeline import (
    ArtifactCache,
    PipelineError,
    PipelineInstrumentation,
    STAGE_NAMES,
)
from ..pipeline.stages import make_context, resume_pipeline
from ..trace import (
    TraceCollector,
    parse_traceparent,
    spans_from_instrumentation,
    start_span,
)
from .admission import RequestLimits
from .diskcache import DiskCache, options_digest

# -- per-process state (set by configure) -----------------------------------

_MEMORY_CACHE: Optional[ArtifactCache] = None
_DISK_CACHE: Optional[DiskCache] = None
_LIMITS: RequestLimits = RequestLimits()


def configure(config: Dict[str, Any]) -> None:
    """(Re)initialise the worker-process state.

    Called once per worker process (pool initializer) and once in-process
    for the serial/thread fallbacks.  A fresh ``ArtifactCache`` is created
    every time, so a restarted server never sees stale in-memory state —
    only the disk tier survives restarts.
    """
    global _MEMORY_CACHE, _DISK_CACHE, _LIMITS
    _MEMORY_CACHE = ArtifactCache(maxsize=int(config.get("memory_cache_size", 256)))
    cache_dir = config.get("cache_dir")
    if cache_dir:
        _DISK_CACHE = DiskCache(
            cache_dir, max_bytes=int(config.get("cache_max_bytes", 64 * 1024 * 1024))
        )
    else:
        _DISK_CACHE = None
    _LIMITS = RequestLimits(
        max_source_bytes=int(config.get("max_source_bytes", RequestLimits.max_source_bytes)),
        max_body_bytes=int(config.get("max_body_bytes", RequestLimits.max_body_bytes)),
        max_batch=int(config.get("max_batch", RequestLimits.max_batch)),
        max_oracle_states=int(config.get("max_oracle_states", RequestLimits.max_oracle_states)),
    )


def _memory_cache() -> ArtifactCache:
    global _MEMORY_CACHE
    if _MEMORY_CACHE is None:  # direct library use without configure()
        _MEMORY_CACHE = ArtifactCache(maxsize=256)
    return _MEMORY_CACHE


def options_from_dict(payload: Optional[Dict[str, Any]]) -> TranslationOptions:
    """Build :class:`TranslationOptions` from a JSON request object."""
    if not payload:
        return TranslationOptions()
    known = {f for f in TranslationOptions.__dataclass_fields__}
    unknown = set(payload) - known
    if unknown:
        raise ValueError(
            f"unknown translation options: {sorted(unknown)}; known: {sorted(known)}"
        )
    return TranslationOptions(**{k: bool(v) for k, v in payload.items()})


# -- response assembly -------------------------------------------------------


def _stage_seconds(inst: PipelineInstrumentation) -> Dict[str, float]:
    return {
        name: inst.stage_seconds(name)
        for name in STAGE_NAMES
        if inst.stage_ran(name)
    }


def _base_response(action: str, inst: PipelineInstrumentation, tier: str) -> Dict[str, Any]:
    response = {
        "ok": False,
        "action": action,
        "cache": tier,
        "status": 200,
        "error": "",
        "error_stage": None,
        "stage_seconds": _stage_seconds(inst),
        "counters": dict(inst.counters),
        "artifacts": inst.artifact_sizes(),
    }
    if inst.unit_records:
        # Method-level hit accounting: which units were reused, from which
        # tier, and which were rebuilt (drives the unit-cache metrics).
        response["unit_cache"] = inst.unit_cache_summary()
    return response


def _diagnostic_response(action: str, inst: PipelineInstrumentation, error: PipelineError) -> Dict[str, Any]:
    response = _base_response(action, inst, "miss")
    response.update(
        status=422,
        error=error.diagnostic.message,
        error_stage=error.diagnostic.stage,
        hint=error.diagnostic.hint,
    )
    if error.diagnostic.code:
        response["code"] = error.diagnostic.code
    findings = getattr(error.diagnostic.cause, "findings", None)
    if findings:
        # Lint rejections ship the full finding list so clients (and the
        # server's per-check counters) see every diagnostic, not just the
        # summary line.
        response["findings"] = [f.to_dict() for f in findings]
    return response


def _run_oracle(translation: TranslationResult, max_states: int) -> Dict[str, Any]:
    from ..certification.oracle import validate_program_semantically

    verdicts = validate_program_semantically(
        translation,
        max_states_per_method=max_states,
        max_viper_paths=400,
        max_boogie_paths=2_000,
    )
    return {
        "ok": all(v.ok for v in verdicts),
        "methods": {v.method: {"ok": v.ok, "detail": v.detail} for v in verdicts},
    }


# -- the job handler ---------------------------------------------------------


def handle_job(payload: Dict[str, Any]) -> Dict[str, Any]:
    """Process one request payload; never raises (errors are structured).

    With a ``traceparent`` in the payload the whole job runs under a
    ``worker.handle`` span (parented to the server's dispatch span), and
    the response gains ``trace`` (span dicts) and ``trace_id`` fields.
    Without one — tracing off — no span object is ever constructed.
    """
    parent = parse_traceparent(payload.pop("traceparent", None))
    dispatched_unix = payload.pop("dispatched_unix", None)
    try:
        if parent is None:
            response, _ = _handle(payload)
            return response
        collector = TraceCollector()
        inst: Optional[PipelineInstrumentation] = None
        with start_span(
            "worker.handle", collector=collector, parent=parent
        ) as span:
            if dispatched_unix is not None:
                # Dispatch-to-start gap = time spent in the pool queue.
                span.attributes["queue_wait_seconds"] = round(
                    max(0.0, time.time() - float(dispatched_unix)), 6
                )
            response, inst = _handle(payload)
            span.attributes["action"] = response.get("action")
            span.attributes["cache"] = response.get("cache")
            if not response.get("ok"):
                span.set_error(str(response.get("error", ""))[:200])
        if inst is not None:
            spans_from_instrumentation(inst, parent=span.context(),
                                       collector=collector)
        response["trace"] = [s.to_dict() for s in collector.spans]
        response["trace_id"] = parent.trace_id
        return response
    except Exception as error:  # pragma: no cover - last-resort containment
        response = {
            "ok": False,
            "action": payload.get("action", "?"),
            "cache": "miss",
            "status": 500,
            "error": f"internal error: {error}",
            "error_stage": None,
            "traceback": traceback.format_exc(limit=8),
            "stage_seconds": {},
            "counters": {},
            "artifacts": {},
        }
        if parent is not None:
            response["trace_id"] = parent.trace_id
        return response


def _handle(
    payload: Dict[str, Any]
) -> "tuple[Dict[str, Any], Optional[PipelineInstrumentation]]":
    """Dispatch one validated job; returns ``(response, instrumentation)``.

    The instrumentation object rides along so :func:`handle_job` can
    derive per-stage/per-unit spans from it; early rejects (bad action,
    empty source, admission limits) carry ``None`` — no pipeline ran.
    """
    action = payload.get("action", "certify")
    if action not in ("certify", "translate"):
        return {
            "ok": False, "action": action, "cache": "miss", "status": 400,
            "error": f"unknown action {action!r}", "error_stage": None,
            "stage_seconds": {}, "counters": {}, "artifacts": {},
        }, None
    source = payload.get("source")
    if not isinstance(source, str) or not source.strip():
        return {
            "ok": False, "action": action, "cache": "miss", "status": 400,
            "error": "request must carry a non-empty 'source' string",
            "error_stage": None, "stage_seconds": {}, "counters": {},
            "artifacts": {},
        }, None
    rejection = _LIMITS.check_source(source)
    if rejection:
        return {
            "ok": False, "action": action, "cache": "miss", "status": 413,
            "error": rejection, "error_stage": None, "stage_seconds": {},
            "counters": {}, "artifacts": {},
        }, None
    try:
        options = options_from_dict(payload.get("options"))
    except (ValueError, TypeError) as error:
        return {
            "ok": False, "action": action, "cache": "miss", "status": 400,
            "error": str(error), "error_stage": None, "stage_seconds": {},
            "counters": {}, "artifacts": {},
        }, None

    inst = PipelineInstrumentation()
    memory = _memory_cache()
    ctx = make_context(
        source, options, instrumentation=inst, cache=memory, wrap_errors=True,
        check_axioms=bool(payload.get("check_axioms", True)),
        analyze=bool(payload.get("analyze", True)),
        analysis_strict=True,
    )
    disk_key = (ctx.key[0], options_digest(options))

    # The cheap trusted-input stages always run fresh, and so does the
    # admission fast path: strict static analysis rejects provably-broken
    # programs with a 422 *before* any cache lookup or untrusted stage —
    # a lint-rejected request never reaches translate.
    try:
        resume_pipeline(ctx, upto="analyze")
    except PipelineError as error:
        return _diagnostic_response(action, inst, error), inst

    in_memory = memory.get_translation(ctx.key) is not None
    if action == "translate":
        return _handle_translate(payload, ctx, inst, disk_key, in_memory), inst
    return _handle_certify(payload, ctx, inst, disk_key, in_memory), inst


def _handle_translate(payload, ctx, inst, disk_key, in_memory) -> Dict[str, Any]:
    tier = "memory" if in_memory else "miss"
    if not in_memory and _DISK_CACHE is not None:
        with inst.cache_lookup():
            entry = _DISK_CACHE.load(disk_key)
        if entry is not None and entry.boogie_text:
            inst.increment("cache.disk.hit")
            inst.record_skip("translate", cached=True)
            response = _base_response("translate", inst, "disk")
            response.update(ok=True, boogie=entry.boogie_text)
            return response
        inst.increment("cache.disk.miss")
    try:
        resume_pipeline(ctx, upto="translate")
    except PipelineError as error:
        return _diagnostic_response("translate", inst, error)
    response = _base_response("translate", inst, tier)
    response.update(ok=True, boogie=ctx.boogie_text)
    return response


def _assemble_boogie_text(background, procedure_texts) -> str:
    """Splice the rendered prelude and per-procedure texts into one .bpl.

    Byte-identical to ``pretty_boogie_program`` over the assembled program
    when every procedure text came from ``pretty_procedure`` — which is
    what both the fresh path and the unit envelopes store.
    """
    parts = [pretty_boogie_program(background_boogie_program(background)).rstrip("\n")]
    for text in procedure_texts:
        parts.append("")
        parts.append(text.rstrip("\n"))
    return "\n".join(parts) + "\n"


def _store_units_to_disk(ctx) -> None:
    """Write one envelope per freshly-built unit through to the disk tier."""
    if (
        _DISK_CACHE is None
        or not ctx.unit_keys
        or ctx.translation is None
        or ctx.certificate is None
    ):
        return
    certificates = {cert.method: cert for cert in ctx.certificate.methods}
    for method in ctx.program.methods:
        translated = ctx.translation.methods.get(method.name)
        certificate = certificates.get(method.name)
        if translated is None or certificate is None:
            continue
        _DISK_CACHE.store_unit(
            ctx.unit_keys[method.name],
            method.name,
            {
                "procedure_text": pretty_procedure(translated.procedure),
                "certificate_block": render_method_certificate(certificate),
            },
            depends=ctx.units[method.name].callees,
        )


def _certify_from_unit_tier(ctx, inst):
    """Resolve a certify request method-by-method against the disk unit tier.

    Returns ``(report, translation, certificate_text, tier)`` when at
    least one unit envelope was served, or ``None`` to fall through to the
    full pipeline.  Served procedure/certificate texts are *spliced* with
    freshly-translated ones for the edited units; the assembled document
    then goes through the trusted path exactly like a fresh one — reparse
    plus a per-method kernel check, never a cached verdict.
    """
    entries = {}
    served = []
    for method in ctx.program.methods:
        with inst.cache_lookup():
            entry = _DISK_CACHE.load_unit(ctx.unit_keys[method.name])
        if (
            entry is not None
            and entry.method == method.name
            and entry.procedure_text
            and entry.certificate_block
        ):
            entries[method.name] = entry
            served.append(method.name)
            inst.increment("unit_cache.disk.hit")
        else:
            entries[method.name] = None
            inst.increment("unit_cache.disk.miss")
    if not served:
        return None

    background = build_background(ctx.type_info.field_types)
    procedure_texts: Dict[str, str] = {}
    blocks: Dict[str, str] = {}
    fresh: Dict[str, Any] = {}
    rebuilt = []
    for method in ctx.program.methods:
        entry = entries[method.name]
        if entry is not None:
            procedure_texts[method.name] = entry.procedure_text
            blocks[method.name] = entry.certificate_block
            inst.record_unit(method.name, "translate", reused=True, tier="disk")
            inst.record_unit(method.name, "generate", reused=True, tier="disk")
        else:
            rebuilt.append(method)
    if rebuilt:
        with inst.stage("translate"):
            for method in rebuilt:
                start = time.perf_counter()
                translated = translate_method(
                    ctx.program, ctx.type_info, method, ctx.options,
                    background=background,
                )
                fresh[method.name] = translated
                procedure_texts[method.name] = pretty_procedure(translated.procedure)
                inst.record_unit(
                    method.name, "translate", seconds=time.perf_counter() - start
                )
        with inst.stage("generate"):
            for method in rebuilt:
                start = time.perf_counter()
                certificate = generate_method_certificate(fresh[method.name])
                blocks[method.name] = render_method_certificate(certificate)
                inst.record_unit(
                    method.name, "generate", seconds=time.perf_counter() - start
                )
    else:
        inst.record_skip("translate", cached=True)
        inst.record_skip("generate", cached=True)

    with inst.stage("render"):
        boogie_text = _assemble_boogie_text(
            background, [procedure_texts[m.name] for m in ctx.program.methods]
        )
        certificate_text = assemble_certificate_text(
            blocks[m.name] for m in ctx.program.methods
        )

    try:
        with inst.stage("reparse"):
            boogie_program = parse_boogie_program(boogie_text)
            certificate = parse_program_certificate(certificate_text)
    except Exception as error:
        # A served envelope holds text the parsers refuse: poisoned or
        # corrupt past the digest check.  Quarantine every served unit and
        # fall back to the full pipeline.
        for name in served:
            _DISK_CACHE.quarantine_unit(
                ctx.unit_keys[name], reason=f"unparseable unit artifact: {error}"
            )
        return None

    translation = TranslationResult(
        viper_program=ctx.program,
        type_info=ctx.type_info,
        background=background,
        boogie_program=boogie_program,
        methods=fresh,
        options=ctx.options,
    )
    with inst.stage("check"):
        report = check_program_certificate(
            translation, certificate, check_axioms=ctx.check_axioms
        )
    ctx.boogie_text = boogie_text
    tier = "disk" if not rebuilt else "miss"

    if report.ok:
        # Promote the assembled whole-file artifacts into the memory tier
        # and write the rebuilt units through to the disk tier.
        ctx.cache.put_translation(ctx.key, translation)
        ctx.cache.put_certificate_text(ctx.key, certificate_text)
        for method in rebuilt:
            _DISK_CACHE.store_unit(
                ctx.unit_keys[method.name],
                method.name,
                {
                    "procedure_text": procedure_texts[method.name],
                    "certificate_block": blocks[method.name],
                },
                depends=ctx.units[method.name].callees,
            )
        if _DISK_CACHE is not None and boogie_text and certificate_text:
            _DISK_CACHE.store(
                (ctx.key[0], options_digest(ctx.options)),
                {"boogie_text": boogie_text, "certificate_text": certificate_text},
            )
    else:
        # The kernel refused the assembled certificate.  Any served
        # envelope may be the poisoned one: quarantine them all so the
        # next request recomputes from scratch.
        for name in served:
            _DISK_CACHE.quarantine_unit(
                ctx.unit_keys[name], reason=f"kernel rejected: {report.error}"
            )
    return report, translation, certificate_text, tier


def _handle_certify(payload, ctx, inst, disk_key, in_memory) -> Dict[str, Any]:
    tier = "memory" if in_memory else "miss"
    report = None
    translation = None
    certificate_text = None

    if not in_memory and _DISK_CACHE is not None:
        with inst.cache_lookup():
            entry = _DISK_CACHE.load(disk_key)
        if entry is not None and entry.boogie_text and entry.certificate_text:
            # Disk hit: skip the untrusted stages, but *re-derive* the
            # trusted verdict — re-parse both artifacts and run the kernel.
            tier = "disk"
            inst.increment("cache.disk.hit")
            for skipped in ("translate", "generate", "render"):
                inst.record_skip(skipped, cached=True)
            # A whole-file hit serves every method unit at once.
            for name in ctx.unit_keys or {}:
                inst.record_unit(name, "translate", reused=True, tier="disk")
                inst.record_unit(name, "generate", reused=True, tier="disk")
            with inst.stage("reparse"):
                boogie_program = parse_boogie_program(entry.boogie_text)
                certificate = parse_program_certificate(entry.certificate_text)
            translation = TranslationResult(
                viper_program=ctx.program,
                type_info=ctx.type_info,
                background=build_background(ctx.type_info.field_types),
                boogie_program=boogie_program,
                methods={},
                options=ctx.options,
            )
            with inst.stage("check"):
                report = check_program_certificate(
                    translation, certificate, check_axioms=ctx.check_axioms
                )
            certificate_text = entry.certificate_text
            ctx.boogie_text = entry.boogie_text
            if report.ok:
                # Promote into the memory tier so the next request in this
                # worker skips the Boogie re-parse as well.
                ctx.cache.put_translation(ctx.key, translation)
                ctx.cache.put_certificate_text(ctx.key, certificate_text)
            else:
                # A cached artifact the kernel refuses is corrupt or
                # poisoned: quarantine it so the next request recomputes.
                _DISK_CACHE.quarantine(disk_key, reason=f"kernel rejected: {report.error}")
        else:
            inst.increment("cache.disk.miss")
            # The whole file missed (it was edited): resolve method units
            # individually so only the edited units re-run untrusted work.
            if ctx.unit_keys:
                resolved = _certify_from_unit_tier(ctx, inst)
                if resolved is not None:
                    report, translation, certificate_text, tier = resolved

    if report is None:
        try:
            resume_pipeline(ctx, upto="check")
        except PipelineError as error:
            return _diagnostic_response("certify", inst, error)
        report = ctx.report
        translation = ctx.translation
        certificate_text = ctx.certificate_text
        if (
            tier == "miss"
            and report.ok
            and _DISK_CACHE is not None
            and ctx.boogie_text
            and certificate_text
        ):
            _DISK_CACHE.store(
                disk_key,
                {"boogie_text": ctx.boogie_text, "certificate_text": certificate_text},
            )
            _store_units_to_disk(ctx)

    response = _base_response("certify", inst, tier)
    response["check_seconds"] = report.check_seconds
    if not report.ok:
        response.update(ok=False, rejected=True, error=report.error)
        return response

    response.update(
        ok=True,
        statement=report.statement(),
        methods={
            name: {
                "rules_checked": method_report.rules_checked,
                "dependencies": list(method_report.dependencies),
            }
            for name, method_report in report.method_reports.items()
        },
    )
    if payload.get("include_certificate"):
        response["certificate"] = certificate_text
    if payload.get("include_boogie"):
        response["boogie"] = ctx.boogie_text
    oracle_states = _LIMITS.clamp_oracle_states(payload.get("oracle_states"))
    if oracle_states and translation is not None:
        response["oracle"] = _run_oracle(translation, oracle_states)
        if not response["oracle"]["ok"]:
            response["ok"] = False
            response["error"] = "semantic oracle disagreement"
    return response
