"""Disk-backed artifact cache tier: warm state that survives restarts.

Trust: **untrusted-but-checked** — stores only untrusted artifact text;
corrupt or forged entries are quarantined or kernel-rejected, never
silently accepted (docs/TRUSTED_BASE.md design rule 1).

The in-memory :class:`~repro.pipeline.cache.ArtifactCache` dies with the
process; every server restart used to start cold.  This module adds a
persistent tier underneath it: one JSON file per cache entry under a root
directory, content-addressed by ``(source digest, options digest)``.

Design rules (mirroring ``docs/TRUSTED_BASE.md``):

* **Only untrusted artifacts are stored** — the pretty-printed Boogie
  program and the rendered certificate text, both plain text.  Kernel
  verdicts are *never* written to disk: the trusted path (certificate
  re-parse + independent kernel check) runs fresh on every request, so a
  poisoned cache entry can cause a spurious rejection but never a false
  acceptance.
* **Atomic writes** — entries are written to a temporary file in the same
  directory and ``os.replace``-d into place, so concurrent workers and
  crashed writers can never expose a half-written entry.
* **Corruption tolerance** — any entry that fails to load (bad JSON,
  missing fields, digest mismatch, wrong format version) is quarantined
  into ``<root>/quarantine/`` and reported as a miss; the service then
  recomputes and overwrites it.
* **LRU size bound** — total payload bytes are capped; loads refresh the
  entry mtime and eviction removes the stalest entries first.
"""

from __future__ import annotations

import dataclasses
import hashlib
import json
import os
import threading
import time
import uuid
from dataclasses import dataclass, field
from pathlib import Path
from typing import Dict, List, Optional, Tuple, TYPE_CHECKING

if TYPE_CHECKING:  # pragma: no cover - typing-only import cycle guard
    from ..frontend import TranslationOptions

#: On-disk entry format version; bump on incompatible layout changes.
FORMAT_VERSION = 1

#: The disk key: (source digest, options digest) — both hex strings, so
#: the key doubles as a stable filename.
DiskKey = Tuple[str, str]


# Re-exported from the pipeline's unit layer so the disk tier and the
# per-unit cache keys can never disagree about what "same options" means.
from ..pipeline.units import options_digest  # noqa: E402  (re-export)


def _artifacts_digest(artifacts: Dict[str, str]) -> str:
    payload = json.dumps(artifacts, sort_keys=True)
    return hashlib.sha256(payload.encode("utf-8")).hexdigest()


@dataclass
class DiskCacheStats:
    """Counters for one :class:`DiskCache` instance (not persisted)."""

    hits: int = 0
    misses: int = 0
    stores: int = 0
    evictions: int = 0
    quarantined: int = 0

    def to_dict(self) -> Dict[str, int]:
        return dataclasses.asdict(self)


@dataclass
class DiskEntry:
    """One loaded cache entry."""

    key: DiskKey
    artifacts: Dict[str, str]
    created: float = field(default_factory=time.time)

    @property
    def boogie_text(self) -> Optional[str]:
        return self.artifacts.get("boogie_text")

    @property
    def certificate_text(self) -> Optional[str]:
        return self.artifacts.get("certificate_text")


@dataclass
class UnitDiskEntry:
    """One loaded per-unit envelope (a single method's untrusted artifacts).

    The envelope stores the pretty-printed Boogie procedure and the
    method's certificate block, plus the ``depends`` record — the callee
    names whose *interfaces* the artifacts were built against.  The
    ``depends`` record is load-bearing here: the unit key that addresses
    this envelope folds in those callees' interface digests, which is
    what makes a stale entry unreachable after a spec edit.  It is still
    never trusted — the kernel recomputes dependencies from the
    certificate text on every request it serves.
    """

    unit_key: str
    method: str
    artifacts: Dict[str, str]
    depends: Tuple[str, ...] = ()
    created: float = field(default_factory=time.time)

    @property
    def procedure_text(self) -> Optional[str]:
        return self.artifacts.get("procedure_text")

    @property
    def certificate_block(self) -> Optional[str]:
        return self.artifacts.get("certificate_block")


class DiskCache:
    """Content-addressed, size-bounded, corruption-tolerant entry store.

    Safe for concurrent use by multiple worker processes sharing one
    root: writes are atomic renames, loads tolerate concurrent eviction,
    and the LRU bound is enforced best-effort after each store.
    """

    def __init__(self, root: os.PathLike, max_bytes: int = 64 * 1024 * 1024):
        if max_bytes < 1:
            raise ValueError("max_bytes must be >= 1")
        self.root = Path(root)
        self.max_bytes = max_bytes
        self.stats = DiskCacheStats()
        self._lock = threading.Lock()
        self.root.mkdir(parents=True, exist_ok=True)
        self.quarantine_dir.mkdir(parents=True, exist_ok=True)
        self.units_dir.mkdir(parents=True, exist_ok=True)

    # -- paths -------------------------------------------------------------

    @property
    def quarantine_dir(self) -> Path:
        return self.root / "quarantine"

    @property
    def units_dir(self) -> Path:
        return self.root / "units"

    def path_for(self, key: DiskKey) -> Path:
        source_digest, opts_digest = key
        # Shortened digests keep filenames readable; 32+16 hex chars is
        # far beyond accidental-collision range for a local cache.
        return self.root / f"{source_digest[:32]}-{opts_digest[:16]}.json"

    def unit_path_for(self, unit_key: str) -> Path:
        return self.units_dir / f"{unit_key[:40]}.json"

    # -- store / load ------------------------------------------------------

    def store(self, key: DiskKey, artifacts: Dict[str, str]) -> Path:
        """Atomically persist one entry (write temp file, then rename)."""
        if not artifacts:
            raise ValueError("refusing to store an empty artifact set")
        envelope = {
            "format": FORMAT_VERSION,
            "source_digest": key[0],
            "options_digest": key[1],
            "created": time.time(),
            "artifacts": dict(artifacts),
            "digest": _artifacts_digest(artifacts),
        }
        path = self.path_for(key)
        tmp = path.with_name(f".tmp-{uuid.uuid4().hex}")
        tmp.write_text(json.dumps(envelope, sort_keys=True), encoding="utf-8")
        os.replace(tmp, path)
        with self._lock:
            self.stats.stores += 1
        self._evict_to_bound()
        return path

    def load(self, key: DiskKey) -> Optional[DiskEntry]:
        """Load one entry; quarantines and misses on any corruption."""
        path = self.path_for(key)
        try:
            raw = path.read_text(encoding="utf-8")
        except (FileNotFoundError, OSError):
            with self._lock:
                self.stats.misses += 1
            return None
        try:
            envelope = json.loads(raw)
            if envelope["format"] != FORMAT_VERSION:
                raise ValueError(f"unsupported format {envelope['format']!r}")
            if (envelope["source_digest"], envelope["options_digest"]) != tuple(key):
                raise ValueError("entry key does not match its filename")
            artifacts = envelope["artifacts"]
            if not isinstance(artifacts, dict) or not all(
                isinstance(k, str) and isinstance(v, str) for k, v in artifacts.items()
            ):
                raise ValueError("artifacts must be a str→str mapping")
            if envelope["digest"] != _artifacts_digest(artifacts):
                raise ValueError("artifact digest mismatch (bitrot or truncation)")
        except (ValueError, KeyError, TypeError) as error:
            self.quarantine(key, reason=str(error))
            with self._lock:
                self.stats.misses += 1
            return None
        self._touch(path)
        with self._lock:
            self.stats.hits += 1
        return DiskEntry(
            key=key, artifacts=artifacts, created=float(envelope.get("created", 0.0))
        )

    # -- per-unit envelopes ------------------------------------------------

    def store_unit(
        self,
        unit_key: str,
        method: str,
        artifacts: Dict[str, str],
        depends: Tuple[str, ...] = (),
    ) -> Path:
        """Atomically persist one method-unit envelope."""
        if not artifacts:
            raise ValueError("refusing to store an empty artifact set")
        envelope = {
            "format": FORMAT_VERSION,
            "unit_key": unit_key,
            "method": method,
            "depends": list(depends),
            "created": time.time(),
            "artifacts": dict(artifacts),
            "digest": _artifacts_digest(artifacts),
        }
        path = self.unit_path_for(unit_key)
        tmp = path.with_name(f".tmp-{uuid.uuid4().hex}")
        tmp.write_text(json.dumps(envelope, sort_keys=True), encoding="utf-8")
        os.replace(tmp, path)
        with self._lock:
            self.stats.stores += 1
        self._evict_to_bound()
        return path

    def load_unit(self, unit_key: str) -> Optional[UnitDiskEntry]:
        """Load one unit envelope; quarantines and misses on corruption."""
        path = self.unit_path_for(unit_key)
        try:
            raw = path.read_text(encoding="utf-8")
        except (FileNotFoundError, OSError):
            with self._lock:
                self.stats.misses += 1
            return None
        try:
            envelope = json.loads(raw)
            if envelope["format"] != FORMAT_VERSION:
                raise ValueError(f"unsupported format {envelope['format']!r}")
            if envelope["unit_key"] != unit_key:
                raise ValueError("unit key does not match its filename")
            artifacts = envelope["artifacts"]
            if not isinstance(artifacts, dict) or not all(
                isinstance(k, str) and isinstance(v, str) for k, v in artifacts.items()
            ):
                raise ValueError("artifacts must be a str→str mapping")
            if envelope["digest"] != _artifacts_digest(artifacts):
                raise ValueError("artifact digest mismatch (bitrot or truncation)")
            method = envelope["method"]
            if not isinstance(method, str):
                raise ValueError("method must be a string")
            depends = envelope.get("depends", [])
            if not isinstance(depends, list) or not all(
                isinstance(d, str) for d in depends
            ):
                raise ValueError("depends must be a list of method names")
        except (ValueError, KeyError, TypeError) as error:
            self.quarantine_unit(unit_key, reason=str(error))
            with self._lock:
                self.stats.misses += 1
            return None
        self._touch(path)
        with self._lock:
            self.stats.hits += 1
        return UnitDiskEntry(
            unit_key=unit_key,
            method=method,
            artifacts=artifacts,
            depends=tuple(depends),
            created=float(envelope.get("created", 0.0)),
        )

    def quarantine_unit(self, unit_key: str, reason: str = "") -> Optional[Path]:
        """Move a bad unit envelope aside (kept for post-mortems)."""
        path = self.unit_path_for(unit_key)
        target = self.quarantine_dir / f"{path.stem}-{uuid.uuid4().hex[:8]}.bad"
        try:
            os.replace(path, target)
        except (FileNotFoundError, OSError):
            return None
        if reason:
            try:
                (target.with_suffix(".reason")).write_text(reason + "\n", encoding="utf-8")
            except OSError:  # pragma: no cover - advisory only
                pass
        with self._lock:
            self.stats.quarantined += 1
        return target

    def quarantine(self, key: DiskKey, reason: str = "") -> Optional[Path]:
        """Move a bad entry aside (kept for post-mortems, never reloaded)."""
        path = self.path_for(key)
        target = self.quarantine_dir / f"{path.stem}-{uuid.uuid4().hex[:8]}.bad"
        try:
            os.replace(path, target)
        except (FileNotFoundError, OSError):
            return None
        if reason:
            try:
                (target.with_suffix(".reason")).write_text(reason + "\n", encoding="utf-8")
            except OSError:  # pragma: no cover - advisory only
                pass
        with self._lock:
            self.stats.quarantined += 1
        return target

    # -- bookkeeping -------------------------------------------------------

    def _touch(self, path: Path) -> None:
        """Refresh an entry's recency (mtime drives LRU eviction)."""
        try:
            os.utime(path)
        except OSError:  # pragma: no cover - entry evicted concurrently
            pass

    def _entry_paths(self) -> List[Path]:
        return [p for p in self.root.glob("*.json") if p.is_file()]

    def _unit_paths(self) -> List[Path]:
        return [p for p in self.units_dir.glob("*.json") if p.is_file()]

    def __len__(self) -> int:
        return len(self._entry_paths())

    def unit_count(self) -> int:
        return len(self._unit_paths())

    def total_bytes(self) -> int:
        total = 0
        for path in self._entry_paths() + self._unit_paths():
            try:
                total += path.stat().st_size
            except OSError:  # pragma: no cover - concurrent eviction
                pass
        return total

    def _evict_to_bound(self) -> None:
        """Remove least-recently-used entries until under ``max_bytes``."""
        entries = []
        for path in self._entry_paths() + self._unit_paths():
            try:
                stat = path.stat()
            except OSError:  # pragma: no cover
                continue
            entries.append((stat.st_mtime, stat.st_size, path))
        total = sum(size for _, size, _ in entries)
        if total <= self.max_bytes:
            return
        entries.sort()  # oldest mtime first
        for _, size, path in entries:
            if total <= self.max_bytes:
                break
            try:
                path.unlink()
            except OSError:  # pragma: no cover - already gone
                continue
            total -= size
            with self._lock:
                self.stats.evictions += 1

    def clear(self) -> None:
        """Drop all live entries (quarantine is kept)."""
        for path in self._entry_paths() + self._unit_paths():
            try:
                path.unlink()
            except OSError:  # pragma: no cover
                pass
        with self._lock:
            self.stats = DiskCacheStats()
