"""Findings → diagnostics: suppression, selection, promotion, rendering.

Trust: **advisory** — lint reporting and suppression plumbing.

This module is the bridge between the analyzer (pure AST → ``Finding``
values) and the pipeline's :class:`~repro.pipeline.diagnostics.Diagnostic`
vocabulary used by the CLI, the ``analyze`` stage, and the service's 422
payloads.

Suppression is comment-based and purely line-oriented: a source line that
contains ``// lint:ignore`` suppresses every finding reported on that line,
and ``// lint:ignore VPR001,VPR004`` suppresses only the listed checks.
The lexer strips comments before parsing, so the marker never changes the
program being analyzed.
"""

from __future__ import annotations

import re
from dataclasses import dataclass, field
from typing import Dict, Iterable, List, Optional, Sequence, Set, Tuple

from ..pipeline.diagnostics import Diagnostic, SourceLocation, wrap_exception
from ..viper import ViperSyntaxError, parse_program
from .checks import ALL_CHECK_IDS, CHECKS, Finding, analyze_program

#: ``// lint:ignore`` or ``// lint:ignore VPR001, VPR004`` (case-insensitive
#: on the marker, exact on the codes).
_SUPPRESS_RE = re.compile(
    r"//\s*lint:\s*ignore\b[ \t]*(?P<codes>[A-Z0-9, \t]*)", re.IGNORECASE
)


class AnalysisError(Exception):
    """Raised by the pipeline's ``analyze`` stage when error-severity
    findings reject the program.

    Carries the full finding list so callers (the service's 422 payload,
    the CLI) can render every diagnostic, not just the summary line."""

    def __init__(self, findings: Sequence[Finding]):
        self.findings = list(findings)
        errors = [f for f in self.findings if f.severity == "error"]
        head = errors[0] if errors else self.findings[0]
        #: picked up by the diagnostics wrapper as the source location
        self.line = head.line
        extra = len(self.findings) - 1
        message = f"[{head.code}] {head.message}"
        if extra:
            message += f" (+{extra} more finding{'s' if extra > 1 else ''})"
        super().__init__(message)


@dataclass
class LintResult:
    """The outcome of linting one source text.

    ``findings`` are the post-suppression, post-selection findings;
    ``suppressed`` counts how many were dropped by ``lint:ignore`` markers;
    ``error`` is set when the program could not even be parsed or
    typechecked (in which case ``findings`` is empty and ``exit_code`` is
    2).  ``exit_code`` follows the CLI contract: 0 = clean, 1 = findings,
    2 = unanalyzable.
    """

    findings: List[Finding] = field(default_factory=list)
    suppressed: int = 0
    error: Optional[Diagnostic] = None

    @property
    def exit_code(self) -> int:
        if self.error is not None:
            return 2
        return 1 if self.findings else 0

    def to_dict(self) -> dict:
        payload: dict = {
            "findings": [f.to_dict() for f in self.findings],
            "suppressed": self.suppressed,
            "exit_code": self.exit_code,
        }
        if self.error is not None:
            payload["error"] = self.error.to_dict()
        return payload


def suppressed_lines(source: str) -> Dict[int, Optional[Set[str]]]:
    """Map 1-based line numbers to their suppression: ``None`` means the
    whole line is suppressed, a set restricts it to those check IDs."""
    result: Dict[int, Optional[Set[str]]] = {}
    for number, text in enumerate(source.splitlines(), start=1):
        match = _SUPPRESS_RE.search(text)
        if match is None:
            continue
        codes = {
            code.strip().upper()
            for code in match.group("codes").split(",")
            if code.strip()
        }
        result[number] = codes or None
    return result


def apply_suppressions(
    findings: Sequence[Finding], source: str
) -> Tuple[List[Finding], int]:
    """Drop findings whose line carries a matching ``lint:ignore`` marker.

    Returns ``(kept, suppressed_count)``.  Findings without a line (e.g.
    program-wide ones that lost their position) are never suppressed."""
    markers = suppressed_lines(source)
    if not markers:
        return list(findings), 0
    kept: List[Finding] = []
    dropped = 0
    for finding in findings:
        codes = markers.get(finding.line) if finding.line is not None else None
        if finding.line in markers and (codes is None or finding.code in codes):
            dropped += 1
            continue
        kept.append(finding)
    return kept, dropped


def select_findings(
    findings: Sequence[Finding],
    select: Optional[Iterable[str]] = None,
    ignore: Optional[Iterable[str]] = None,
) -> List[Finding]:
    """Keep only the selected check IDs, then drop the ignored ones.

    Unknown IDs raise ``ValueError`` so typos fail loudly instead of
    silently selecting nothing."""
    chosen = _normalize_codes(select) if select is not None else None
    dropped = _normalize_codes(ignore) if ignore is not None else frozenset()
    result = []
    for finding in findings:
        if chosen is not None and finding.code not in chosen:
            continue
        if finding.code in dropped:
            continue
        result.append(finding)
    return result


def _normalize_codes(codes: Iterable[str]) -> frozenset:
    normalized = frozenset(code.strip().upper() for code in codes if code.strip())
    unknown = normalized - set(ALL_CHECK_IDS)
    if unknown:
        raise ValueError(
            f"unknown check ID(s): {', '.join(sorted(unknown))} "
            f"(known: {', '.join(ALL_CHECK_IDS)})"
        )
    return normalized


def promote_warnings(findings: Sequence[Finding]) -> List[Finding]:
    """Turn every warning into an error (the ``--error-on-warn`` switch)."""
    return [
        Finding(
            code=f.code,
            message=f.message,
            severity="error",
            method=f.method,
            line=f.line,
            subject=f.subject,
        )
        if f.severity != "error"
        else f
        for f in findings
    ]


def findings_to_diagnostics(findings: Sequence[Finding]) -> List[Diagnostic]:
    """Map analyzer findings onto the pipeline's diagnostic vocabulary."""
    diagnostics: List[Diagnostic] = []
    for finding in findings:
        info = CHECKS.get(finding.code)
        diagnostics.append(
            Diagnostic(
                stage="analyze",
                message=finding.message,
                location=(
                    SourceLocation(finding.line)
                    if finding.line is not None
                    else None
                ),
                hint=info.hint if info is not None else "",
                severity=finding.severity,
                code=finding.code,
            )
        )
    return diagnostics


def lint_source(
    source: str,
    *,
    select: Optional[Iterable[str]] = None,
    ignore: Optional[Iterable[str]] = None,
    error_on_warn: bool = False,
) -> LintResult:
    """Parse and analyze one source text.

    The analyzer runs on the *pre-desugaring* AST (so ``while``/``old()``/
    ``new`` are still visible and findings cite the source the programmer
    wrote); it deliberately does not typecheck — the type checker only
    accepts the desugared core, and the analyzer is total on anything that
    parses.  Parse errors become a ``LintResult`` with ``error`` set (exit
    code 2) rather than an exception, so the CLI and the service can treat
    "unanalyzable" uniformly.  Check selection errors (unknown IDs) still
    raise ``ValueError`` — those are caller bugs, not program defects."""
    try:
        program = parse_program(source)
    except ViperSyntaxError as error:
        return LintResult(error=wrap_exception("parse", error).diagnostic)
    findings = analyze_program(program)
    findings, suppressed = apply_suppressions(findings, source)
    findings = select_findings(findings, select, ignore)
    if error_on_warn:
        findings = promote_warnings(findings)
    return LintResult(findings=findings, suppressed=suppressed)
