"""Static analysis over the (pre-desugaring) Viper AST.

Trust: **advisory** — lint findings gate review, never a verdict.

A lint subsystem in the spirit of the paper's "catch problems before the
expensive trusted machinery" philosophy: many programs that will
inevitably fail certification — use of unassigned locals, statements after
``assert false``, exhaling permission that was never inhaled — are
statically detectable on the Viper AST in microseconds, long before the
translator, the proof-generating tactic, or the trusted kernel run.

The subsystem is three layers:

* :mod:`repro.analysis.cfg` — per-method control-flow graphs over the
  statement forms (including the extension statements ``while`` and
  ``new`` *before* desugaring, so findings cite the source the programmer
  wrote), plus a generic forward-dataflow engine (worklist, lattice join,
  widening) and a backward liveness solver;
* :mod:`repro.analysis.checks` — the catalog of checks with stable IDs
  (``VPR001`` …), each producing :class:`~repro.analysis.checks.Finding`
  values;
* :mod:`repro.analysis.report` — findings → pipeline
  :class:`~repro.pipeline.diagnostics.Diagnostic` values, comment-based
  suppression, check selection, and warning promotion.

**Trust argument** (see ``docs/ANALYSIS.md``): the analyzer is advisory.
It is consulted by the CLI, the pipeline's optional ``analyze`` stage, and
the service's admission fast path — never by the trusted reparse+check
path.  A missed finding costs only wasted work downstream; a wrong finding
can reject a certifiable program at admission, which is why every check
only reports *provable* facts and the fuzz generator doubles as a
zero-false-positive oracle.
"""

from .cfg import CFG, CFGNode, ForwardAnalysis, build_cfg, run_forward, run_liveness
from .checks import ALL_CHECK_IDS, CHECKS, CheckInfo, Finding, analyze_program
from .report import (
    AnalysisError,
    LintResult,
    apply_suppressions,
    findings_to_diagnostics,
    lint_source,
    promote_warnings,
    select_findings,
    suppressed_lines,
)

__all__ = [
    "CFG",
    "CFGNode",
    "ForwardAnalysis",
    "build_cfg",
    "run_forward",
    "run_liveness",
    "ALL_CHECK_IDS",
    "CHECKS",
    "CheckInfo",
    "Finding",
    "analyze_program",
    "AnalysisError",
    "LintResult",
    "apply_suppressions",
    "findings_to_diagnostics",
    "lint_source",
    "promote_warnings",
    "select_findings",
    "suppressed_lines",
]
