"""The check catalog: stable IDs ``VPR001`` … ``VPR010`` over the Viper AST.

Trust: **advisory** — the VPR check catalog; findings are advice to humans.

Every check reports only *provable* facts, because findings feed the
service's admission fast path where a false positive would reject a
certifiable program.  The corresponding soundness arguments:

``VPR001`` **use-before-assign** — path-insensitive definite assignment
    (intersection lattice over the CFG).  A variable is *defined* by an
    assignment, a call/new target, or an ``inhale`` that mentions it (a
    havoced local constrained by an inhale is deliberate nondeterminism,
    a common Viper idiom, so it must not be flagged).
``VPR002`` **out-parameter never assigned** — an out-parameter that is
    mentioned by the postcondition but assigned (or constrained) on no
    path to a reachable exit.
``VPR003`` **unreachable code** — statements after a literally-false
    ``assert``/``exhale`` and the dead side of a constant-condition
    branch.  ``inhale false`` is deliberately *not* reported: it is the
    standard cut idiom (our own loop desugaring emits it); it still stops
    the other analyses' flow so they never report inside cut regions.
``VPR004`` **dead store** — backward liveness: a local assignment whose
    value is never read (literal right-hand sides are exempt — defensive
    initialisation is not a defect).
``VPR005`` **unused local** — declared but neither read nor written
    anywhere in the method (a variable that is only ever *assigned* is the
    dead-store check's domain, and deliberately exempt there when the
    right-hand side is a literal).
``VPR006`` **unused field** — declared but mentioned nowhere program-wide.
``VPR007`` **unused argument** — mentioned in neither specification nor
    body.
``VPR008`` **permission flow** — a static abstraction over fractional
    masks.  Per field ``f`` the state tracks an upper bound ``hi[f]`` on
    the *total* permission held to ``f`` across all references (sound
    under aliasing: the total bounds every single location's mask), and a
    lower bound ``lo[x, f]`` on the permission held to the location
    ``x.f`` (reset whenever ``x`` is reassigned, any permission to ``f``
    is exhaled, or a call havocs the frame).  Flags: exhaling/asserting
    ``acc(e.f, p)`` when ``hi[f] < p`` (no location can satisfy it);
    writing ``e.f`` when ``hi[f] < 1``; reading ``e.f`` when
    ``hi[f] = 0``; and an ``inhale`` that pushes ``lo[x, f]`` above 1 —
    a guaranteed inconsistency (the state is cut afterwards, like
    ``inhale false``).  Non-literal amounts and loop heads degrade to the
    TOP state (``hi = ∞``), trading recall for a zero false-positive
    guarantee.
``VPR009`` **spec hygiene** — ``old()`` in a precondition (always
    rejected by the desugarer) and the literally-trivial ``assert true``.
``VPR010`` **divergence-shadowed code** — a statement that follows a
    *provably diverging* statement: a closed ``assert``/``exhale`` whose
    assertion constant-folds to false, a loop whose closed condition folds
    to true, or a conditional whose arms all diverge.  This complements
    VPR003, which works at the CFG edge level and deliberately only cuts
    on *syntactic* literals; VPR010 folds closed expressions (no
    variables, no heap, total operators only), so the two never report
    the same statement.  ``inhale`` cuts stay exempt, as in VPR003.


All checks run on the **pre-desugaring** AST: ``old()`` still exists (so
VPR009 can see it), no synthesized havoc/hoist variables trip the
definite-assignment analysis, and source positions are exact.  Synthesized
names are exempted anyway so the analyzer can also be pointed at
desugared programs.
"""

from __future__ import annotations

import functools
from dataclasses import dataclass, field as dc_field
from fractions import Fraction
from typing import Dict, FrozenSet, List, Optional, Set, Tuple

from ..viper.allocation import NewStmt
from ..viper.ast import (
    ARITH_OPS,
    CMP_OPS,
    LAZY_OPS,
    Acc,
    AExpr,
    AssertStmt,
    Assertion,
    BinOp,
    BinOpKind,
    BoolLit,
    CondAssert,
    CondExp,
    Exhale,
    Expr,
    FieldAcc,
    FieldAssign,
    If,
    Implies,
    Inhale,
    IntLit,
    LocalAssign,
    MethodCall,
    MethodDecl,
    NullLit,
    PermLit,
    Program,
    SepConj,
    Seq,
    Skip,
    Stmt,
    stmt_pos,
    UnOp,
    UnOpKind,
    Var,
    VarDecl,
)
from ..viper.loops import While
from ..viper.oldexprs import OldExpr
from .cfg import CFG, CFGNode, ForwardAnalysis, build_cfg, run_forward, run_liveness


# ---------------------------------------------------------------------------
# Catalog
# ---------------------------------------------------------------------------


@dataclass(frozen=True)
class CheckInfo:
    """One catalog entry: stable ID, human name, severity, and hint."""

    code: str
    name: str
    summary: str
    severity: str
    hint: str


CHECKS: Dict[str, CheckInfo] = {
    info.code: info
    for info in (
        CheckInfo(
            "VPR001", "use-before-assign",
            "a local or out-parameter is read before any assignment",
            "warning",
            "assign or constrain the variable before reading it (an inhale "
            "mentioning it counts as a deliberate nondeterministic choice)",
        ),
        CheckInfo(
            "VPR002", "unassigned-out-parameter",
            "an out-parameter mentioned by the postcondition is assigned on "
            "no path to the exit",
            "warning",
            "assign the out-parameter on every path, or drop it from the "
            "postcondition",
        ),
        CheckInfo(
            "VPR003", "unreachable-code",
            "code after a literally-false assert/exhale or on the dead side "
            "of a constant branch",
            "warning",
            "remove the unreachable statements (or the falsifying "
            "assertion); `inhale false` cuts are not reported",
        ),
        CheckInfo(
            "VPR004", "dead-store",
            "a computed value is assigned but never read",
            "warning",
            "remove the assignment or use the value; literal initialisers "
            "are never flagged",
        ),
        CheckInfo(
            "VPR005", "unused-local",
            "a local variable is declared but never read or written",
            "warning",
            "remove the declaration",
        ),
        CheckInfo(
            "VPR006", "unused-field",
            "a field is declared but mentioned nowhere in the program",
            "warning",
            "remove the field declaration",
        ),
        CheckInfo(
            "VPR007", "unused-argument",
            "a method argument is mentioned in neither specification nor "
            "body",
            "warning",
            "remove the argument (adjusting call sites) or use it",
        ),
        CheckInfo(
            "VPR008", "permission-flow",
            "a permission operation that provably fails (or an inhale that "
            "provably yields an inconsistent mask)",
            "error",
            "the static mask bounds prove this operation cannot succeed; "
            "inhale the missing permission first (see docs/ANALYSIS.md for "
            "the abstraction)",
        ),
        CheckInfo(
            "VPR009", "spec-hygiene",
            "old() in a precondition, or a trivially-true assert",
            "warning",
            "old() is only meaningful in postconditions and bodies; "
            "`assert true` checks nothing",
        ),
        CheckInfo(
            "VPR010", "divergence-shadowed-code",
            "code after a statement that provably diverges once closed "
            "expressions are constant-folded (a folded-false assert/exhale, "
            "a folds-true loop condition, or a conditional whose arms all "
            "diverge)",
            "warning",
            "remove the shadowed statements or the diverging construct; "
            "syntactically-literal cases are VPR003's domain and reported "
            "there instead",
        ),
    )
}

ALL_CHECK_IDS: Tuple[str, ...] = tuple(sorted(CHECKS))


@dataclass(frozen=True)
class Finding:
    """One analyzer finding.

    ``subject`` is the offending AST node or name — excluded from
    equality/hash so findings deduplicate on their reportable content; it
    exists for programmatic consumers (the fuzz generator's repair loop).
    """

    code: str
    message: str
    severity: str
    method: Optional[str] = None
    line: Optional[int] = None
    subject: object = dc_field(default=None, compare=False, repr=False, hash=False)

    def to_dict(self) -> dict:
        payload = {
            "code": self.code,
            "severity": self.severity,
            "message": self.message,
        }
        if self.method is not None:
            payload["method"] = self.method
        if self.line is not None:
            payload["line"] = self.line
        return payload


def _synthesized(name: str) -> bool:
    """Names introduced by the desugaring passes (exempt from lint)."""
    return (
        "__havoc" in name
        or "__hoist" in name
        or "__fresh" in name
        or "#" in name
        or name.startswith("oldcap_")
        or name.startswith("old_")
    )


# ---------------------------------------------------------------------------
# Expression / assertion traversals (OldExpr-aware)
# ---------------------------------------------------------------------------


def _children(expr: Expr) -> Tuple[Expr, ...]:
    if isinstance(expr, OldExpr):
        return (expr.expr,)
    if isinstance(expr, FieldAcc):
        return (expr.receiver,)
    if isinstance(expr, BinOp):
        return (expr.left, expr.right)
    if isinstance(expr, UnOp):
        return (expr.operand,)
    if isinstance(expr, CondExp):
        return (expr.cond, expr.then, expr.otherwise)
    return ()


def _expr_reads(expr: Expr) -> FrozenSet[str]:
    if isinstance(expr, Var):
        return frozenset({expr.name})
    result: FrozenSet[str] = frozenset()
    for child in _children(expr):
        result |= _expr_reads(child)
    return result


def _expr_heap_fields(expr: Expr) -> List[str]:
    """Fields read from the *current* heap (``old()`` interiors excluded —
    they read the pre-state, whose mask the analysis does not model)."""
    if isinstance(expr, OldExpr):
        return []
    fields: List[str] = []
    if isinstance(expr, FieldAcc):
        fields.append(expr.field)
    for child in _children(expr):
        fields.extend(_expr_heap_fields(child))
    return fields


def _expr_has_old(expr: Expr) -> bool:
    if isinstance(expr, OldExpr):
        return True
    return any(_expr_has_old(child) for child in _children(expr))


def _assertion_parts(assertion: Assertion):
    """(exprs, sub-assertions) of one assertion level."""
    if isinstance(assertion, AExpr):
        return (assertion.expr,), ()
    if isinstance(assertion, Acc):
        return (assertion.receiver, assertion.perm), ()
    if isinstance(assertion, SepConj):
        return (), (assertion.left, assertion.right)
    if isinstance(assertion, Implies):
        return (assertion.cond,), (assertion.body,)
    if isinstance(assertion, CondAssert):
        return (assertion.cond,), (assertion.then, assertion.otherwise)
    return (), ()


def _assertion_reads(assertion: Assertion) -> FrozenSet[str]:
    exprs, subs = _assertion_parts(assertion)
    result: FrozenSet[str] = frozenset()
    for expr in exprs:
        result |= _expr_reads(expr)
    for sub in subs:
        result |= _assertion_reads(sub)
    return result


def _assertion_has_old(assertion: Assertion) -> bool:
    exprs, subs = _assertion_parts(assertion)
    return any(_expr_has_old(e) for e in exprs) or any(
        _assertion_has_old(s) for s in subs
    )


def _assertion_field_mentions(assertion: Assertion) -> Set[str]:
    exprs, subs = _assertion_parts(assertion)
    fields: Set[str] = set()
    if isinstance(assertion, Acc):
        fields.add(assertion.field)
    for expr in exprs:
        fields.update(_all_expr_fields(expr))
    for sub in subs:
        fields.update(_assertion_field_mentions(sub))
    return fields


def _all_expr_fields(expr: Expr) -> Set[str]:
    fields: Set[str] = set()
    if isinstance(expr, FieldAcc):
        fields.add(expr.field)
    for child in _children(expr):
        fields.update(_all_expr_fields(child))
    return fields


def _literal_false(assertion: Assertion) -> bool:
    """Literally-false at the top level (through separating conjunction)."""
    if isinstance(assertion, AExpr):
        return isinstance(assertion.expr, BoolLit) and not assertion.expr.value
    if isinstance(assertion, SepConj):
        return _literal_false(assertion.left) or _literal_false(assertion.right)
    return False


def _is_literal_expr(expr: Expr) -> bool:
    return isinstance(expr, (IntLit, BoolLit, NullLit, PermLit))


# ---------------------------------------------------------------------------
# Per-node reads/writes (shared by the dataflow clients)
# ---------------------------------------------------------------------------


def _per_node(fn):
    """Memoize a ``CFGNode -> value`` helper on the node itself.

    These helpers are pure in the node, but the worklist engine calls the
    transfer functions (and hence the helpers) once per fixpoint *visit* —
    several times per node on loops — which the profile shows dominating
    the analyze stage.  CFG nodes live exactly as long as one method's
    analysis, so stashing the value on the node is leak-free."""
    key = fn.__name__

    @functools.wraps(fn)
    def wrapper(node: CFGNode):
        memo = node.__dict__.setdefault("_memo", {})
        try:
            return memo[key]
        except KeyError:
            memo[key] = result = fn(node)
            return result

    return wrapper


@_per_node
def _node_checked_reads(node: CFGNode) -> FrozenSet[str]:
    """Variable reads the definite-assignment check reports on.

    Reads inside ``inhale`` are excluded: inhaling a fact about a havoced
    variable is how the subset expresses a nondeterministic choice."""
    stmt = node.stmt
    if node.kind == "branch":
        return _expr_reads(stmt.cond)
    if node.kind == "loop-head":
        return _expr_reads(stmt.cond) | _assertion_reads(stmt.invariant)
    if isinstance(stmt, LocalAssign):
        return _expr_reads(stmt.rhs)
    if isinstance(stmt, FieldAssign):
        return _expr_reads(stmt.receiver) | _expr_reads(stmt.rhs)
    if isinstance(stmt, MethodCall):
        result: FrozenSet[str] = frozenset()
        for arg in stmt.args:
            result |= _expr_reads(arg)
        return result
    if isinstance(stmt, (Exhale, AssertStmt)):
        return _assertion_reads(stmt.assertion)
    return frozenset()


@_per_node
def _node_all_reads(node: CFGNode) -> FrozenSet[str]:
    """Every variable read by a node (liveness uses; includes inhale)."""
    stmt = node.stmt
    if isinstance(stmt, Inhale):
        return _assertion_reads(stmt.assertion)
    return _node_checked_reads(node)


@_per_node
def _node_defs(node: CFGNode) -> FrozenSet[str]:
    stmt = node.stmt
    if isinstance(stmt, LocalAssign):
        return frozenset({stmt.target})
    if isinstance(stmt, MethodCall):
        return frozenset(stmt.targets)
    if isinstance(stmt, NewStmt):
        return frozenset({stmt.target})
    if isinstance(stmt, VarDecl):
        return frozenset({stmt.name})
    return frozenset()


@_per_node
def _kills_flow(node: CFGNode) -> bool:
    """Does the node make all successors semantically unreachable?"""
    stmt = node.stmt
    if isinstance(stmt, (Inhale, Exhale, AssertStmt)):
        return _literal_false(stmt.assertion)
    return False


@_per_node
def _constant_cond(node: CFGNode) -> Optional[bool]:
    if node.kind in ("branch", "loop-head") and isinstance(node.stmt.cond, BoolLit):
        return node.stmt.cond.value
    return None


class _SemanticAnalysis(ForwardAnalysis):
    """Shared behaviour: literal-false statements and constant-condition
    edges cut the flow, so no semantic check reports inside dead code."""

    def transfer_edge(self, node: CFGNode, state, label):
        constant = _constant_cond(node)
        if constant is not None and label is not None and label != constant:
            return None
        return state


# ---------------------------------------------------------------------------
# VPR001 / VPR002: definite assignment
# ---------------------------------------------------------------------------


class _DefiniteAssignment(_SemanticAnalysis):
    """State: the set of definitely-assigned (or constrained) variables.

    Join is intersection (assigned on *every* path)."""

    def __init__(self, entry_assigned: FrozenSet[str]):
        self._entry = entry_assigned

    def initial(self):
        return self._entry

    def join(self, a, b):
        return a & b

    def transfer(self, node: CFGNode, state):
        if _kills_flow(node):
            return None
        stmt = node.stmt
        if isinstance(stmt, VarDecl):
            return state - {stmt.name}
        if isinstance(stmt, Inhale):
            return state | _assertion_reads(stmt.assertion)
        if node.kind == "loop-head":
            # The desugaring inhales the invariant at the head.
            return state | _assertion_reads(stmt.invariant)
        return state | _node_defs(node)


# ---------------------------------------------------------------------------
# VPR003: reporting reachability (inhale-false cuts are *not* reported)
# ---------------------------------------------------------------------------


class _ReportReachability(ForwardAnalysis):
    def initial(self):
        return True

    def join(self, a, b):
        return True

    def transfer(self, node: CFGNode, state):
        stmt = node.stmt
        if isinstance(stmt, (Exhale, AssertStmt)) and _literal_false(stmt.assertion):
            return None
        return True

    def transfer_edge(self, node: CFGNode, state, label):
        constant = _constant_cond(node)
        if constant is not None and label is not None and label != constant:
            return None
        return True


# ---------------------------------------------------------------------------
# VPR010: divergence-shadowed code (constant folding over closed exprs)
# ---------------------------------------------------------------------------

#: Distinguishes ``null`` from every bool/int/Fraction folding result.
_NULL = object()


def _fold_expr(expr: Expr):
    """The value of a *closed* expression, or ``None`` when it mentions
    state (variables, heap, ``old``) or any partial operation (division or
    modulo by zero).  Short-circuiting follows the executable semantics,
    so ``false && x.f > 0`` folds even though its right operand does not.
    ``None`` always means "unknown", never a value: every foldable
    expression of the subset yields a bool, an int, a Fraction, or
    ``_NULL``."""
    if isinstance(expr, (IntLit, BoolLit)):
        return expr.value
    if isinstance(expr, PermLit):
        return expr.amount
    if isinstance(expr, NullLit):
        return _NULL
    if isinstance(expr, UnOp):
        value = _fold_expr(expr.operand)
        if expr.op is UnOpKind.NOT and value in (True, False):
            return not value
        if expr.op is UnOpKind.NEG and value is not None and value is not _NULL \
                and not isinstance(value, bool):
            return -value
        return None
    if isinstance(expr, CondExp):
        cond = _fold_expr(expr.cond)
        if cond in (True, False):
            return _fold_expr(expr.then if cond else expr.otherwise)
        return None
    if isinstance(expr, BinOp):
        return _fold_binop(expr)
    return None


def _fold_binop(expr: BinOp):
    left = _fold_expr(expr.left)
    if expr.op in LAZY_OPS:
        if left not in (True, False):
            return None
        if expr.op is BinOpKind.AND and left is False:
            return False
        if expr.op is BinOpKind.OR and left is True:
            return True
        if expr.op is BinOpKind.IMPLIES and left is False:
            return True
        right = _fold_expr(expr.right)
        return right if right in (True, False) else None
    right = _fold_expr(expr.right)
    if left is None or right is None or left is _NULL or right is _NULL:
        if expr.op in (BinOpKind.EQ, BinOpKind.NE) and _NULL in (left, right):
            # null == null / null != null fold; null against unknown does not.
            if left is _NULL and right is _NULL:
                return expr.op is BinOpKind.EQ
        return None
    numeric = not isinstance(left, bool) and not isinstance(right, bool)
    if expr.op in ARITH_OPS or expr.op is BinOpKind.PERM_DIV:
        if not numeric:
            return None
        try:
            if expr.op is BinOpKind.ADD:
                return left + right
            if expr.op is BinOpKind.SUB:
                return left - right
            if expr.op is BinOpKind.MUL:
                return left * right
            if expr.op is BinOpKind.DIV:
                return left // right
            if expr.op is BinOpKind.MOD:
                return left % right
            return Fraction(left) / Fraction(right)
        except ZeroDivisionError:
            return None  # partial: the well-definedness check governs it
    if expr.op in CMP_OPS:
        if not numeric:
            return None
        if expr.op is BinOpKind.LT:
            return left < right
        if expr.op is BinOpKind.LE:
            return left <= right
        if expr.op is BinOpKind.GT:
            return left > right
        return left >= right
    if expr.op in (BinOpKind.EQ, BinOpKind.NE):
        if isinstance(left, bool) is not isinstance(right, bool):
            return None  # ill-typed comparison; the typechecker's domain
        return (left == right) if expr.op is BinOpKind.EQ else (left != right)
    return None


def _folds_false(assertion: Assertion) -> bool:
    """Folds to false at the top level (through separating conjunction) —
    the folding analogue of :func:`_literal_false`."""
    if isinstance(assertion, AExpr):
        return _fold_expr(assertion.expr) is False
    if isinstance(assertion, SepConj):
        return _folds_false(assertion.left) or _folds_false(assertion.right)
    return False


def _diverges(stmt: Stmt) -> bool:
    """Provably no fault-free continuation past this statement."""
    if isinstance(stmt, (AssertStmt, Exhale)):
        return _folds_false(stmt.assertion)
    if isinstance(stmt, While):
        return _fold_expr(stmt.cond) is True
    if isinstance(stmt, If):
        cond = _fold_expr(stmt.cond)
        if cond is True:
            return _diverges(stmt.then)
        if cond is False:
            return _diverges(stmt.otherwise)
        return _diverges(stmt.then) and _diverges(stmt.otherwise)
    if isinstance(stmt, Seq):
        return _diverges(stmt.first) or _diverges(stmt.second)
    return False


def _diverges_literally(stmt: Stmt) -> bool:
    """The sub-case VPR003's edge-level machinery already sees: syntactic
    ``false`` assertions and syntactic ``true``/``false`` conditions, with
    no folding.  VPR010 keeps quiet exactly here."""
    if isinstance(stmt, (AssertStmt, Exhale)):
        return _literal_false(stmt.assertion)
    if isinstance(stmt, While):
        return isinstance(stmt.cond, BoolLit) and stmt.cond.value
    if isinstance(stmt, If):
        if isinstance(stmt.cond, BoolLit):
            branch = stmt.then if stmt.cond.value else stmt.otherwise
            return _diverges_literally(branch)
        return _diverges_literally(stmt.then) and _diverges_literally(
            stmt.otherwise
        )
    if isinstance(stmt, Seq):
        return _diverges_literally(stmt.first) or _diverges_literally(
            stmt.second
        )
    return False


def _flatten_seq(stmt: Stmt) -> List[Stmt]:
    if isinstance(stmt, Seq):
        return _flatten_seq(stmt.first) + _flatten_seq(stmt.second)
    return [stmt]


def _divergence_kind(stmt: Stmt) -> str:
    if isinstance(stmt, (AssertStmt, Exhale)):
        return "assertion folds to false"
    if isinstance(stmt, While):
        return "loop condition folds to true"
    return "every arm of the conditional diverges"


def _check_divergence(
    body: Stmt, method: MethodDecl, findings: List[Finding]
) -> None:
    """Walk one statement level; report the first statement shadowed by a
    folded-diverging predecessor, mirroring VPR003's first-of-region rule.
    Nothing inside a dead region is visited — no reports inside dead
    code, folded or literal."""
    stmts = _flatten_seq(body)
    for index, stmt in enumerate(stmts):
        if isinstance(stmt, If):
            _check_divergence(stmt.then, method, findings)
            _check_divergence(stmt.otherwise, method, findings)
        elif isinstance(stmt, While):
            _check_divergence(stmt.body, method, findings)
        if not _diverges(stmt):
            continue
        if not _diverges_literally(stmt) and index + 1 < len(stmts):
            line = stmt_pos(stmts[index + 1])
            findings.append(Finding(
                "VPR010",
                f"method {method.name!r}: code after a diverging statement "
                f"({_divergence_kind(stmt)})",
                CHECKS["VPR010"].severity,
                method=method.name,
                line=line,
                subject=stmts[index + 1],
            ))
        return


# ---------------------------------------------------------------------------
# VPR008: the permission-flow abstraction
# ---------------------------------------------------------------------------

#: ``None`` inside ``hi`` means +∞ (unknown upper bound).
_PermHi = Optional[Fraction]


@dataclass
class _PermState:
    """hi: per-field upper bound on *total* permission; lo: per-(var, field)
    lower bound on the permission held to that location.

    Stored as plain dicts, treated as immutable by convention: the
    transfer functions always go through ``hi_map``/``lo_map`` copies and
    rebuild via ``make``.  Dict equality is order-insensitive, so the
    fixpoint engine's ``equals`` works unchanged, and skipping the old
    sorted-tuple canonicalisation keeps the analyze stage inside its <5%
    pipeline budget (docs/ANALYSIS.md § Performance)."""

    hi: Dict[str, _PermHi]
    lo: Dict[Tuple[str, str], Fraction]

    @staticmethod
    def make(hi: Dict[str, _PermHi], lo: Dict[Tuple[str, str], Fraction]):
        return _PermState(hi, {k: v for k, v in lo.items() if v > 0})

    def hi_map(self) -> Dict[str, _PermHi]:
        return dict(self.hi)

    def lo_map(self) -> Dict[Tuple[str, str], Fraction]:
        return dict(self.lo)


def _hi_add(a: _PermHi, amount: Optional[Fraction]) -> _PermHi:
    if a is None or amount is None:
        return None
    return a + amount


def _hi_sub(a: _PermHi, amount: Fraction) -> _PermHi:
    if a is None:
        return None
    return max(a - amount, Fraction(0))


def _hi_lt(a: _PermHi, amount: Fraction) -> bool:
    """Is the upper bound provably below ``amount``? (∞ never is.)"""
    return a is not None and a < amount


def _assertion_has_acc(assertion: Assertion) -> bool:
    if isinstance(assertion, Acc):
        return True
    _, subs = _assertion_parts(assertion)
    return any(_assertion_has_acc(sub) for sub in subs)


@_per_node
def _node_perm_identity(node: CFGNode) -> bool:
    """Is the permission transfer of this node provably the identity?

    With ``report=None`` the fixpoint transfer only *changes* state on
    ``acc`` conjuncts, allocation, calls, assignments, and loop heads;
    the ubiquitous pure assertions (``assert x.f > 0``) walk the whole
    assertion just to return the input.  Deciding that once per node and
    short-circuiting keeps the analyze stage inside its <5% budget.  The
    reporting pass never takes this path — it re-runs the full transfer
    to emit heap-read findings."""
    if node.kind in ("entry", "exit", "branch"):
        return True  # _heap_reads is a no-op without a report sink
    if node.kind == "loop-head":
        return False
    stmt = node.stmt
    if isinstance(stmt, (Inhale, Exhale, AssertStmt)):
        return not _literal_false(stmt.assertion) and not _assertion_has_acc(
            stmt.assertion
        )
    return isinstance(stmt, (VarDecl, Skip))


class _PermissionFlow(_SemanticAnalysis):
    def __init__(self, fields: Tuple[str, ...], method: MethodDecl):
        self._fields = fields
        self._method = method

    # -- lattice ----------------------------------------------------------

    def initial(self):
        hi: Dict[str, _PermHi] = {f: Fraction(0) for f in self._fields}
        state = _PermState.make(hi, {})
        return _perm_assertion(
            state, self._method.pre, "inhale", definite=False, report=None
        )

    def join(self, a: _PermState, b: _PermState):
        ahi, bhi = a.hi_map(), b.hi_map()
        hi: Dict[str, _PermHi] = {}
        for f in set(ahi) | set(bhi):
            x, y = ahi.get(f, Fraction(0)), bhi.get(f, Fraction(0))
            hi[f] = None if (x is None or y is None) else max(x, y)
        alo, blo = a.lo_map(), b.lo_map()
        lo = {
            key: min(alo.get(key, Fraction(0)), blo.get(key, Fraction(0)))
            for key in set(alo) | set(blo)
        }
        return _PermState.make(hi, lo)

    def widen(self, old: _PermState, new: _PermState):
        """Degrade any growing bound straight to TOP so loops converge."""
        ohi, nhi = old.hi_map(), new.hi_map()
        hi: Dict[str, _PermHi] = {}
        for f in set(ohi) | set(nhi):
            x, y = ohi.get(f, Fraction(0)), nhi.get(f, Fraction(0))
            hi[f] = x if (x is not None and y is not None and y <= x) else None
        olo, nlo = old.lo_map(), new.lo_map()
        lo = {
            key: olo[key]
            for key in olo
            if nlo.get(key, Fraction(0)) >= olo[key]
        }
        return _PermState.make(hi, lo)

    # -- transfer ---------------------------------------------------------

    def transfer(self, node: CFGNode, state: _PermState):
        if _node_perm_identity(node):
            return state
        return _perm_node(node, state, self._fields, report=None)


def _perm_top(fields: Tuple[str, ...]) -> _PermState:
    return _PermState.make({f: None for f in fields}, {})


def _perm_node(
    node: CFGNode,
    state: _PermState,
    fields: Tuple[str, ...],
    report: Optional[List[Finding]],
    method: Optional[MethodDecl] = None,
) -> Optional[_PermState]:
    """Shared transfer/report body.  With ``report=None`` it is the pure
    transfer; with a list it also appends findings (the reporting pass
    re-runs it on the fixpoint's in-states)."""
    if _kills_flow(node):
        return None
    stmt = node.stmt
    line = node.pos
    if node.kind == "branch":
        _heap_reads(state, (stmt.cond,), report, method, line)
        return state
    if node.kind == "loop-head":
        # entry/preservation exhale of the invariant, checked against the
        # joined in-state (sound: the entry path's bound is ≤ the join) …
        after = _perm_assertion(state, stmt.invariant, "exhale",
                                definite=True, report=report,
                                method=method, line=line)
        # … then the head havocs the frame and re-inhales the invariant.
        top = _perm_top(fields)
        inhaled = _perm_assertion(top, stmt.invariant, "inhale",
                                  definite=True, report=report,
                                  method=method, line=line)
        if after is None or inhaled is None:
            return None
        return inhaled
    if isinstance(stmt, LocalAssign):
        _heap_reads(state, (stmt.rhs,), report, method, line)
        return _drop_var_lo(state, stmt.target)
    if isinstance(stmt, FieldAssign):
        _heap_reads(state, (stmt.receiver, stmt.rhs), report, method, line)
        hi = state.hi_map().get(stmt.field, Fraction(0))
        if report is not None and _hi_lt(hi, Fraction(1)):
            report.append(Finding(
                "VPR008",
                f"write to .{stmt.field} requires full permission, but at "
                f"most {hi} can be held here",
                CHECKS["VPR008"].severity,
                method=method.name if method else None,
                line=line,
                subject=stmt,
            ))
        return state
    if isinstance(stmt, MethodCall):
        _heap_reads(state, stmt.args, report, method, line)
        # The callee may exhale and inhale arbitrary permission.
        return _perm_top(fields)
    if isinstance(stmt, NewStmt):
        allocated = fields if stmt.all_fields else stmt.fields
        hi = state.hi_map()
        lo = state.lo_map()
        for key in [k for k in lo if k[0] == stmt.target]:
            del lo[key]
        for f in allocated:
            hi[f] = _hi_add(hi.get(f, Fraction(0)), Fraction(1))
            lo[(stmt.target, f)] = Fraction(1)
        return _PermState.make(hi, lo)
    if isinstance(stmt, Inhale):
        return _perm_assertion(state, stmt.assertion, "inhale",
                               definite=True, report=report,
                               method=method, line=line)
    if isinstance(stmt, Exhale):
        return _perm_assertion(state, stmt.assertion, "exhale",
                               definite=True, report=report,
                               method=method, line=line)
    if isinstance(stmt, AssertStmt):
        return _perm_assertion(state, stmt.assertion, "assert",
                               definite=True, report=report,
                               method=method, line=line)
    return state


def _drop_var_lo(state: _PermState, name: str) -> _PermState:
    lo = {k: v for k, v in state.lo_map().items() if k[0] != name}
    return _PermState.make(state.hi_map(), lo)


def _heap_reads(
    state: _PermState,
    exprs,
    report: Optional[List[Finding]],
    method: Optional[MethodDecl],
    line: Optional[int],
) -> None:
    if report is None:
        return
    hi = state.hi_map()
    for expr in exprs:
        for f in _expr_heap_fields(expr):
            if hi.get(f, Fraction(0)) == Fraction(0):
                report.append(Finding(
                    "VPR008",
                    f"read of .{f}, but no permission to {f} can be held "
                    f"here",
                    CHECKS["VPR008"].severity,
                    method=method.name if method else None,
                    line=line,
                ))


def _perm_assertion(
    state: Optional[_PermState],
    assertion: Assertion,
    mode: str,
    *,
    definite: bool,
    report: Optional[List[Finding]],
    method: Optional[MethodDecl] = None,
    line: Optional[int] = None,
    eval_state: Optional[_PermState] = None,
    flag_inconsistency: bool = True,
) -> Optional[_PermState]:
    """Process an assertion left-to-right in ``inhale``/``exhale``/
    ``assert`` mode.  ``definite`` is False under a guard (``==>``/``?:``),
    where nothing is reported because the guard may be false.  Returns
    ``None`` when the state is provably inconsistent afterwards.

    ``eval_state`` is the state heap *reads* are checked against: per the
    exhale semantics (``remcheck(a, σ, σ)``), pure sub-expressions are
    evaluated in the state at the start of the exhale, so
    ``exhale acc(x.f) && x.f == r`` is well-defined even though the
    permission is removed by the first conjunct.  During inhale the
    running state is used instead (permissions only grow)."""
    if state is None:
        return None
    if eval_state is None:
        eval_state = state
    emit = report if (report is not None and definite) else None
    read_state = state if mode == "inhale" else eval_state
    if isinstance(assertion, AExpr):
        _heap_reads(read_state, (assertion.expr,), emit, method, line)
        return state
    if isinstance(assertion, SepConj):
        state = _perm_assertion(state, assertion.left, mode, definite=definite,
                                report=report, method=method, line=line,
                                eval_state=eval_state,
                                flag_inconsistency=flag_inconsistency)
        return _perm_assertion(state, assertion.right, mode, definite=definite,
                               report=report, method=method, line=line,
                               eval_state=eval_state,
                                flag_inconsistency=flag_inconsistency)
    if isinstance(assertion, Implies):
        _heap_reads(read_state, (assertion.cond,), emit, method, line)
        taken = _perm_assertion(state, assertion.body, mode, definite=False,
                                report=None, method=method, line=line,
                                eval_state=eval_state,
                                flag_inconsistency=flag_inconsistency)
        if taken is None:
            return state  # the guard is provably false in consistent states
        return _perm_join(state, taken)
    if isinstance(assertion, CondAssert):
        _heap_reads(read_state, (assertion.cond,), emit, method, line)
        then = _perm_assertion(state, assertion.then, mode, definite=False,
                               report=None, method=method, line=line,
                               eval_state=eval_state,
                                flag_inconsistency=flag_inconsistency)
        other = _perm_assertion(state, assertion.otherwise, mode,
                                definite=False, report=None,
                                method=method, line=line,
                                eval_state=eval_state,
                                flag_inconsistency=flag_inconsistency)
        if then is None:
            return other
        if other is None:
            return then
        return _perm_join(then, other)
    if isinstance(assertion, Acc):
        _heap_reads(read_state, (assertion.receiver, assertion.perm), emit, method, line)
        hi = state.hi_map()
        lo = state.lo_map()
        f = assertion.field
        amount = (
            assertion.perm.amount if isinstance(assertion.perm, PermLit) else None
        )
        receiver = (
            assertion.receiver.name
            if isinstance(assertion.receiver, Var)
            else None
        )
        if mode == "inhale":
            hi[f] = _hi_add(hi.get(f, Fraction(0)), amount)
            if receiver is not None and amount is not None:
                key = (receiver, f)
                lo[key] = lo.get(key, Fraction(0)) + amount
                if lo[key] > 1:
                    if emit is not None and flag_inconsistency:
                        emit.append(Finding(
                            "VPR008",
                            f"inhale pushes the permission to "
                            f"{receiver}.{f} to {lo[key]} > 1 — the state "
                            f"is guaranteed inconsistent",
                            CHECKS["VPR008"].severity,
                            method=method.name if method else None,
                            line=line,
                            subject=assertion,
                        ))
                    return None
            return _PermState.make(hi, lo)
        # exhale / assert both require the permission to be present.
        if amount is not None and amount > 0 and _hi_lt(hi.get(f, Fraction(0)), amount):
            if emit is not None:
                verb = "exhale" if mode == "exhale" else "assert"
                emit.append(Finding(
                    "VPR008",
                    f"{verb} of acc(..{f}, {amount}) but at most "
                    f"{hi.get(f, Fraction(0))} permission to {f} can be "
                    f"held here",
                    CHECKS["VPR008"].severity,
                    method=method.name if method else None,
                    line=line,
                    subject=assertion,
                ))
        if mode == "exhale":
            if amount is not None:
                hi[f] = _hi_sub(hi.get(f, Fraction(0)), amount)
            for key in list(lo):
                if key[1] != f:
                    continue
                if receiver is not None and amount is not None and key[0] == receiver:
                    lo[key] = max(lo[key] - amount, Fraction(0))
                else:
                    del lo[key]  # an alias may have lost this permission
        else:  # assert: the state is unchanged, but on success we may
            # strengthen the location's lower bound.
            if receiver is not None and amount is not None:
                key = (receiver, f)
                lo[key] = max(lo.get(key, Fraction(0)), amount)
        return _PermState.make(hi, lo)
    return state


def _perm_join(a: _PermState, b: _PermState) -> _PermState:
    ahi, bhi = a.hi_map(), b.hi_map()
    hi: Dict[str, _PermHi] = {}
    for f in set(ahi) | set(bhi):
        x, y = ahi.get(f, Fraction(0)), bhi.get(f, Fraction(0))
        hi[f] = None if (x is None or y is None) else max(x, y)
    alo, blo = a.lo_map(), b.lo_map()
    lo = {
        key: min(alo.get(key, Fraction(0)), blo.get(key, Fraction(0)))
        for key in set(alo) | set(blo)
    }
    return _PermState.make(hi, lo)


# ---------------------------------------------------------------------------
# The analyzer
# ---------------------------------------------------------------------------


def analyze_program(program: Program) -> List[Finding]:
    """Run every check over a (pre-desugaring) Viper program.

    Returns findings sorted by source line, then check ID."""
    findings: List[Finding] = []
    fields = tuple(decl.name for decl in program.fields)

    mentioned_fields: Set[str] = set()
    for method in program.methods:
        mentioned_fields |= _assertion_field_mentions(method.pre)
        mentioned_fields |= _assertion_field_mentions(method.post)
        if method.body is not None:
            mentioned_fields |= _stmt_field_mentions(method.body, fields)
        findings.extend(_analyze_method(method, fields))

    # VPR006: unused fields (program-wide).
    for decl in program.fields:
        if decl.name not in mentioned_fields and not _synthesized(decl.name):
            findings.append(Finding(
                "VPR006",
                f"field {decl.name!r} is declared but never mentioned",
                CHECKS["VPR006"].severity,
                line=decl.pos,
                subject=decl.name,
            ))

    # Findings hash without their `subject`, so dedupe keeps the first
    # occurrence from the original (deterministic) traversal order.
    seen = set()
    ordered: List[Finding] = []
    for finding in findings:
        if finding in seen:
            continue
        seen.add(finding)
        ordered.append(finding)
    ordered.sort(key=lambda f: (f.line if f.line is not None else 0, f.code, f.message))
    return ordered


def _stmt_field_mentions(stmt: Stmt, fields: Tuple[str, ...]) -> Set[str]:
    mentioned: Set[str] = set()

    def walk(node: Stmt) -> None:
        if isinstance(node, Seq):
            walk(node.first)
            walk(node.second)
        elif isinstance(node, If):
            mentioned.update(_all_expr_fields(node.cond))
            walk(node.then)
            walk(node.otherwise)
        elif isinstance(node, While):
            mentioned.update(_all_expr_fields(node.cond))
            mentioned.update(_assertion_field_mentions(node.invariant))
            walk(node.body)
        elif isinstance(node, LocalAssign):
            mentioned.update(_all_expr_fields(node.rhs))
        elif isinstance(node, FieldAssign):
            mentioned.add(node.field)
            mentioned.update(_all_expr_fields(node.receiver))
            mentioned.update(_all_expr_fields(node.rhs))
        elif isinstance(node, MethodCall):
            for arg in node.args:
                mentioned.update(_all_expr_fields(arg))
        elif isinstance(node, (Inhale, Exhale, AssertStmt)):
            mentioned.update(_assertion_field_mentions(node.assertion))
        elif isinstance(node, NewStmt):
            mentioned.update(fields if node.all_fields else node.fields)

    walk(stmt)
    return mentioned


def _collect_var_decls(stmt: Stmt) -> List[VarDecl]:
    decls: List[VarDecl] = []

    def walk(node: Stmt) -> None:
        if isinstance(node, Seq):
            walk(node.first)
            walk(node.second)
        elif isinstance(node, If):
            walk(node.then)
            walk(node.otherwise)
        elif isinstance(node, While):
            walk(node.body)
        elif isinstance(node, VarDecl):
            decls.append(node)

    walk(stmt)
    return decls


def _analyze_method(method: MethodDecl, fields: Tuple[str, ...]) -> List[Finding]:
    findings: List[Finding] = []

    # ---- VPR009(a): old() in a precondition ------------------------------
    if _assertion_has_old(method.pre):
        findings.append(Finding(
            "VPR009",
            f"method {method.name!r}: old() in a precondition (it denotes "
            f"the pre-state, which *is* the precondition's state)",
            "error",
            method=method.name,
            line=method.pos,
        ))

    spec_reads = _assertion_reads(method.pre) | _assertion_reads(method.post)

    if method.body is None:
        # Abstract method: only the signature checks apply.
        for name, _ in method.args:
            if name not in spec_reads and not _synthesized(name):
                findings.append(Finding(
                    "VPR007",
                    f"method {method.name!r}: argument {name!r} is never "
                    f"used",
                    CHECKS["VPR007"].severity,
                    method=method.name,
                    line=method.pos,
                    subject=name,
                ))
        return findings

    cfg = build_cfg(method.body)

    # ---- body-wide read/write sets --------------------------------------
    body_reads: Set[str] = set()
    body_defs: Set[str] = set()
    for node in cfg.nodes:
        body_reads |= _node_all_reads(node)
        body_defs |= _node_defs(node)

    # ---- VPR001/VPR002: definite assignment ------------------------------
    arg_names = frozenset(method.arg_names)
    return_names = frozenset(method.return_names)
    assignment = _DefiniteAssignment(arg_names)
    assigned_in = run_forward(cfg, assignment)
    reachable = set(assigned_in)
    declared_locals = {d.name for d in _collect_var_decls(method.body)}
    for node in cfg.nodes:
        if node.index not in assigned_in:
            continue
        state = assigned_in[node.index]
        for name in sorted(_node_checked_reads(node)):
            if name in state or _synthesized(name):
                continue
            if name not in return_names and name not in declared_locals:
                continue  # args and anything unknown are assumed assigned
            findings.append(Finding(
                "VPR001",
                f"method {method.name!r}: {name!r} may be read before "
                f"assignment",
                CHECKS["VPR001"].severity,
                method=method.name,
                line=node.pos,
                subject=name,
            ))
    post_reads = _assertion_reads(method.post)
    if cfg.exit in assigned_in:
        exit_state = assigned_in[cfg.exit]
        for name in sorted(return_names):
            if name in exit_state or _synthesized(name):
                continue
            if name not in post_reads:
                continue
            findings.append(Finding(
                "VPR002",
                f"method {method.name!r}: out-parameter {name!r} is "
                f"mentioned by the postcondition but assigned on no path "
                f"to the exit",
                CHECKS["VPR002"].severity,
                method=method.name,
                line=method.pos,
                subject=name,
            ))

    # ---- VPR003: unreachable code ---------------------------------------
    report_reach = run_forward(cfg, _ReportReachability())
    for node in cfg.nodes:
        if node.kind not in ("stmt", "branch", "loop-head"):
            continue
        if node.index in report_reach:
            continue
        if not any(pred in report_reach for pred, _ in cfg.preds[node.index]):
            continue  # only flag the first statement of a dead region
        findings.append(Finding(
            "VPR003",
            f"method {method.name!r}: unreachable code",
            CHECKS["VPR003"].severity,
            method=method.name,
            line=node.pos,
            subject=node.stmt,
        ))

    # ---- VPR010: divergence-shadowed code (folded, not literal) ----------
    _check_divergence(method.body, method, findings)

    # ---- VPR004: dead stores --------------------------------------------
    exit_live = frozenset(return_names) | post_reads
    live_out = run_liveness(cfg, _node_all_reads, _node_defs, exit_live)
    for node in cfg.nodes:
        stmt = node.stmt
        if not isinstance(stmt, LocalAssign) or node.kind != "stmt":
            continue
        if node.index not in reachable:
            continue
        if _is_literal_expr(stmt.rhs) or _synthesized(stmt.target):
            continue
        if stmt.target in live_out.get(node.index, frozenset()):
            continue
        if stmt.target not in body_reads:
            continue  # never read at all → VPR005 reports the declaration
        findings.append(Finding(
            "VPR004",
            f"method {method.name!r}: value assigned to {stmt.target!r} is "
            f"never used (dead store)",
            CHECKS["VPR004"].severity,
            method=method.name,
            line=node.pos,
            subject=stmt,
        ))

    # ---- VPR005: unused locals ------------------------------------------
    # Writes only (declarations are defs for the assignment analysis but
    # must not count as "uses" here).
    body_writes: Set[str] = set()
    for node in cfg.nodes:
        if not isinstance(node.stmt, VarDecl):
            body_writes |= _node_defs(node)
    for decl in _collect_var_decls(method.body):
        if _synthesized(decl.name):
            continue
        if decl.name in body_reads or decl.name in body_writes:
            continue
        findings.append(Finding(
            "VPR005",
            f"method {method.name!r}: local {decl.name!r} is declared but "
            f"never used",
            CHECKS["VPR005"].severity,
            method=method.name,
            line=decl.pos,
            subject=decl,
        ))

    # ---- VPR007: unused arguments ---------------------------------------
    invariant_reads: Set[str] = set()
    for node in cfg.nodes:
        if node.kind == "loop-head":
            invariant_reads |= _assertion_reads(node.stmt.invariant)
    used = spec_reads | body_reads | body_defs | invariant_reads
    for name, _ in method.args:
        if name in used or _synthesized(name):
            continue
        findings.append(Finding(
            "VPR007",
            f"method {method.name!r}: argument {name!r} is never used",
            CHECKS["VPR007"].severity,
            method=method.name,
            line=method.pos,
            subject=name,
        ))

    # ---- VPR008: permission flow ----------------------------------------
    perm = _PermissionFlow(fields, method)
    pre_report: List[Finding] = []
    # A contradictory precondition (lo > 1) is *not* reported: it makes the
    # method vacuous (never callable), which the corpus uses deliberately —
    # the body is simply skipped, like code behind `inhale false`.
    entry_state = _perm_assertion(
        _PermState.make({f: Fraction(0) for f in fields}, {}),
        method.pre, "inhale", definite=True, report=pre_report,
        method=method, line=method.pos, flag_inconsistency=False,
    )
    findings.extend(pre_report)
    if entry_state is not None:
        perm_in = run_forward(cfg, perm)
        perm_report: List[Finding] = []
        for node in cfg.nodes:
            if node.index not in perm_in:
                continue
            state = perm_in[node.index]
            if node.kind == "exit":
                _perm_assertion(state, method.post, "exhale", definite=True,
                                report=perm_report, method=method,
                                line=method.pos)
            else:
                _perm_node(node, state, fields, report=perm_report,
                           method=method)
        findings.extend(perm_report)

    # ---- VPR009(b): trivially-true asserts ------------------------------
    for node in cfg.stmt_nodes():
        stmt = node.stmt
        if (
            isinstance(stmt, AssertStmt)
            and isinstance(stmt.assertion, AExpr)
            and isinstance(stmt.assertion.expr, BoolLit)
            and stmt.assertion.expr.value
        ):
            findings.append(Finding(
                "VPR009",
                f"method {method.name!r}: `assert true` checks nothing",
                CHECKS["VPR009"].severity,
                method=method.name,
                line=node.pos,
                subject=stmt,
            ))

    return findings
