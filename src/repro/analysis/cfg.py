"""Per-method control-flow graphs and a generic forward-dataflow engine.

Trust: **advisory** — control-flow scaffolding for the linter only.

The CFG is built over the *pre-desugaring* statement forms — the core
subset (``Seq``/``If``/``Inhale``/``Exhale``/``AssertStmt``/assignments/
calls/``VarDecl``) plus the extension statements ``While`` and ``New`` —
so analyses run on the program the programmer wrote and findings cite its
source lines.  Statements are atomic nodes; ``If`` contributes a
``branch`` node whose outgoing edges are labelled ``True``/``False``;
``While`` contributes a ``loop-head`` node with a labelled exit edge and a
back edge from the body.

The dataflow engine is a standard worklist fixpoint over a join
semilattice supplied by the client analysis:

* absence of a state means *unreachable* (the bottom element) — the engine
  handles it so client lattices never model reachability themselves;
* ``transfer`` maps a node's in-state to its out-state;
* ``transfer_edge`` lets branch nodes refine the out-state per edge label
  (e.g. a constantly-false condition kills its ``True`` edge);
* after a node has been revisited ``widen_after`` times its in-state is
  widened instead of joined, which bounds iteration for infinite-height
  lattices (the permission-interval abstraction of ``checks.py``).

A small backward liveness solver (``run_liveness``) rides along for the
dead-store check; it shares the CFG and the worklist discipline.
"""

from __future__ import annotations

from collections import deque
from dataclasses import dataclass
from typing import Callable, Deque, Dict, FrozenSet, List, Optional, Tuple

from ..viper.ast import If, Seq, Skip, Stmt
from ..viper.loops import While


@dataclass
class CFGNode:
    """One node of a method CFG.

    ``kind`` is one of ``entry`` / ``exit`` / ``stmt`` / ``branch`` /
    ``loop-head``; ``stmt`` is the underlying AST node (the ``If`` for a
    branch, the ``While`` for a loop head, ``None`` for entry/exit).
    """

    index: int
    kind: str
    stmt: Optional[object] = None

    @property
    def pos(self) -> Optional[int]:
        return getattr(self.stmt, "pos", None)


#: An edge label: ``None`` for unconditional edges, ``True``/``False`` for
#: the two sides of a branch or the taken/exit edges of a loop head.
EdgeLabel = Optional[bool]


class CFG:
    """A per-method control-flow graph with labelled edges."""

    def __init__(self) -> None:
        self.nodes: List[CFGNode] = []
        self.succs: Dict[int, List[Tuple[int, EdgeLabel]]] = {}
        self.preds: Dict[int, List[Tuple[int, EdgeLabel]]] = {}
        self.entry: int = -1
        self.exit: int = -1

    def add_node(self, kind: str, stmt: Optional[object] = None) -> int:
        index = len(self.nodes)
        self.nodes.append(CFGNode(index, kind, stmt))
        self.succs[index] = []
        self.preds[index] = []
        return index

    def add_edge(self, src: int, dst: int, label: EdgeLabel = None) -> None:
        self.succs[src].append((dst, label))
        self.preds[dst].append((src, label))

    def stmt_nodes(self) -> List[CFGNode]:
        """All nodes carrying an atomic statement, in creation order
        (creation order follows the program text)."""
        return [n for n in self.nodes if n.kind == "stmt"]


def build_cfg(body: Stmt) -> CFG:
    """Build the CFG of one method body.

    The entry node precedes the first statement; every fall-through path
    reaches the single exit node.  Unknown statement classes are treated
    as opaque atomic nodes so the builder never rejects a program that
    parsed (analysis must be total).
    """
    cfg = CFG()
    cfg.entry = cfg.add_node("entry")
    frontier: List[Tuple[int, EdgeLabel]] = [(cfg.entry, None)]
    frontier = _extend(cfg, body, frontier)
    cfg.exit = cfg.add_node("exit")
    for src, label in frontier:
        cfg.add_edge(src, cfg.exit, label)
    return cfg


def _connect(
    cfg: CFG, frontier: List[Tuple[int, EdgeLabel]], node: int
) -> None:
    for src, label in frontier:
        cfg.add_edge(src, node, label)


def _extend(
    cfg: CFG, stmt: Stmt, frontier: List[Tuple[int, EdgeLabel]]
) -> List[Tuple[int, EdgeLabel]]:
    if isinstance(stmt, Skip):
        return frontier
    if isinstance(stmt, Seq):
        return _extend(cfg, stmt.second, _extend(cfg, stmt.first, frontier))
    if isinstance(stmt, If):
        branch = cfg.add_node("branch", stmt)
        _connect(cfg, frontier, branch)
        then_frontier = _extend(cfg, stmt.then, [(branch, True)])
        else_frontier = _extend(cfg, stmt.otherwise, [(branch, False)])
        return then_frontier + else_frontier
    if isinstance(stmt, While):
        head = cfg.add_node("loop-head", stmt)
        _connect(cfg, frontier, head)
        body_frontier = _extend(cfg, stmt.body, [(head, True)])
        _connect(cfg, body_frontier, head)  # back edges
        return [(head, False)]
    # Atomic statement (including NewStmt and anything future passes add).
    node = cfg.add_node("stmt", stmt)
    _connect(cfg, frontier, node)
    return [(node, None)]


# ---------------------------------------------------------------------------
# Forward dataflow engine
# ---------------------------------------------------------------------------


class ForwardAnalysis:
    """A client analysis: a join semilattice plus transfer functions.

    Subclass and override; states may be any value.  ``None`` is reserved
    by the engine for *unreachable* and never passed to client methods.
    """

    def initial(self):
        """The state at the entry node."""
        raise NotImplementedError

    def join(self, a, b):
        """Least upper bound of two (non-None) states."""
        raise NotImplementedError

    def widen(self, old, new):
        """Widening after repeated revisits; defaults to ``join``."""
        return self.join(old, new)

    def transfer(self, node: CFGNode, state):
        """Out-state of a node given its in-state.

        Return ``None`` to mark all successors unreachable (e.g. after
        ``inhale false``)."""
        return state

    def transfer_edge(self, node: CFGNode, state, label: EdgeLabel):
        """Refine the out-state along one labelled edge.

        Return ``None`` to kill the edge (e.g. the ``True`` edge of a
        constantly-false branch)."""
        return state

    def equals(self, a, b) -> bool:
        return a == b


def run_forward(
    cfg: CFG, analysis: ForwardAnalysis, *, widen_after: int = 4
) -> Dict[int, object]:
    """Run ``analysis`` to fixpoint; returns the in-state per node index.

    Nodes absent from the result are unreachable.  ``widen_after`` bounds
    how many times a node is re-joined before widening kicks in (only
    loop heads can be revisited, via back edges).
    """
    in_states: Dict[int, object] = {cfg.entry: analysis.initial()}
    visits: Dict[int, int] = {}
    worklist: Deque[int] = deque((cfg.entry,))
    while worklist:
        index = worklist.popleft()
        state = in_states.get(index)
        if state is None:
            continue
        node = cfg.nodes[index]
        out = analysis.transfer(node, state)
        if out is None:
            continue
        for succ, label in cfg.succs[index]:
            edge_state = analysis.transfer_edge(node, out, label)
            if edge_state is None:
                continue
            if succ not in in_states:
                in_states[succ] = edge_state
                worklist.append(succ)
                continue
            current = in_states[succ]
            visits[succ] = visits.get(succ, 0) + 1
            if visits[succ] > widen_after:
                joined = analysis.widen(current, edge_state)
            else:
                joined = analysis.join(current, edge_state)
            if not analysis.equals(joined, current):
                in_states[succ] = joined
                worklist.append(succ)
    return in_states


# ---------------------------------------------------------------------------
# Backward liveness (for the dead-store check)
# ---------------------------------------------------------------------------


def run_liveness(
    cfg: CFG,
    uses: Callable[[CFGNode], FrozenSet[str]],
    defs: Callable[[CFGNode], FrozenSet[str]],
    exit_live: FrozenSet[str],
) -> Dict[int, FrozenSet[str]]:
    """Classic backward may-liveness; returns the live-*out* set per node.

    ``uses(n)``/``defs(n)`` give the variables a node reads/writes;
    ``exit_live`` are the variables conceptually read after the method
    returns (out-parameters and every variable the postcondition
    mentions).
    """
    live_in: Dict[int, FrozenSet[str]] = {}
    live_out: Dict[int, FrozenSet[str]] = {}
    changed = True
    while changed:
        changed = False
        # Reverse creation order approximates reverse program order, so the
        # round-robin sweep converges in a handful of passes.
        for index in range(len(cfg.nodes) - 1, -1, -1):
            node = cfg.nodes[index]
            out: FrozenSet[str] = frozenset()
            for succ, _ in cfg.succs[index]:
                out |= live_in.get(succ, frozenset())
            if node.kind == "exit":
                out = out | exit_live
            new_in = uses(node) | (out - defs(node))
            if out != live_out.get(index) or new_in != live_in.get(index):
                live_out[index] = out
                live_in[index] = new_in
                changed = True
    return live_out
