"""``repro trace summarize``: flame tables from exported trace files.

Trust: **advisory** — renders observability data; touches nothing else.

Reads any mix of Chrome-trace and JSONL exports and renders:

* an aggregate per-span-name table (count, total, mean, max) — the
  "which stage is the money going to" view across every trace in the
  input, and
* a flame tree of the slowest trace — root to leaves, indented by
  parent/child relation, each line showing duration, share of the root,
  and the load-bearing attributes (method, tier, cache).
"""

from __future__ import annotations

from typing import Any, Dict, List, Optional, Sequence

from .spans import Span


def summarize(spans: Sequence[Span]) -> Dict[str, Any]:
    """Aggregate a span set: per-name stats plus per-trace roots."""
    by_name: Dict[str, Dict[str, float]] = {}
    for span in spans:
        stats = by_name.setdefault(
            span.name, {"count": 0, "total": 0.0, "max": 0.0}
        )
        stats["count"] += 1
        stats["total"] += span.duration
        stats["max"] = max(stats["max"], span.duration)
    for stats in by_name.values():
        stats["mean"] = stats["total"] / stats["count"] if stats["count"] else 0.0
    traces: Dict[str, List[Span]] = {}
    for span in spans:
        traces.setdefault(span.trace_id, []).append(span)
    roots = {
        trace_id: next((s for s in members if s.parent_id is None), None)
        for trace_id, members in traces.items()
    }
    return {
        "spans": len(spans),
        "traces": len(traces),
        "names": by_name,
        "roots": roots,
        "by_trace": traces,
    }


def slowest_trace(summary: Dict[str, Any]) -> Optional[str]:
    """The trace id with the longest root span (None without roots)."""
    best: Optional[str] = None
    best_duration = -1.0
    for trace_id, root in sorted(summary["roots"].items()):
        if root is not None and root.duration > best_duration:
            best, best_duration = trace_id, root.duration
    return best


def _attribute_note(span: Span) -> str:
    keep = ("method", "tier", "cache", "endpoint", "status", "error",
            "queue_wait_seconds")
    parts = [f"{k}={span.attributes[k]}" for k in keep if k in span.attributes]
    if span.status != "ok":
        parts.append("ERROR")
    return f"  [{', '.join(parts)}]" if parts else ""


def render_flame(spans: Sequence[Span], root: Span, indent: str = "  ") -> List[str]:
    """One indented line per span of the root's tree, depth-first."""
    children: Dict[str, List[Span]] = {}
    for span in spans:
        if span.trace_id == root.trace_id and span.parent_id:
            children.setdefault(span.parent_id, []).append(span)
    for members in children.values():
        members.sort(key=lambda s: (s.start_unix, s.name))
    total = root.duration or 1e-12
    lines: List[str] = []

    def walk(span: Span, depth: int) -> None:
        share = 100.0 * span.duration / total
        lines.append(
            f"{indent * depth}{span.name:<{max(4, 28 - len(indent) * depth)}}"
            f" {span.duration * 1000:9.3f} ms {share:5.1f}%"
            f"{_attribute_note(span)}"
        )
        for child in children.get(span.span_id, ()):  # depth-first
            walk(child, depth + 1)

    walk(root, 0)
    return lines


def flame_tree(spans: Sequence[Span], root: Span) -> Dict[str, Any]:
    """The root's span tree as nested dicts (the machine-readable flame).

    Each node carries ``name``, ``duration``, ``share`` (of the root),
    the span's attributes/status, and ``children`` in start order — the
    same depth-first shape :func:`render_flame` prints.
    """
    children: Dict[str, List[Span]] = {}
    for span in spans:
        if span.trace_id == root.trace_id and span.parent_id:
            children.setdefault(span.parent_id, []).append(span)
    for members in children.values():
        members.sort(key=lambda s: (s.start_unix, s.name))
    total = root.duration or 1e-12

    def node(span: Span) -> Dict[str, Any]:
        payload: Dict[str, Any] = {
            "name": span.name,
            "duration": span.duration,
            "share": span.duration / total,
            "children": [node(c) for c in children.get(span.span_id, ())],
        }
        if span.attributes:
            payload["attributes"] = dict(span.attributes)
        if span.status != "ok":
            payload["status"] = span.status
        return payload

    return node(root)


def summary_to_dict(spans: Sequence[Span]) -> Dict[str, Any]:
    """The ``repro trace summarize --json`` document.

    Mirrors :func:`render_summary` field for field: the per-name stats
    table, every trace root, and the slowest trace's flame tree.
    """
    summary = summarize(spans)
    slow_id = slowest_trace(summary)
    traces = []
    for trace_id, root in sorted(summary["roots"].items()):
        entry: Dict[str, Any] = {
            "trace_id": trace_id,
            "spans": len(summary["by_trace"][trace_id]),
        }
        if root is not None:
            entry["root"] = root.name
            entry["duration"] = root.duration
        traces.append(entry)
    payload: Dict[str, Any] = {
        "schema": 1,
        "spans": summary["spans"],
        "traces": traces,
        "names": {
            name: dict(stats) for name, stats in sorted(summary["names"].items())
        },
        "slowest_trace": slow_id,
    }
    if slow_id is not None and summary["roots"][slow_id] is not None:
        payload["flame"] = flame_tree(
            summary["by_trace"][slow_id], summary["roots"][slow_id]
        )
    return payload


def render_summary(spans: Sequence[Span]) -> str:
    """The full ``repro trace summarize`` report."""
    if not spans:
        return "no spans found"
    summary = summarize(spans)
    lines = [f"{summary['spans']} spans across {summary['traces']} trace(s)", ""]
    lines.append(f"{'span':<24} {'count':>6} {'total ms':>10} "
                 f"{'mean ms':>10} {'max ms':>10}")
    lines.append("-" * 64)
    ordered = sorted(
        summary["names"].items(), key=lambda kv: -kv[1]["total"]
    )
    for name, stats in ordered:
        lines.append(
            f"{name:<24} {int(stats['count']):>6} "
            f"{stats['total'] * 1000:>10.3f} {stats['mean'] * 1000:>10.3f} "
            f"{stats['max'] * 1000:>10.3f}"
        )
    slow_id = slowest_trace(summary)
    if slow_id is not None:
        root = summary["roots"][slow_id]
        lines.append("")
        lines.append(f"slowest trace {slow_id} "
                     f"({root.duration * 1000:.3f} ms):")
        lines.extend(render_flame(summary["by_trace"][slow_id], root))
    return "\n".join(lines)
