"""The span model: trace IDs, ambient context, and the in-memory collector.

Trust: **advisory** — tracing observes the pipeline and the service; its
output is never consulted by the trusted reparse+check path (the same
position as the static analyzer, see docs/TRUSTED_BASE.md § Untrusted).

The paper's evaluation attributes cost per phase (Tab. 1–6); its
predecessor on validating Boogie's VC generation (arXiv:2105.14381) does
the same per validation phase.  This module generalises that discipline
from *aggregate* per-stage timings to *per-request, correlated* spans: a
:class:`Span` carries a 32-hex ``trace_id`` shared by every piece of work
done for one request, a 16-hex ``span_id``, and a ``parent_id`` linking
it into a tree — server accept → pool dispatch → worker → pipeline stage
→ method unit.

Design rules (docs/OBSERVABILITY.md has the full data model):

* **Zero dependencies, zero clock tricks.**  ``start_unix`` is epoch
  seconds (cross-process comparable); ``duration`` is measured with
  ``time.perf_counter`` (monotonic, immune to clock steps).
* **Context is ambient but explicit at boundaries.**  Inside one process
  a ``contextvars.ContextVar`` carries the current :class:`SpanContext`;
  across process boundaries the caller ships a W3C-traceparent-style
  header (``00-<trace_id>-<span_id>-<flags>``) in the job payload and the
  callee re-establishes the context (:func:`parse_traceparent` /
  :func:`use_context`).
* **Collection is opt-in.**  No collector, no allocation beyond the
  context lookup — which is how the tracing-off overhead stays ~0.
"""

from __future__ import annotations

import os
import threading
import time
from contextlib import contextmanager
from dataclasses import dataclass, field
from typing import Any, Dict, Iterator, List, Optional

from contextvars import ContextVar

#: The only traceparent version this reproduction emits or accepts.
TRACEPARENT_VERSION = "00"


def new_trace_id() -> str:
    """A fresh 32-hex-digit (128-bit) trace identifier."""
    return os.urandom(16).hex()


def new_span_id() -> str:
    """A fresh 16-hex-digit (64-bit) span identifier."""
    return os.urandom(8).hex()


@dataclass(frozen=True)
class SpanContext:
    """The propagatable part of a span: just enough to parent children."""

    trace_id: str
    span_id: str
    sampled: bool = True


def format_traceparent(ctx: SpanContext) -> str:
    """Render a context as a W3C-style traceparent header value."""
    flags = "01" if ctx.sampled else "00"
    return f"{TRACEPARENT_VERSION}-{ctx.trace_id}-{ctx.span_id}-{flags}"


def parse_traceparent(header: Optional[str]) -> Optional[SpanContext]:
    """Parse a traceparent value; returns None on anything malformed.

    Malformed headers are *dropped*, never raised on: a corrupt header
    must degrade to an untraced request, not a failed one.
    """
    if not isinstance(header, str):
        return None
    parts = header.strip().split("-")
    if len(parts) != 4:
        return None
    version, trace_id, span_id, flags = parts
    if version != TRACEPARENT_VERSION:
        return None
    if len(trace_id) != 32 or len(span_id) != 16 or len(flags) != 2:
        return None
    try:
        int(trace_id, 16), int(span_id, 16)
        flag_bits = int(flags, 16)
    except ValueError:
        return None
    if set(trace_id) == {"0"} or set(span_id) == {"0"}:
        return None
    return SpanContext(trace_id=trace_id, span_id=span_id, sampled=bool(flag_bits & 1))


@dataclass
class Span:
    """One timed operation in a trace tree.

    ``start_unix`` is wall-clock epoch seconds; ``duration`` is seconds
    measured monotonically.  ``status`` is ``"ok"`` or ``"error"``.
    """

    name: str
    trace_id: str
    span_id: str = field(default_factory=new_span_id)
    parent_id: Optional[str] = None
    start_unix: float = 0.0
    duration: float = 0.0
    attributes: Dict[str, Any] = field(default_factory=dict)
    status: str = "ok"
    #: perf_counter at start; None once ended (internal to end()).
    _perf_start: Optional[float] = field(default=None, repr=False, compare=False)

    @classmethod
    def start(
        cls,
        name: str,
        *,
        parent: Optional[SpanContext] = None,
        trace_id: Optional[str] = None,
        attributes: Optional[Dict[str, Any]] = None,
    ) -> "Span":
        """Begin a span now, under ``parent`` (or as a new trace root)."""
        if parent is not None:
            trace = parent.trace_id
            parent_id: Optional[str] = parent.span_id
        else:
            trace = trace_id or new_trace_id()
            parent_id = None
        return cls(
            name=name,
            trace_id=trace,
            parent_id=parent_id,
            start_unix=time.time(),
            attributes=dict(attributes or {}),
            _perf_start=time.perf_counter(),
        )

    def end(self) -> "Span":
        """Stamp the duration from the monotonic clock (idempotent)."""
        if self._perf_start is not None:
            self.duration = time.perf_counter() - self._perf_start
            self._perf_start = None
        return self

    def context(self) -> SpanContext:
        return SpanContext(trace_id=self.trace_id, span_id=self.span_id)

    def set_error(self, detail: str = "") -> None:
        self.status = "error"
        if detail:
            self.attributes.setdefault("error", detail)

    def to_dict(self) -> Dict[str, Any]:
        record: Dict[str, Any] = {
            "name": self.name,
            "trace_id": self.trace_id,
            "span_id": self.span_id,
            "start_unix": self.start_unix,
            "duration": self.duration,
        }
        if self.parent_id:
            record["parent_id"] = self.parent_id
        if self.attributes:
            record["attributes"] = dict(self.attributes)
        if self.status != "ok":
            record["status"] = self.status
        return record

    @classmethod
    def from_dict(cls, record: Dict[str, Any]) -> "Span":
        return cls(
            name=str(record["name"]),
            trace_id=str(record["trace_id"]),
            span_id=str(record.get("span_id") or new_span_id()),
            parent_id=record.get("parent_id"),
            start_unix=float(record.get("start_unix", 0.0)),
            duration=float(record.get("duration", 0.0)),
            attributes=dict(record.get("attributes", {})),
            status=str(record.get("status", "ok")),
        )


class TraceCollector:
    """A thread-safe, append-only span sink for one process."""

    def __init__(self) -> None:
        self._lock = threading.Lock()
        self._spans: List[Span] = []

    def add(self, span: Span) -> None:
        with self._lock:
            self._spans.append(span)

    def extend(self, spans: List[Span]) -> None:
        with self._lock:
            self._spans.extend(spans)

    @property
    def spans(self) -> List[Span]:
        with self._lock:
            return list(self._spans)

    def drain(self) -> List[Span]:
        """Return and clear every collected span."""
        with self._lock:
            spans, self._spans = self._spans, []
            return spans

    def by_trace(self, trace_id: str) -> List[Span]:
        with self._lock:
            return [s for s in self._spans if s.trace_id == trace_id]

    def __len__(self) -> int:
        with self._lock:
            return len(self._spans)


# -- ambient context ---------------------------------------------------------

_CURRENT: "ContextVar[Optional[SpanContext]]" = ContextVar(
    "repro_trace_context", default=None
)


def current_context() -> Optional[SpanContext]:
    """The ambient span context of this task/thread, if any."""
    return _CURRENT.get()


def current_trace_id() -> Optional[str]:
    ctx = _CURRENT.get()
    return ctx.trace_id if ctx is not None else None


def current_traceparent() -> Optional[str]:
    """The ambient context rendered as a traceparent header (or None)."""
    ctx = _CURRENT.get()
    return format_traceparent(ctx) if ctx is not None else None


@contextmanager
def use_context(ctx: Optional[SpanContext]) -> Iterator[Optional[SpanContext]]:
    """Install ``ctx`` as the ambient context for the dynamic extent."""
    token = _CURRENT.set(ctx)
    try:
        yield ctx
    finally:
        _CURRENT.reset(token)


@contextmanager
def start_span(
    name: str,
    *,
    collector: Optional[TraceCollector] = None,
    parent: Optional[SpanContext] = None,
    attributes: Optional[Dict[str, Any]] = None,
) -> Iterator[Span]:
    """Run a block under a new span; parent defaults to the ambient context.

    The span becomes the ambient context for the block, is marked
    ``error`` if the block raises, and is added to ``collector`` (when
    given) after it ends.
    """
    span = Span.start(
        name, parent=parent if parent is not None else _CURRENT.get(),
        attributes=attributes,
    )
    token = _CURRENT.set(span.context())
    try:
        yield span
    except BaseException as error:
        span.set_error(f"{type(error).__name__}: {error}")
        raise
    finally:
        _CURRENT.reset(token)
        span.end()
        if collector is not None:
            collector.add(span)
