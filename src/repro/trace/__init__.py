"""End-to-end structured tracing for the pipeline and the service.

Trust: **advisory** — spans observe; they are never consulted by the
trusted reparse+check path (docs/TRUSTED_BASE.md, docs/OBSERVABILITY.md).

A zero-dependency span tracer correlating one request's work across the
asyncio server, the process pool, and every pipeline stage and method
unit under a single ``trace_id``:

* :mod:`repro.trace.spans` — the :class:`Span` model, the thread-safe
  :class:`TraceCollector`, contextvar-based ambient context, and
  W3C-traceparent-style propagation (``00-<trace_id>-<span_id>-<flags>``)
  for crossing the process-pool boundary;
* :mod:`repro.trace.derive` — spans derived from (and by construction
  reconciled with) :class:`PipelineInstrumentation` records;
* :mod:`repro.trace.export` — Chrome ``trace_event`` JSON (loadable in
  ``about:tracing``/Perfetto) and compact JSONL, plus format-sniffing
  readers;
* :mod:`repro.trace.sampling` — ``repro serve --trace-dir`` persistence:
  N slowest + every errored request + a deterministic hash-rate sample;
* :mod:`repro.trace.summarize` — the ``repro trace summarize`` flame
  table.
"""

from .derive import spans_from_instrumentation
from .export import (
    chrome_trace,
    read_many,
    read_spans,
    write_chrome_trace,
    write_jsonl,
)
from .sampling import RequestTraceStore, hash_sample
from .spans import (
    Span,
    SpanContext,
    TraceCollector,
    current_context,
    current_trace_id,
    current_traceparent,
    format_traceparent,
    new_span_id,
    new_trace_id,
    parse_traceparent,
    start_span,
    use_context,
)
from .summarize import flame_tree, render_summary, summarize, summary_to_dict

__all__ = [
    "Span",
    "SpanContext",
    "TraceCollector",
    "RequestTraceStore",
    "chrome_trace",
    "current_context",
    "current_trace_id",
    "current_traceparent",
    "flame_tree",
    "format_traceparent",
    "hash_sample",
    "new_span_id",
    "new_trace_id",
    "parse_traceparent",
    "read_many",
    "read_spans",
    "render_summary",
    "spans_from_instrumentation",
    "start_span",
    "summarize",
    "summary_to_dict",
    "use_context",
    "write_chrome_trace",
    "write_jsonl",
]
