"""Derive trace spans from pipeline instrumentation records.

Trust: **advisory** — reads :class:`PipelineInstrumentation` after the
fact; the pipeline and the trusted reparse+check path are unaffected.

The pipeline already times itself (:mod:`repro.pipeline.instrumentation`
feeds the paper tables); duplicating that timing inside a tracer would
invite the two to disagree.  Spans are therefore *derived*: each
:class:`StageRecord` becomes one ``stage.<name>`` span whose duration is
the record's ``seconds`` (work) with a ``cache_lookup`` child span for
the record's ``cache_lookup_seconds`` (probe wall-time), and each
:class:`UnitRecord` becomes one ``unit.<stage>`` span parented under its
stage.  By construction a trace and ``bench --json`` can never tell a
different story about the same run.

Timing notes:

* Start times convert from the instrumentation's monotonic offsets to
  epoch seconds through its wall-clock anchor
  (:meth:`PipelineInstrumentation.to_unix`), so spans from different
  processes line up on one timeline.
* Unit spans under ``--unit-jobs`` fan-out are laid out at
  ``record time − duration`` (child processes report durations only);
  serial runs are exact, parallel runs are an honest approximation and
  their summed durations may exceed the parent stage's wall-clock.
"""

from __future__ import annotations

from typing import List, Optional

from ..pipeline.instrumentation import PipelineInstrumentation
from .spans import Span, SpanContext, TraceCollector, new_span_id

#: Skipped-stage spans are emitted with this duration (zero-width slices
#: are invisible in Chrome's viewer; one microsecond marks the event).
_SKIP_WIDTH = 1e-6


def spans_from_instrumentation(
    inst: PipelineInstrumentation,
    parent: SpanContext,
    collector: Optional[TraceCollector] = None,
) -> List[Span]:
    """Materialise one span per stage/unit record under ``parent``.

    Returns the spans (stage spans first, in record order); also adds
    them to ``collector`` when one is given.
    """
    spans: List[Span] = []
    stage_contexts = {}
    for record in inst.records:
        started = record.started
        if started is None:
            continue
        attributes = {}
        if record.cached:
            attributes["cached"] = True
        if record.skipped:
            attributes["skipped"] = True
        for name, value in record.artifacts.items():
            attributes[name] = value
        # The span covers the stage's wall-clock (work + cache probes);
        # the cache_lookup child below carves out the probe share, so
        # span − child = the record's ``seconds`` — the same number
        # ``bench --json`` reports as stage work.
        wall = record.seconds + record.cache_lookup_seconds
        if record.cache_lookup_seconds:
            attributes["work_seconds"] = record.seconds
            attributes["cache_lookup_seconds"] = record.cache_lookup_seconds
        span = Span(
            name=f"stage.{record.stage}",
            trace_id=parent.trace_id,
            span_id=new_span_id(),
            parent_id=parent.span_id,
            start_unix=inst.to_unix(started),
            duration=wall if (wall or not record.skipped) else _SKIP_WIDTH,
            attributes=attributes,
        )
        spans.append(span)
        # Later records of the same stage win: unit spans recorded after a
        # stage re-run should parent under the most recent execution.
        stage_contexts[record.stage] = span.context()
        if record.cache_lookup_seconds:
            spans.append(
                Span(
                    name="cache_lookup",
                    trace_id=parent.trace_id,
                    span_id=new_span_id(),
                    parent_id=span.span_id,
                    # Probes run at stage entry (unit keys are resolved
                    # before any rebuild), so anchoring at the stage start
                    # is the faithful layout.
                    start_unix=inst.to_unix(started),
                    duration=record.cache_lookup_seconds,
                )
            )
    for record in inst.unit_records:
        if record.started is None:
            continue
        stage_ctx = stage_contexts.get(record.stage, parent)
        attributes = {"method": record.method, "tier": record.tier}
        if record.reused:
            attributes["reused"] = True
        spans.append(
            Span(
                name=f"unit.{record.stage}",
                trace_id=parent.trace_id,
                span_id=new_span_id(),
                parent_id=stage_ctx.span_id,
                start_unix=inst.to_unix(record.started),
                duration=record.seconds if not record.reused else _SKIP_WIDTH,
                attributes=attributes,
            )
        )
    if collector is not None:
        collector.extend(spans)
    return spans
