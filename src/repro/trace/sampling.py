"""Request-trace sampling: keep the slowest, keep every error.

Trust: **advisory** — decides which observability data to persist,
nothing more.

``repro serve --trace-dir`` cannot write every request's trace (a warm
cache serves thousands per minute); the store keeps exactly what an
operator asks "where did the time go?" about:

* the **N slowest** requests seen so far (capacity-bounded, slower
  evicts faster),
* **every errored** request (5xx/504) — errors are never sampled out,
* optionally, a deterministic **hash-rate** sample
  (:func:`hash_sample`): the keep-decision is a pure function of
  ``(trace_id, rate, seed)``, so replaying a request log under a fixed
  seed persists the identical subset — reproducible sampling for
  regression tests and incident replay.

Files are Chrome-trace JSON (`<trace_id>.trace.json`, errors marked
``.error.trace.json``), loadable directly in ``about:tracing``/Perfetto;
an append-only ``index.jsonl`` records one line per persisted trace.
"""

from __future__ import annotations

import hashlib
import json
import os
import threading
from typing import Any, Dict, List, Optional, Sequence, Tuple

from .export import write_chrome_trace
from .spans import Span

#: Resolution of the hash-rate sampler: the keep-decision compares a
#: 64-bit hash fraction against ``rate``.
_HASH_DENOMINATOR = float(1 << 64)


def hash_sample(trace_id: str, rate: float, seed: int = 0) -> bool:
    """Deterministic keep-decision: a pure function of (id, rate, seed).

    The trace id is hashed (salted with ``seed``) to a fraction in
    [0, 1); the trace is kept iff that fraction is below ``rate``.  Equal
    inputs always decide equally — across processes, runs, and machines.
    """
    if rate <= 0.0:
        return False
    if rate >= 1.0:
        return True
    digest = hashlib.sha256(f"{seed}:{trace_id}".encode("ascii")).digest()
    fraction = int.from_bytes(digest[:8], "big") / _HASH_DENOMINATOR
    return fraction < rate


class RequestTraceStore:
    """Persist sampled request traces under one directory.

    Thread-safe; the server calls :meth:`offer` once per completed
    request with the root span and the full span set.
    """

    def __init__(
        self,
        directory: str,
        capacity: int = 10,
        rate: float = 0.0,
        seed: int = 0,
    ) -> None:
        self.directory = directory
        self.capacity = max(0, int(capacity))
        self.rate = float(rate)
        self.seed = int(seed)
        self._lock = threading.Lock()
        #: The current slowest-N set: (duration, trace_id, path).
        self._slowest: List[Tuple[float, str, str]] = []
        os.makedirs(directory, exist_ok=True)

    def offer(self, root: Span, spans: Sequence[Span]) -> List[str]:
        """Consider one finished request; returns the keep-reasons.

        Reasons: ``"error"`` (always persisted), ``"slowest"`` (entered
        the top-N by root duration), ``"sampled"`` (hash-rate keep).  An
        empty list means nothing was written.
        """
        reasons: List[str] = []
        errored = root.status == "error"
        if errored:
            reasons.append("error")
        if hash_sample(root.trace_id, self.rate, self.seed):
            reasons.append("sampled")
        with self._lock:
            if self.capacity and not errored:
                if len(self._slowest) < self.capacity:
                    reasons.append("slowest")
                elif self._slowest and root.duration > self._slowest[0][0]:
                    reasons.append("slowest")
            if not reasons:
                return []
            path = self._write(root, spans, errored)
            if "slowest" in reasons:
                self._slowest.append((root.duration, root.trace_id, path))
                self._slowest.sort()
                while len(self._slowest) > self.capacity:
                    _, _, evicted = self._slowest.pop(0)
                    # Never unlink a file another reason also claimed.
                    if evicted != path or reasons == ["slowest"]:
                        self._try_unlink(evicted)
            self._index(root, reasons, path)
        return reasons

    # -- internals ---------------------------------------------------------

    def _write(self, root: Span, spans: Sequence[Span], errored: bool) -> str:
        suffix = ".error.trace.json" if errored else ".trace.json"
        path = os.path.join(self.directory, f"{root.trace_id}{suffix}")
        write_chrome_trace(path, list(spans))
        return path

    def _index(self, root: Span, reasons: List[str], path: str) -> None:
        entry = {
            "trace_id": root.trace_id,
            "duration": root.duration,
            "status": root.status,
            "reasons": reasons,
            "file": os.path.basename(path),
        }
        index = os.path.join(self.directory, "index.jsonl")
        with open(index, "a", encoding="utf-8") as handle:
            handle.write(json.dumps(entry, sort_keys=True) + "\n")

    @staticmethod
    def _try_unlink(path: str) -> None:
        try:
            os.unlink(path)
        except OSError:
            pass

    # -- queries (tests, summarize) ----------------------------------------

    def index_entries(self) -> List[Dict[str, Any]]:
        """Every index line, oldest first ([] when nothing persisted)."""
        index = os.path.join(self.directory, "index.jsonl")
        if not os.path.exists(index):
            return []
        entries: List[Dict[str, Any]] = []
        with open(index, "r", encoding="utf-8") as handle:
            for line in handle:
                line = line.strip()
                if line:
                    entries.append(json.loads(line))
        return entries

    def persisted_trace_ids(self) -> List[str]:
        """Trace ids with a trace file currently on disk."""
        ids = []
        for name in sorted(os.listdir(self.directory)):
            if name.endswith(".trace.json"):
                ids.append(name.split(".", 1)[0])
        return ids
