"""Trace exporters: Chrome ``trace_event`` JSON and compact JSONL.

Trust: **advisory** — serialisation of observability data only.

Two interchangeable on-disk formats:

* **Chrome trace JSON** (:func:`chrome_trace` / :func:`write_chrome_trace`)
  — the ``trace_event`` format that ``about:tracing`` and Perfetto load
  directly: one complete-duration event (``"ph": "X"``) per span, with
  timestamps/durations in microseconds, one ``tid`` row per trace, and
  the full span record preserved under ``args`` so the file round-trips
  losslessly through :func:`read_spans`.
* **JSONL** (:func:`write_jsonl`) — one :meth:`Span.to_dict` JSON object
  per line; append-friendly and grep-friendly.

:func:`read_spans` sniffs either format, so ``repro trace summarize``
accepts both.
"""

from __future__ import annotations

import json
from typing import Any, Dict, Iterable, List, Sequence

from .spans import Span

#: Synthetic process id for exported traces (one logical process; the
#: real pid split is recorded as a span attribute where it matters).
_PID = 1


def chrome_trace(spans: Sequence[Span]) -> Dict[str, Any]:
    """The ``trace_event`` document for a span set (Chrome/Perfetto).

    Spans of the same ``trace_id`` share a ``tid`` so each request
    renders as one row; trace ids are assigned rows in first-seen order.
    """
    tids: Dict[str, int] = {}
    events: List[Dict[str, Any]] = []
    for trace_id in (s.trace_id for s in spans):
        if trace_id not in tids:
            tids[trace_id] = len(tids) + 1
    for tid, trace_id in sorted((t, i) for i, t in tids.items()):
        events.append({
            "name": "thread_name", "ph": "M", "pid": _PID, "tid": tid,
            "args": {"name": f"trace {trace_id[:8]}"},
        })
    for span in spans:
        events.append({
            "name": span.name,
            "ph": "X",
            "ts": span.start_unix * 1e6,
            "dur": max(span.duration, 0.0) * 1e6,
            "pid": _PID,
            "tid": tids[span.trace_id],
            "cat": "repro",
            "args": {"span": span.to_dict()},
        })
    return {"traceEvents": events, "displayTimeUnit": "ms"}


def write_chrome_trace(path: str, spans: Sequence[Span]) -> None:
    with open(path, "w", encoding="utf-8") as handle:
        json.dump(chrome_trace(spans), handle, indent=None, separators=(",", ":"))
        handle.write("\n")


def write_jsonl(path: str, spans: Sequence[Span]) -> None:
    with open(path, "w", encoding="utf-8") as handle:
        for span in spans:
            handle.write(json.dumps(span.to_dict(), sort_keys=True) + "\n")


def spans_from_chrome(document: Dict[str, Any]) -> List[Span]:
    """Recover spans from a Chrome trace document written by this module."""
    spans: List[Span] = []
    for event in document.get("traceEvents", []):
        record = (event.get("args") or {}).get("span")
        if isinstance(record, dict):
            spans.append(Span.from_dict(record))
    return spans


def read_spans(path: str) -> List[Span]:
    """Load spans from a Chrome-trace or JSONL file (format-sniffed)."""
    with open(path, "r", encoding="utf-8") as handle:
        text = handle.read()
    if text.lstrip().startswith("{"):
        try:
            document = json.loads(text)
        except json.JSONDecodeError:
            document = None  # multiple objects: JSONL, handled below
        if isinstance(document, dict):
            if "traceEvents" in document:
                return spans_from_chrome(document)
            return [Span.from_dict(document)]
    spans: List[Span] = []
    for line in text.splitlines():
        line = line.strip()
        if line:
            spans.append(Span.from_dict(json.loads(line)))
    return spans


def read_many(paths: Iterable[str]) -> List[Span]:
    """Concatenate spans from several exported files."""
    spans: List[Span] = []
    for path in paths:
        spans.extend(read_spans(path))
    return spans
