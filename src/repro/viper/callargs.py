"""Hoisting of non-variable call arguments.

Trust: **trusted** — call-site argument evaluation order is semantics, not
convenience.

The supported translation requires every call argument to be a variable;
the paper's evaluation "made sure that each argument to a method call is a
variable (e.g. we rewrote m(i+1) to var t := i+1; m(t))" — by hand.  This
pass automates exactly that rewrite:

    ys := m(e1, ..., ek)   ⇝   var arg#0 : T1 ; arg#0 := e1 ; ... ;
                               ys := m(arg#0, ..., arg#k)

Hoisting preserves the call's semantics: arguments are evaluated
left-to-right in the pre-call state either way, and a hoisted evaluation
that is ill-defined fails at the assignment exactly where the call's
argument evaluation would have failed.
"""

from __future__ import annotations

from typing import Dict, List

from .ast import (
    If,
    LocalAssign,
    MethodCall,
    MethodDecl,
    Program,
    Seq,
    Stmt,
    Type,
    Var,
    VarDecl,
)
from .exprtype import viper_expr_type


def program_has_complex_call_args(program: Program) -> bool:
    """Whether any call passes a non-variable argument."""
    def stmt_has(stmt: Stmt) -> bool:
        if isinstance(stmt, MethodCall):
            return any(not isinstance(arg, Var) for arg in stmt.args)
        if isinstance(stmt, Seq):
            return stmt_has(stmt.first) or stmt_has(stmt.second)
        if isinstance(stmt, If):
            return stmt_has(stmt.then) or stmt_has(stmt.otherwise)
        return False

    return any(
        method.body is not None and stmt_has(method.body)
        for method in program.methods
    )


def hoist_call_args(program: Program) -> Program:
    """Rewrite every call so all its arguments are variables."""
    field_types = {decl.name: decl.typ for decl in program.fields}
    methods: List[MethodDecl] = []
    for method in program.methods:
        if method.body is None:
            methods.append(method)
            continue
        counter = [0]
        var_types: Dict[str, Type] = dict(method.args) | dict(method.returns)

        def collect(stmt: Stmt) -> None:
            if isinstance(stmt, VarDecl):
                var_types[stmt.name] = stmt.typ
            elif isinstance(stmt, Seq):
                collect(stmt.first)
                collect(stmt.second)
            elif isinstance(stmt, If):
                collect(stmt.then)
                collect(stmt.otherwise)

        collect(method.body)

        def rewrite(stmt: Stmt) -> Stmt:
            if isinstance(stmt, Seq):
                return Seq(rewrite(stmt.first), rewrite(stmt.second))
            if isinstance(stmt, If):
                return If(
                    stmt.cond, rewrite(stmt.then), rewrite(stmt.otherwise), pos=stmt.pos
                )
            if isinstance(stmt, MethodCall) and any(
                not isinstance(arg, Var) for arg in stmt.args
            ):
                # The hoisted prologue inherits the call's source line so
                # later diagnostics point at the call the programmer wrote.
                prologue: List[Stmt] = []
                new_args = []
                for arg in stmt.args:
                    if isinstance(arg, Var):
                        new_args.append(arg)
                        continue
                    name = f"arg__hoist{counter[0]}"
                    counter[0] += 1
                    typ = viper_expr_type(arg, var_types, field_types)
                    var_types[name] = typ
                    prologue.append(VarDecl(name, typ, pos=stmt.pos))
                    prologue.append(LocalAssign(name, arg, pos=stmt.pos))
                    new_args.append(Var(name))
                result: Stmt = MethodCall(
                    stmt.targets, stmt.method, tuple(new_args), pos=stmt.pos
                )
                for intro in reversed(prologue):
                    result = Seq(intro, result)
                return result
            return stmt

        methods.append(
            MethodDecl(
                method.name,
                method.args,
                method.returns,
                method.pre,
                method.post,
                rewrite(method.body),
                pos=method.pos,
            )
        )
    return Program(program.fields, tuple(methods))
