"""Lexer for the Viper subset's concrete syntax.

Trust: **trusted** — feeds the parser that fixes what Viper program the
theorem is about.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Iterator, List


class ViperSyntaxError(Exception):
    """Raised on lexical or syntactic errors in Viper source text."""

    def __init__(self, message: str, line: int, column: int):
        super().__init__(f"{line}:{column}: {message}")
        self.line = line
        self.column = column


@dataclass(frozen=True)
class Token:
    kind: str
    text: str
    line: int
    column: int


KEYWORDS = frozenset(
    {
        "field",
        "method",
        "returns",
        "requires",
        "ensures",
        "var",
        "inhale",
        "exhale",
        "assert",
        "assume",
        "if",
        "else",
        "while",
        "invariant",
        "elseif",
        "acc",
        "old",
        "new",
        "true",
        "false",
        "null",
        "write",
        "none",
        "Int",
        "Bool",
        "Ref",
        "Perm",
    }
)

# Multi-character operators must be listed before their prefixes.
OPERATORS = [
    "==>",
    ":=",
    "==",
    "!=",
    "<=",
    ">=",
    "&&",
    "||",
    "<",
    ">",
    "+",
    "-",
    "*",
    "/",
    "\\",
    "%",
    "!",
    "?",
    ":",
    ",",
    "(",
    ")",
    "{",
    "}",
    ".",
    ";",
]


def tokenize(source: str) -> List[Token]:
    """Tokenize Viper source text, raising ``ViperSyntaxError`` on bad input."""
    tokens: List[Token] = []
    line = 1
    column = 1
    i = 0
    n = len(source)
    while i < n:
        ch = source[i]
        if ch == "\n":
            line += 1
            column = 1
            i += 1
            continue
        if ch in " \t\r":
            i += 1
            column += 1
            continue
        if source.startswith("//", i):
            while i < n and source[i] != "\n":
                i += 1
            continue
        if source.startswith("/*", i):
            end = source.find("*/", i + 2)
            if end < 0:
                raise ViperSyntaxError("unterminated block comment", line, column)
            skipped = source[i : end + 2]
            newlines = skipped.count("\n")
            if newlines:
                line += newlines
                column = len(skipped) - skipped.rfind("\n")
            else:
                column += len(skipped)
            i = end + 2
            continue
        if ch.isdigit():
            start = i
            while i < n and source[i].isdigit():
                i += 1
            text = source[start:i]
            tokens.append(Token("int", text, line, column))
            column += len(text)
            continue
        if ch.isalpha() or ch == "_":
            start = i
            while i < n and (source[i].isalnum() or source[i] == "_"):
                i += 1
            text = source[start:i]
            kind = text if text in KEYWORDS else "ident"
            tokens.append(Token(kind, text, line, column))
            column += len(text)
            continue
        for op in OPERATORS:
            if source.startswith(op, i):
                tokens.append(Token(op, op, line, column))
                i += len(op)
                column += len(op)
                break
        else:
            raise ViperSyntaxError(f"unexpected character {ch!r}", line, column)
    tokens.append(Token("eof", "", line, column))
    return tokens
