"""Value and permission domain shared by the Viper semantics.

Trust: **trusted** — the value domain of the source semantics.

Viper values in the formalised subset are integers, booleans, references
(including ``null``), and permission amounts.  Permission amounts are exact
rationals (``fractions.Fraction``); the semantics never uses floating point,
so permission accounting is exact, as in the paper's Isabelle formalisation.
"""

from __future__ import annotations

from dataclasses import dataclass
from fractions import Fraction
from typing import Union


@dataclass(frozen=True)
class VInt:
    """An integer value."""

    value: int

    def __repr__(self) -> str:
        return f"VInt({self.value})"


@dataclass(frozen=True)
class VBool:
    """A boolean value."""

    value: bool

    def __repr__(self) -> str:
        return f"VBool({self.value})"


@dataclass(frozen=True)
class VRef:
    """A non-null reference value, identified by an allocation index."""

    address: int

    def __repr__(self) -> str:
        return f"VRef({self.address})"


@dataclass(frozen=True)
class VNull:
    """The null reference."""

    def __repr__(self) -> str:
        return "VNull()"


@dataclass(frozen=True)
class VPerm:
    """A permission amount (an exact rational)."""

    amount: Fraction

    def __repr__(self) -> str:
        return f"VPerm({self.amount})"


Value = Union[VInt, VBool, VRef, VNull, VPerm]

NULL = VNull()

#: The permission amounts ``none`` and ``write`` from Viper's surface syntax.
NO_PERM = Fraction(0)
FULL_PERM = Fraction(1)


def is_reference(value: Value) -> bool:
    """Return True for reference values, including null."""
    return isinstance(value, (VRef, VNull))


def as_bool(value: Value) -> bool:
    """Extract a Python bool, raising if the value is not a ``VBool``."""
    if not isinstance(value, VBool):
        raise TypeError(f"expected a boolean value, got {value!r}")
    return value.value


def as_int(value: Value) -> int:
    """Extract a Python int, raising if the value is not a ``VInt``."""
    if not isinstance(value, VInt):
        raise TypeError(f"expected an integer value, got {value!r}")
    return value.value


def as_perm(value: Value) -> Fraction:
    """Extract a permission amount.

    Integer values are coerced to rationals, matching Viper's implicit
    int-to-perm coercion in permission positions (e.g. ``acc(x.f, 1)``).
    """
    if isinstance(value, VPerm):
        return value.amount
    if isinstance(value, VInt):
        return Fraction(value.value)
    raise TypeError(f"expected a permission value, got {value!r}")
