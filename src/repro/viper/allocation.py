"""``x := new(f₁, …, fₖ)`` — allocation, desugared into the core subset.

Trust: **trusted** — models 'new' in the source semantics.

The paper's evaluation included files using Viper's allocation primitive
"by manually desugaring the allocation primitive into our subset"
(Sec. 5).  This module automates that desugaring:

    x := new(f1, ..., fk)

becomes::

    var x#fresh : Ref          // havoc the target (scoped-variable havoc)
    x := x#fresh
    inhale x != null && acc(x.f1, write) && ... && acc(x.fk, write)

This captures allocation's observable guarantees in the permission model:
the new reference is non-null and the program gains *full* permission to
the listed fields.  Genuine freshness is enforced by the permission
accounting itself: any execution where ``x`` aliases a location for which
permission is already held would push the mask above 1 and is pruned by
the inhale (M) — exactly the semantics of picking a reference "for which
no permission is held", and exactly the desugaring the paper's authors
applied by hand.  ``new(*)`` allocates with all declared fields.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional, Tuple

from .ast import (
    Acc,
    AExpr,
    Assertion,
    BinOp,
    BinOpKind,
    If,
    Inhale,
    LocalAssign,
    MethodDecl,
    NullLit,
    PermLit,
    Program,
    SepConj,
    Seq,
    Stmt,
    Type,
    Var,
    VarDecl,
)
from fractions import Fraction


@dataclass(frozen=True)
class NewStmt:
    """``target := new(fields)`` — an extension statement.

    ``fields`` is the tuple of field names to allocate; ``None`` (from the
    surface syntax ``new(*)``) means all declared fields.
    """

    target: str
    fields: Tuple[str, ...] = ()
    all_fields: bool = False
    pos: Optional[int] = field(default=None, compare=False, repr=False)


class AllocationError(Exception):
    """Raised when an allocation references an undeclared field."""


def program_has_new(program: Program) -> bool:
    """Whether any method body contains an allocation."""
    def stmt_has_new(stmt: Stmt) -> bool:
        if isinstance(stmt, NewStmt):
            return True
        if isinstance(stmt, Seq):
            return stmt_has_new(stmt.first) or stmt_has_new(stmt.second)
        if isinstance(stmt, If):
            return stmt_has_new(stmt.then) or stmt_has_new(stmt.otherwise)
        return False

    return any(
        method.body is not None and stmt_has_new(method.body)
        for method in program.methods
    )


def desugar_new(program: Program) -> Program:
    """Rewrite every allocation into havoc + inhale (see module doc)."""
    declared_fields = tuple(decl.name for decl in program.fields)
    methods: List[MethodDecl] = []
    for method in program.methods:
        if method.body is None:
            methods.append(method)
            continue
        counter = [0]

        def rewrite(stmt: Stmt) -> Stmt:
            if isinstance(stmt, Seq):
                return Seq(rewrite(stmt.first), rewrite(stmt.second))
            if isinstance(stmt, If):
                return If(
                    stmt.cond, rewrite(stmt.then), rewrite(stmt.otherwise), pos=stmt.pos
                )
            if isinstance(stmt, NewStmt):
                fields = declared_fields if stmt.all_fields else stmt.fields
                for field_name in fields:
                    if field_name not in declared_fields:
                        raise AllocationError(
                            f"new(...) references undeclared field {field_name!r}"
                        )
                fresh = f"{stmt.target}__fresh{counter[0]}"
                counter[0] += 1
                assertion: Assertion = AExpr(
                    BinOp(BinOpKind.NE, Var(stmt.target), NullLit())
                )
                for field_name in fields:
                    assertion = SepConj(
                        assertion,
                        Acc(Var(stmt.target), field_name, PermLit(Fraction(1))),
                    )
                # Every synthesized statement cites the allocation's line.
                return Seq(
                    VarDecl(fresh, Type.REF, pos=stmt.pos),
                    Seq(
                        LocalAssign(stmt.target, Var(fresh), pos=stmt.pos),
                        Inhale(assertion, pos=stmt.pos),
                    ),
                )
            return stmt

        methods.append(
            MethodDecl(
                method.name,
                method.args,
                method.returns,
                method.pre,
                method.post,
                rewrite(method.body),
                pos=method.pos,
            )
        )
    return Program(program.fields, tuple(methods))
