"""Big-step operational semantics for the Viper subset (Sec. 2.3, App. A).

Trust: **trusted** — the executable source semantics; it *defines* what
Viper correctness means here.

Execution outcomes mirror the paper exactly:

* ``Failure`` (F) — a verification failure: an ill-defined expression was
  evaluated, an ``assert``/``exhale`` did not hold, a field write lacked
  full permission, or an inhaled permission amount was negative.
* ``Magic`` (M) — the execution is pruned: an inhaled logical constraint is
  assumed false, or inhaling would produce an inconsistent mask.
* ``Normal(state)`` (N) — the execution succeeds in the given state.

Expression evaluation is *partial*: ``eval_expr`` returns either a value or
the :data:`ILL_DEFINED` marker (division by zero or a heap read without
positive permission — Sec. 2.3).

``exhale`` is decomposed into the two *effects* of Fig. 2: ``remcheck``
(permission removal plus constraint checks, with a separate expression
evaluation state) followed by the nondeterministic reassignment of heap
locations that lost all permission (``nonDet``).  This decomposition is not
an implementation convenience — it is the semantic interface the forward
simulation methodology (Sec. 3) decomposes against.
"""

from __future__ import annotations

from dataclasses import dataclass
from fractions import Fraction
from typing import Dict, List, Optional, Sequence, Tuple, Union

from ..choice import ChoiceOracle, DefaultOracle
from .ast import (
    Acc,
    AExpr,
    AssertStmt,
    Assertion,
    BinOp,
    BinOpKind,
    BoolLit,
    CondAssert,
    CondExp,
    Expr,
    FieldAcc,
    FieldAssign,
    If,
    Implies,
    Inhale,
    IntLit,
    LocalAssign,
    MethodCall,
    MethodDecl,
    NullLit,
    PermLit,
    Program,
    SepConj,
    Seq,
    Skip,
    Stmt,
    Type,
    UnOp,
    UnOpKind,
    Var,
    VarDecl,
    Exhale,
)
from .state import ViperState, default_value
from .typechecker import ProgramTypeInfo
from .values import (
    NULL,
    Value,
    VBool,
    VInt,
    VNull,
    VPerm,
    VRef,
    as_bool,
    as_perm,
)


# ---------------------------------------------------------------------------
# Outcomes
# ---------------------------------------------------------------------------


@dataclass(frozen=True)
class Failure:
    """The failure outcome F, optionally carrying a diagnostic reason."""

    reason: str = ""

    def __eq__(self, other: object) -> bool:  # reasons are diagnostics only
        return isinstance(other, Failure)

    def __hash__(self) -> int:
        return hash("Failure")


@dataclass(frozen=True)
class Magic:
    """The magic outcome M (execution pruned by a failed assumption)."""


@dataclass(frozen=True)
class Normal:
    """The normal outcome N(state)."""

    state: ViperState


Outcome = Union[Failure, Magic, Normal]


class IllDefined:
    """Marker for ill-defined expression evaluation (⇓ lightning)."""

    def __repr__(self) -> str:
        return "ILL_DEFINED"


ILL_DEFINED = IllDefined()

EvalResult = Union[Value, IllDefined]


# ---------------------------------------------------------------------------
# Contexts
# ---------------------------------------------------------------------------


@dataclass
class ViperContext:
    """The Viper context Γ_v: method, field, and variable declarations."""

    program: Program
    type_info: ProgramTypeInfo
    method_name: str

    @property
    def field_types(self) -> Dict[str, Type]:
        return self.type_info.field_types

    def var_type(self, name: str) -> Type:
        return self.type_info.methods[self.method_name].var_types[name]

    def method(self, name: str) -> MethodDecl:
        return self.program.method(name)


#: Candidate values per type offered to the choice oracle on havoc.  Small
#: but value-diverse; exhaustive enumeration stays tractable while random
#: sampling still distinguishes states.
HAVOC_CANDIDATES: Dict[Type, Tuple[Value, ...]] = {
    Type.INT: (VInt(0), VInt(1), VInt(-1), VInt(7)),
    Type.BOOL: (VBool(False), VBool(True)),
    Type.REF: (NULL, VRef(1), VRef(2)),
    Type.PERM: (VPerm(Fraction(0)), VPerm(Fraction(1, 2)), VPerm(Fraction(1))),
}


def havoc_value(typ: Type, oracle: ChoiceOracle, label: str) -> Value:
    """Pick a nondeterministic value of the given type."""
    return oracle.choose(HAVOC_CANDIDATES[typ], label)


# ---------------------------------------------------------------------------
# Expression evaluation  ⟨e, σ⟩ ⇓ V(v) | ⇓lightning
# ---------------------------------------------------------------------------


def eval_expr(expr: Expr, state: ViperState) -> EvalResult:
    """Evaluate an expression; partial (may return ILL_DEFINED)."""
    if isinstance(expr, Var):
        return state.lookup(expr.name)
    if isinstance(expr, IntLit):
        return VInt(expr.value)
    if isinstance(expr, BoolLit):
        return VBool(expr.value)
    if isinstance(expr, NullLit):
        return NULL
    if isinstance(expr, PermLit):
        return VPerm(expr.amount)
    if isinstance(expr, FieldAcc):
        receiver = eval_expr(expr.receiver, state)
        if receiver is ILL_DEFINED:
            return ILL_DEFINED
        if isinstance(receiver, VNull):
            return ILL_DEFINED  # no permission to null.f (subsumes null deref)
        if not isinstance(receiver, VRef):
            raise TypeError(f"field access on non-reference {receiver!r}")
        loc = (receiver.address, expr.field)
        if state.perm(loc) <= 0:
            return ILL_DEFINED
        return state.heap_value(loc)
    if isinstance(expr, UnOp):
        return _eval_unop(expr, state)
    if isinstance(expr, BinOp):
        return _eval_binop(expr, state)
    if isinstance(expr, CondExp):
        cond = eval_expr(expr.cond, state)
        if cond is ILL_DEFINED:
            return ILL_DEFINED
        branch = expr.then if as_bool(cond) else expr.otherwise
        return eval_expr(branch, state)
    raise TypeError(f"unknown expression {expr!r}")


def _eval_unop(expr: UnOp, state: ViperState) -> EvalResult:
    operand = eval_expr(expr.operand, state)
    if operand is ILL_DEFINED:
        return ILL_DEFINED
    if expr.op is UnOpKind.NOT:
        return VBool(not as_bool(operand))
    if isinstance(operand, VInt):
        return VInt(-operand.value)
    if isinstance(operand, VPerm):
        return VPerm(-operand.amount)
    raise TypeError(f"cannot negate {operand!r}")


def _eval_binop(expr: BinOp, state: ViperState) -> EvalResult:
    op = expr.op
    left = eval_expr(expr.left, state)
    if left is ILL_DEFINED:
        return ILL_DEFINED
    # Lazy operators: the right operand need not be well-defined when the
    # left operand short-circuits (Viper's semantics for &&, ||, ==>).
    if op is BinOpKind.AND:
        if not as_bool(left):
            return VBool(False)
        return _eval_bool(expr.right, state)
    if op is BinOpKind.OR:
        if as_bool(left):
            return VBool(True)
        return _eval_bool(expr.right, state)
    if op is BinOpKind.IMPLIES:
        if not as_bool(left):
            return VBool(True)
        return _eval_bool(expr.right, state)
    right = eval_expr(expr.right, state)
    if right is ILL_DEFINED:
        return ILL_DEFINED
    if op is BinOpKind.EQ:
        return VBool(_values_equal(left, right))
    if op is BinOpKind.NE:
        return VBool(not _values_equal(left, right))
    if op in (BinOpKind.LT, BinOpKind.LE, BinOpKind.GT, BinOpKind.GE):
        lnum, rnum = _numeric(left), _numeric(right)
        if op is BinOpKind.LT:
            return VBool(lnum < rnum)
        if op is BinOpKind.LE:
            return VBool(lnum <= rnum)
        if op is BinOpKind.GT:
            return VBool(lnum > rnum)
        return VBool(lnum >= rnum)
    if op is BinOpKind.DIV:
        if not isinstance(right, VInt) or right.value == 0:
            return ILL_DEFINED
        return VInt(_int_div(_as_int(left), right.value))
    if op is BinOpKind.MOD:
        if not isinstance(right, VInt) or right.value == 0:
            return ILL_DEFINED
        return VInt(_as_int(left) - right.value * _int_div(_as_int(left), right.value))
    if op is BinOpKind.PERM_DIV:
        if not isinstance(right, VInt) or right.value == 0:
            return ILL_DEFINED
        return VPerm(Fraction(_numeric(left), right.value))
    if op in (BinOpKind.ADD, BinOpKind.SUB, BinOpKind.MUL):
        if isinstance(left, VInt) and isinstance(right, VInt):
            if op is BinOpKind.ADD:
                return VInt(left.value + right.value)
            if op is BinOpKind.SUB:
                return VInt(left.value - right.value)
            return VInt(left.value * right.value)
        lnum, rnum = _numeric(left), _numeric(right)
        if op is BinOpKind.ADD:
            return VPerm(lnum + rnum)
        if op is BinOpKind.SUB:
            return VPerm(lnum - rnum)
        return VPerm(lnum * rnum)
    raise TypeError(f"unknown operator {op}")


def _eval_bool(expr: Expr, state: ViperState) -> EvalResult:
    result = eval_expr(expr, state)
    if result is ILL_DEFINED:
        return ILL_DEFINED
    return VBool(as_bool(result))


def _values_equal(left: Value, right: Value) -> bool:
    # Int/Perm comparisons coerce (Viper's implicit coercion).
    both_numeric = isinstance(left, (VInt, VPerm)) and isinstance(right, (VInt, VPerm))
    if both_numeric:
        return _numeric(left) == _numeric(right)
    return left == right


def _numeric(value: Value) -> Fraction:
    if isinstance(value, VInt):
        return Fraction(value.value)
    if isinstance(value, VPerm):
        return value.amount
    raise TypeError(f"expected a numeric value, got {value!r}")


def _as_int(value: Value) -> int:
    if isinstance(value, VInt):
        return value.value
    raise TypeError(f"expected an integer, got {value!r}")


def _int_div(a: int, b: int) -> int:
    """Truncating (Euclidean-style toward zero) division, as in Viper/SMT."""
    q = abs(a) // abs(b)
    return q if (a >= 0) == (b >= 0) else -q


def eval_exprs(exprs: Sequence[Expr], state: ViperState) -> Union[List[Value], IllDefined]:
    """Lift evaluation to a list of expressions ([⇓] in Fig. 4)."""
    values: List[Value] = []
    for expr in exprs:
        result = eval_expr(expr, state)
        if result is ILL_DEFINED:
            return ILL_DEFINED
        values.append(result)
    return values


# ---------------------------------------------------------------------------
# inhale  ⟨A, σ⟩ →inh r  (App. A, Fig. 11)
# ---------------------------------------------------------------------------


def inhale(assertion: Assertion, state: ViperState) -> Outcome:
    """Add the permissions specified by ``assertion``; assume constraints.

    Fails (F) on ill-defined expressions or negative permission amounts;
    stops (M) when a constraint is false or the added permission would make
    the state inconsistent.
    """
    if isinstance(assertion, AExpr):
        value = eval_expr(assertion.expr, state)
        if value is ILL_DEFINED:
            return Failure(f"ill-defined assertion expression {assertion.expr!r}")
        return Normal(state) if as_bool(value) else Magic()
    if isinstance(assertion, Acc):
        receiver = eval_expr(assertion.receiver, state)
        if receiver is ILL_DEFINED:
            return Failure("ill-defined acc receiver")
        perm_value = eval_expr(assertion.perm, state)
        if perm_value is ILL_DEFINED:
            return Failure("ill-defined acc amount")
        amount = as_perm(perm_value)
        if amount < 0:
            return Failure("inhaled negative permission amount")
        if isinstance(receiver, VNull):
            # inhSucc: p > 0 requires a non-null receiver.
            return Normal(state) if amount == 0 else Magic()
        assert isinstance(receiver, VRef)
        loc = (receiver.address, assertion.field)
        if amount + state.perm(loc) > 1:
            return Magic()  # would yield an inconsistent mask
        return Normal(state.add_perm(loc, amount))
    if isinstance(assertion, SepConj):
        left = inhale(assertion.left, state)
        if not isinstance(left, Normal):
            return left
        return inhale(assertion.right, left.state)
    if isinstance(assertion, Implies):
        cond = eval_expr(assertion.cond, state)
        if cond is ILL_DEFINED:
            return Failure("ill-defined implication guard")
        if not as_bool(cond):
            return Normal(state)
        return inhale(assertion.body, state)
    if isinstance(assertion, CondAssert):
        cond = eval_expr(assertion.cond, state)
        if cond is ILL_DEFINED:
            return Failure("ill-defined conditional guard")
        branch = assertion.then if as_bool(cond) else assertion.otherwise
        return inhale(branch, state)
    raise TypeError(f"unknown assertion {assertion!r}")


# ---------------------------------------------------------------------------
# remcheck  σ0 ⊢ ⟨A, σ⟩ →rc r  (Fig. 2)
# ---------------------------------------------------------------------------


def exh_acc_succ(receiver: Value, amount: Fraction, state: ViperState, field: str) -> bool:
    """The exhAccSucc predicate of Fig. 2: nonnegative and sufficient."""
    if amount < 0:
        return False
    if amount == 0:
        return True
    if isinstance(receiver, VNull):
        return False
    assert isinstance(receiver, VRef)
    return state.perm((receiver.address, field)) >= amount


def remcheck(
    assertion: Assertion, eval_state: ViperState, state: ViperState
) -> Outcome:
    """Remove permissions and check constraints, left to right.

    Expressions are evaluated in ``eval_state`` (the state at the start of
    the enclosing exhale), while permissions are removed from ``state`` —
    the two-state judgement of Fig. 2.
    """
    if isinstance(assertion, AExpr):
        value = eval_expr(assertion.expr, eval_state)
        if value is ILL_DEFINED:
            return Failure("ill-defined assertion expression")
        return Normal(state) if as_bool(value) else Failure("assertion does not hold")
    if isinstance(assertion, Acc):
        receiver = eval_expr(assertion.receiver, eval_state)
        if receiver is ILL_DEFINED:
            return Failure("ill-defined acc receiver")
        perm_value = eval_expr(assertion.perm, eval_state)
        if perm_value is ILL_DEFINED:
            return Failure("ill-defined acc amount")
        amount = as_perm(perm_value)
        if not exh_acc_succ(receiver, amount, state, assertion.field):
            return Failure("insufficient permission to exhale")
        if amount == 0 or isinstance(receiver, VNull):
            return Normal(state)
        assert isinstance(receiver, VRef)
        return Normal(state.remove_perm((receiver.address, assertion.field), amount))
    if isinstance(assertion, SepConj):
        left = remcheck(assertion.left, eval_state, state)
        if not isinstance(left, Normal):
            return left
        return remcheck(assertion.right, eval_state, left.state)
    if isinstance(assertion, Implies):
        cond = eval_expr(assertion.cond, eval_state)
        if cond is ILL_DEFINED:
            return Failure("ill-defined implication guard")
        if not as_bool(cond):
            return Normal(state)
        return remcheck(assertion.body, eval_state, state)
    if isinstance(assertion, CondAssert):
        cond = eval_expr(assertion.cond, eval_state)
        if cond is ILL_DEFINED:
            return Failure("ill-defined conditional guard")
        branch = assertion.then if as_bool(cond) else assertion.otherwise
        return remcheck(branch, eval_state, state)
    raise TypeError(f"unknown assertion {assertion!r}")


def exhale(
    assertion: Assertion,
    state: ViperState,
    ctx: ViperContext,
    oracle: ChoiceOracle,
) -> Outcome:
    """Exhale per EXH-SUCC / EXH-FAIL (Fig. 2).

    ``remcheck`` first; on success, nondeterministically reassign every
    location whose permission dropped from positive to zero.
    """
    checked = remcheck(assertion, state, state)
    if not isinstance(checked, Normal):
        return checked
    after = checked.state
    updates = {}
    for loc in state.zeroed_locations(after):
        field_type = ctx.field_types.get(loc[1], Type.INT)
        updates[loc] = havoc_value(field_type, oracle, f"exhale-havoc {loc}")
    if updates:
        after = after.set_heap_many(updates)
    return Normal(after)


# ---------------------------------------------------------------------------
# Statements  Γ_v ⊢ ⟨s, σ⟩ →v r
# ---------------------------------------------------------------------------


def exec_stmt(
    stmt: Stmt,
    state: ViperState,
    ctx: ViperContext,
    oracle: Optional[ChoiceOracle] = None,
) -> Outcome:
    """Execute a statement in the given state under the Viper context."""
    if oracle is None:
        oracle = DefaultOracle()
    if isinstance(stmt, Skip):
        return Normal(state)
    if isinstance(stmt, Seq):
        first = exec_stmt(stmt.first, state, ctx, oracle)
        if not isinstance(first, Normal):
            return first
        return exec_stmt(stmt.second, first.state, ctx, oracle)
    if isinstance(stmt, LocalAssign):
        value = eval_expr(stmt.rhs, state)
        if value is ILL_DEFINED:
            return Failure(f"ill-defined right-hand side in {stmt.target} := ...")
        return Normal(state.set_var(stmt.target, _coerce(value, ctx.var_type(stmt.target))))
    if isinstance(stmt, FieldAssign):
        receiver = eval_expr(stmt.receiver, state)
        if receiver is ILL_DEFINED:
            return Failure("ill-defined field-assignment receiver")
        value = eval_expr(stmt.rhs, state)
        if value is ILL_DEFINED:
            return Failure("ill-defined field-assignment right-hand side")
        if isinstance(receiver, VNull):
            return Failure("field assignment to null receiver")
        assert isinstance(receiver, VRef)
        loc = (receiver.address, stmt.field)
        if state.perm(loc) != Fraction(1):
            return Failure(f"field assignment requires full permission to {loc}")
        return Normal(
            state.set_heap(loc, _coerce(value, ctx.field_types[stmt.field]))
        )
    if isinstance(stmt, VarDecl):
        value = havoc_value(stmt.typ, oracle, f"vardecl {stmt.name}")
        return Normal(state.set_var(stmt.name, value))
    if isinstance(stmt, Inhale):
        return inhale(stmt.assertion, state)
    if isinstance(stmt, Exhale):
        return exhale(stmt.assertion, state, ctx, oracle)
    if isinstance(stmt, AssertStmt):
        checked = remcheck(stmt.assertion, state, state)
        if not isinstance(checked, Normal):
            return checked
        return Normal(state)  # assert does not remove permissions
    if isinstance(stmt, If):
        cond = eval_expr(stmt.cond, state)
        if cond is ILL_DEFINED:
            return Failure("ill-defined branch condition")
        branch = stmt.then if as_bool(cond) else stmt.otherwise
        return exec_stmt(branch, state, ctx, oracle)
    if isinstance(stmt, MethodCall):
        return _exec_call(stmt, state, ctx, oracle)
    raise TypeError(f"unknown statement {stmt!r}")


def _exec_call(
    stmt: MethodCall, state: ViperState, ctx: ViperContext, oracle: ChoiceOracle
) -> Outcome:
    """Method call: exhale pre, havoc targets, inhale post (Sec. 2.3)."""
    callee = ctx.method(stmt.method)
    arg_values: List[Value] = []
    for arg in stmt.args:
        value = eval_expr(arg, state)
        if value is ILL_DEFINED:
            return Failure("ill-defined call argument")
        arg_values.append(value)
    # Evaluate the callee's specification in a frame binding formals to the
    # argument values; heap and mask are the caller's.
    frame_store = {
        name: _coerce(value, typ)
        for (name, typ), value in zip(callee.args, arg_values)
    }
    callee_ctx = ViperContext(ctx.program, ctx.type_info, callee.name)
    pre_state = ViperState(
        store=frame_store,
        heap=state.heap,
        mask=state.mask,
        field_types=state.field_types,
    )
    exhaled = exhale(callee.pre, pre_state, callee_ctx, oracle)
    if not isinstance(exhaled, Normal):
        return exhaled if not isinstance(exhaled, Magic) else exhaled
    # Havoc the call targets, then bind the callee's return formals to the
    # havoced values and inhale the postcondition (havoc-then-assume).
    target_values = {
        target: havoc_value(ctx.var_type(target), oracle, f"call-target {target}")
        for target in stmt.targets
    }
    post_store = dict(frame_store)
    for (rname, rtype), target in zip(callee.returns, stmt.targets):
        post_store[rname] = _coerce(target_values[target], rtype)
    post_state = ViperState(
        store=post_store,
        heap=exhaled.state.heap,
        mask=exhaled.state.mask,
        field_types=state.field_types,
    )
    inhaled = inhale(callee.post, post_state)
    if not isinstance(inhaled, Normal):
        return inhaled
    final = ViperState(
        store=dict(state.store),
        heap=inhaled.state.heap,
        mask=inhaled.state.mask,
        field_types=state.field_types,
    )
    return Normal(final.set_vars(target_values))


def _coerce(value: Value, typ: Type) -> Value:
    """Coerce Int values into Perm positions (Viper's implicit coercion)."""
    if typ is Type.PERM and isinstance(value, VInt):
        return VPerm(Fraction(value.value))
    return value


# ---------------------------------------------------------------------------
# Method-level execution (Fig. 9 bottom)
# ---------------------------------------------------------------------------


def method_obligation_stmt(method: MethodDecl) -> Stmt:
    """The statement whose non-failure defines method correctness:
    ``inhale pre(m); body(m); exhale post(m)``."""
    body = method.body if method.body is not None else Skip()
    return Seq(Inhale(method.pre), Seq(body, Exhale(method.post)))


def run_method(
    method: MethodDecl,
    state: ViperState,
    ctx: ViperContext,
    oracle: Optional[ChoiceOracle] = None,
) -> Outcome:
    """Execute ``inhale pre; body; exhale post`` from ``state``."""
    return exec_stmt(method_obligation_stmt(method), state, ctx, oracle)
