"""Type checker and scope checker for the Viper subset.

Trust: **trusted** — well-typedness is a hypothesis of the simulation
rules; accepting an ill-typed program voids the theorem.

Checks, per method:

* expressions are well-typed (``Int``/``Bool``/``Ref``/``Perm``),
* variables are declared before use, with no shadowing within a method,
* field accesses use declared fields,
* calls match the callee's signature, targets are assignable and distinct,
* pre-/postconditions only mention arguments (and, for posts, returns).

The checker also computes, per method, the full set of local variable
declarations with their types (``MethodTypeInfo``), which the translator
needs to declare the corresponding Boogie locals upfront (Boogie procedures
declare all variables at the top; Viper scopes them — Sec. 2.1).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional, Tuple

from .ast import (
    Acc,
    AExpr,
    ARITH_OPS,
    AssertStmt,
    Assertion,
    BinOp,
    BinOpKind,
    BoolLit,
    CMP_OPS,
    CondAssert,
    CondExp,
    Expr,
    FieldAcc,
    FieldAssign,
    If,
    Implies,
    Inhale,
    IntLit,
    LocalAssign,
    MethodCall,
    MethodDecl,
    NullLit,
    PermLit,
    Program,
    SepConj,
    Seq,
    Skip,
    Stmt,
    Type,
    UnOp,
    UnOpKind,
    Var,
    VarDecl,
    Exhale,
)


class ViperTypeError(Exception):
    """Raised when a Viper program fails type or scope checking."""


@dataclass
class MethodTypeInfo:
    """Per-method typing results used by the semantics and the translator."""

    method: MethodDecl
    #: Every variable in scope anywhere in the method: args, returns, locals.
    var_types: Dict[str, Type] = field(default_factory=dict)
    #: Locals in declaration order (excludes args and returns).
    locals_in_order: List[Tuple[str, Type]] = field(default_factory=list)


@dataclass
class ProgramTypeInfo:
    """Typing results for a whole program."""

    program: Program
    field_types: Dict[str, Type]
    methods: Dict[str, MethodTypeInfo]


class TypeChecker:
    """Checks a program and accumulates ``ProgramTypeInfo``."""

    def __init__(self, program: Program):
        self._program = program
        self._field_types: Dict[str, Type] = {}
        self._methods: Dict[str, MethodDecl] = {}

    def check_program(self) -> ProgramTypeInfo:
        """Check all declarations and methods; returns the typing info."""
        for fdecl in self._program.fields:
            if fdecl.name in self._field_types:
                raise ViperTypeError(f"duplicate field {fdecl.name!r}")
            self._field_types[fdecl.name] = fdecl.typ
        for mdecl in self._program.methods:
            if mdecl.name in self._methods:
                raise ViperTypeError(f"duplicate method {mdecl.name!r}")
            self._methods[mdecl.name] = mdecl
        infos = {
            mdecl.name: self._check_method(mdecl)
            for mdecl in self._program.methods
        }
        return ProgramTypeInfo(self._program, dict(self._field_types), infos)

    # -- methods -------------------------------------------------------------

    def _check_method(self, mdecl: MethodDecl) -> MethodTypeInfo:
        info = MethodTypeInfo(mdecl)
        env: Dict[str, Type] = {}
        for name, typ in mdecl.args + mdecl.returns:
            if name in env:
                raise ViperTypeError(
                    f"method {mdecl.name!r}: duplicate parameter {name!r}"
                )
            env[name] = typ
        pre_env = dict(mdecl.args)
        if len(pre_env) != len(mdecl.args):
            raise ViperTypeError(f"method {mdecl.name!r}: duplicate argument names")
        self._check_assertion(mdecl.pre, pre_env, f"{mdecl.name!r} precondition")
        self._check_assertion(mdecl.post, env, f"{mdecl.name!r} postcondition")
        info.var_types = dict(env)
        if mdecl.body is not None:
            self._check_stmt(mdecl.body, env, info)
        return info

    # -- statements ------------------------------------------------------------

    def _check_stmt(self, stmt: Stmt, env: Dict[str, Type], info: MethodTypeInfo) -> None:
        if isinstance(stmt, Skip):
            return
        if isinstance(stmt, Seq):
            self._check_stmt(stmt.first, env, info)
            self._check_stmt(stmt.second, env, info)
            return
        if isinstance(stmt, VarDecl):
            if stmt.name in env:
                raise ViperTypeError(
                    f"variable {stmt.name!r} redeclared (shadowing is not supported)"
                )
            env[stmt.name] = stmt.typ
            info.var_types[stmt.name] = stmt.typ
            info.locals_in_order.append((stmt.name, stmt.typ))
            return
        if isinstance(stmt, LocalAssign):
            target_type = self._lookup(stmt.target, env)
            rhs_type = self._check_expr(stmt.rhs, env)
            self._require_assignable(target_type, rhs_type, f"assignment to {stmt.target!r}")
            return
        if isinstance(stmt, FieldAssign):
            receiver_type = self._check_expr(stmt.receiver, env)
            if receiver_type is not Type.REF:
                raise ViperTypeError("field assignment receiver must be a Ref")
            field_type = self._field(stmt.field)
            rhs_type = self._check_expr(stmt.rhs, env)
            self._require_assignable(field_type, rhs_type, f"assignment to .{stmt.field}")
            return
        if isinstance(stmt, MethodCall):
            self._check_call(stmt, env)
            return
        if isinstance(stmt, (Inhale, Exhale, AssertStmt)):
            self._check_assertion(stmt.assertion, env, type(stmt).__name__.lower())
            return
        if isinstance(stmt, If):
            if self._check_expr(stmt.cond, env) is not Type.BOOL:
                raise ViperTypeError("if condition must be Bool")
            # Branch-local declarations stay branch-local.
            then_env = dict(env)
            else_env = dict(env)
            self._check_stmt(stmt.then, then_env, info)
            self._check_stmt(stmt.otherwise, else_env, info)
            return
        raise ViperTypeError(f"unknown statement {stmt!r}")

    def _check_call(self, stmt: MethodCall, env: Dict[str, Type]) -> None:
        if stmt.method not in self._methods:
            raise ViperTypeError(f"call to undeclared method {stmt.method!r}")
        callee = self._methods[stmt.method]
        if len(stmt.args) != len(callee.args):
            raise ViperTypeError(
                f"call to {stmt.method!r}: expected {len(callee.args)} arguments, "
                f"got {len(stmt.args)}"
            )
        for arg, (pname, ptype) in zip(stmt.args, callee.args):
            arg_type = self._check_expr(arg, env)
            self._require_assignable(ptype, arg_type, f"argument {pname!r} of {stmt.method!r}")
        if len(stmt.targets) != len(callee.returns):
            raise ViperTypeError(
                f"call to {stmt.method!r}: expected {len(callee.returns)} targets, "
                f"got {len(stmt.targets)}"
            )
        if len(set(stmt.targets)) != len(stmt.targets):
            raise ViperTypeError(f"call to {stmt.method!r}: duplicate call targets")
        for target, (rname, rtype) in zip(stmt.targets, callee.returns):
            target_type = self._lookup(target, env)
            self._require_assignable(
                target_type, rtype, f"target {target!r} for return {rname!r}"
            )
        # The callee's arguments must not be call targets: the exhale of the
        # precondition evaluates arguments before targets are havoced.
        for arg in stmt.args:
            for target in stmt.targets:
                from .ast import expr_vars

                if target in expr_vars(arg):
                    raise ViperTypeError(
                        f"call to {stmt.method!r}: argument reads target {target!r}"
                    )

    # -- assertions ------------------------------------------------------------

    def _check_assertion(self, assertion: Assertion, env: Dict[str, Type], where: str) -> None:
        if isinstance(assertion, AExpr):
            if self._check_expr(assertion.expr, env) is not Type.BOOL:
                raise ViperTypeError(f"{where}: pure assertion must be Bool")
            return
        if isinstance(assertion, Acc):
            if self._check_expr(assertion.receiver, env) is not Type.REF:
                raise ViperTypeError(f"{where}: acc receiver must be Ref")
            self._field(assertion.field)
            perm_type = self._check_expr(assertion.perm, env)
            if perm_type not in (Type.PERM, Type.INT):
                raise ViperTypeError(f"{where}: acc amount must be Perm")
            return
        if isinstance(assertion, SepConj):
            self._check_assertion(assertion.left, env, where)
            self._check_assertion(assertion.right, env, where)
            return
        if isinstance(assertion, Implies):
            if self._check_expr(assertion.cond, env) is not Type.BOOL:
                raise ViperTypeError(f"{where}: implication guard must be Bool")
            self._check_assertion(assertion.body, env, where)
            return
        if isinstance(assertion, CondAssert):
            if self._check_expr(assertion.cond, env) is not Type.BOOL:
                raise ViperTypeError(f"{where}: conditional guard must be Bool")
            self._check_assertion(assertion.then, env, where)
            self._check_assertion(assertion.otherwise, env, where)
            return
        raise ViperTypeError(f"{where}: unknown assertion {assertion!r}")

    # -- expressions -------------------------------------------------------------

    def _check_expr(self, expr: Expr, env: Dict[str, Type]) -> Type:
        if isinstance(expr, Var):
            return self._lookup(expr.name, env)
        if isinstance(expr, IntLit):
            return Type.INT
        if isinstance(expr, BoolLit):
            return Type.BOOL
        if isinstance(expr, NullLit):
            return Type.REF
        if isinstance(expr, PermLit):
            return Type.PERM
        if isinstance(expr, FieldAcc):
            if self._check_expr(expr.receiver, env) is not Type.REF:
                raise ViperTypeError(f"field access receiver must be Ref in {expr!r}")
            return self._field(expr.field)
        if isinstance(expr, UnOp):
            operand = self._check_expr(expr.operand, env)
            if expr.op is UnOpKind.NEG:
                if operand not in (Type.INT, Type.PERM):
                    raise ViperTypeError("negation expects Int or Perm")
                return operand
            if operand is not Type.BOOL:
                raise ViperTypeError("logical not expects Bool")
            return Type.BOOL
        if isinstance(expr, CondExp):
            if self._check_expr(expr.cond, env) is not Type.BOOL:
                raise ViperTypeError("conditional guard must be Bool")
            then_type = self._check_expr(expr.then, env)
            else_type = self._check_expr(expr.otherwise, env)
            joined = _join(then_type, else_type)
            if joined is None:
                raise ViperTypeError(
                    f"conditional branches have incompatible types "
                    f"{then_type} and {else_type}"
                )
            return joined
        if isinstance(expr, BinOp):
            return self._check_binop(expr, env)
        raise ViperTypeError(f"unknown expression {expr!r}")

    def _check_binop(self, expr: BinOp, env: Dict[str, Type]) -> Type:
        left = self._check_expr(expr.left, env)
        right = self._check_expr(expr.right, env)
        op = expr.op
        if op in (BinOpKind.AND, BinOpKind.OR, BinOpKind.IMPLIES):
            if left is not Type.BOOL or right is not Type.BOOL:
                raise ViperTypeError(f"{op} expects Bool operands")
            return Type.BOOL
        if op in (BinOpKind.EQ, BinOpKind.NE):
            if _join(left, right) is None:
                raise ViperTypeError(f"cannot compare {left} with {right}")
            return Type.BOOL
        if op in CMP_OPS:
            if not (_numeric(left) and _numeric(right)):
                raise ViperTypeError(f"{op} expects numeric operands")
            return Type.BOOL
        if op is BinOpKind.PERM_DIV:
            if left is Type.INT and right is Type.INT:
                return Type.PERM
            if left is Type.PERM and right is Type.INT:
                return Type.PERM
            raise ViperTypeError("'/' expects Int/Int or Perm/Int")
        if op in ARITH_OPS:
            if op in (BinOpKind.DIV, BinOpKind.MOD):
                if left is Type.INT and right is Type.INT:
                    return Type.INT
                raise ViperTypeError(f"{op} expects Int operands")
            if left is Type.INT and right is Type.INT:
                return Type.INT
            if _numeric(left) and _numeric(right) and op is not BinOpKind.MUL:
                return Type.PERM
            if op is BinOpKind.MUL and {left, right} == {Type.INT, Type.PERM}:
                return Type.PERM
            if left is Type.PERM and right is Type.PERM and op is BinOpKind.MUL:
                return Type.PERM
            raise ViperTypeError(f"{op} got incompatible operands {left}, {right}")
        raise ViperTypeError(f"unknown operator {op}")

    # -- helpers ----------------------------------------------------------------

    def _lookup(self, name: str, env: Dict[str, Type]) -> Type:
        if name not in env:
            raise ViperTypeError(f"undeclared variable {name!r}")
        return env[name]

    def _field(self, name: str) -> Type:
        if name not in self._field_types:
            raise ViperTypeError(f"undeclared field {name!r}")
        return self._field_types[name]

    def _require_assignable(self, target: Type, source: Type, where: str) -> None:
        if target is source:
            return
        if target is Type.PERM and source is Type.INT:
            return  # implicit int-to-perm coercion
        raise ViperTypeError(f"{where}: cannot assign {source} to {target}")


def _numeric(typ: Type) -> bool:
    return typ in (Type.INT, Type.PERM)


def _join(left: Type, right: Type) -> Optional[Type]:
    if left is right:
        return left
    if {left, right} == {Type.INT, Type.PERM}:
        return Type.PERM
    return None


def check_program(program: Program) -> ProgramTypeInfo:
    """Type- and scope-check a program, returning the collected type info."""
    return TypeChecker(program).check_program()
