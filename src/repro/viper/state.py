"""The Viper state model (Sec. 2.3).

Trust: **trusted** — the state model the source semantics and the
simulation relations are stated over.

A Viper state comprises

* a local variable *store* mapping variable names to values,
* a *heap*: a total mapping from heap locations ``(ref, field)`` to values,
* a *permission mask*: a total mapping from heap locations to fractional
  permission amounts in ``[0, 1]``.

Totality of heap and mask is modelled with default values: reading an
unmapped location yields a per-field default value (heap) or zero permission
(mask).  States are immutable; all updates return fresh states, which lets
the certification kernel hold on to intermediate states without aliasing
surprises.
"""

from __future__ import annotations

from dataclasses import dataclass, field, replace
from fractions import Fraction
from typing import Dict, Iterable, Mapping, Tuple

from .ast import Type
from .values import NULL, Value, VBool, VInt, VNull, VPerm, VRef

#: A heap location: a non-null reference address paired with a field name.
HeapLoc = Tuple[int, str]


def default_value(typ: Type) -> Value:
    """The default value used to keep heaps and havocs total per type."""
    if typ is Type.INT:
        return VInt(0)
    if typ is Type.BOOL:
        return VBool(False)
    if typ is Type.REF:
        return NULL
    if typ is Type.PERM:
        return VPerm(Fraction(0))
    raise ValueError(f"unknown type {typ!r}")


@dataclass(frozen=True)
class ViperState:
    """An immutable Viper state.

    ``field_types`` fixes the declared type of each field so that the total
    heap can produce well-typed default values for unmapped locations.
    """

    store: Mapping[str, Value] = field(default_factory=dict)
    heap: Mapping[HeapLoc, Value] = field(default_factory=dict)
    mask: Mapping[HeapLoc, Fraction] = field(default_factory=dict)
    field_types: Mapping[str, Type] = field(default_factory=dict)

    # -- store ------------------------------------------------------------

    def lookup(self, name: str) -> Value:
        try:
            return self.store[name]
        except KeyError:
            raise KeyError(f"variable {name!r} not in store") from None

    def has_var(self, name: str) -> bool:
        return name in self.store

    def set_var(self, name: str, value: Value) -> "ViperState":
        new_store = dict(self.store)
        new_store[name] = value
        return replace(self, store=new_store)

    def set_vars(self, updates: Mapping[str, Value]) -> "ViperState":
        new_store = dict(self.store)
        new_store.update(updates)
        return replace(self, store=new_store)

    # -- heap --------------------------------------------------------------

    def heap_value(self, loc: HeapLoc) -> Value:
        if loc in self.heap:
            return self.heap[loc]
        field_name = loc[1]
        typ = self.field_types.get(field_name, Type.INT)
        return default_value(typ)

    def set_heap(self, loc: HeapLoc, value: Value) -> "ViperState":
        new_heap = dict(self.heap)
        new_heap[loc] = value
        return replace(self, heap=new_heap)

    def set_heap_many(self, updates: Mapping[HeapLoc, Value]) -> "ViperState":
        new_heap = dict(self.heap)
        new_heap.update(updates)
        return replace(self, heap=new_heap)

    # -- mask --------------------------------------------------------------

    def perm(self, loc: HeapLoc) -> Fraction:
        return self.mask.get(loc, Fraction(0))

    def set_perm(self, loc: HeapLoc, amount: Fraction) -> "ViperState":
        new_mask = {k: v for k, v in self.mask.items() if k != loc}
        if amount != 0:
            new_mask[loc] = amount
        return replace(self, mask=new_mask)

    def add_perm(self, loc: HeapLoc, amount: Fraction) -> "ViperState":
        return self.set_perm(loc, self.perm(loc) + amount)

    def remove_perm(self, loc: HeapLoc, amount: Fraction) -> "ViperState":
        return self.set_perm(loc, self.perm(loc) - amount)

    def permissioned_locs(self) -> Tuple[HeapLoc, ...]:
        """Locations with strictly positive permission, in sorted order."""
        return tuple(sorted(loc for loc, p in self.mask.items() if p > 0))

    def is_consistent(self) -> bool:
        """A state is consistent iff every permission lies in ``[0, 1]``."""
        return all(Fraction(0) <= p <= Fraction(1) for p in self.mask.values())

    def has_no_permissions(self) -> bool:
        """True iff the mask is the zero mask (used by Fig. 9 correctness)."""
        return all(p == 0 for p in self.mask.values())

    # -- structural comparisons used by the semantics ----------------------

    def same_store_and_heap(self, other: "ViperState") -> bool:
        if dict(self.store) != dict(other.store):
            return False
        locs = set(self.heap) | set(other.heap)
        return all(self.heap_value(loc) == other.heap_value(loc) for loc in locs)

    def mask_difference(self, other: "ViperState") -> Dict[HeapLoc, Fraction]:
        """``self ⊖ other`` on masks: pointwise difference where nonzero."""
        locs = set(self.mask) | set(other.mask)
        diff = {}
        for loc in locs:
            delta = self.perm(loc) - other.perm(loc)
            if delta != 0:
                diff[loc] = delta
        return diff

    def zeroed_locations(self, after: "ViperState") -> Tuple[HeapLoc, ...]:
        """Locations with positive permission here and zero in ``after``.

        These are exactly the locations the ``nonDet`` relation of the
        exhale semantics havocs (Fig. 2).
        """
        return tuple(
            sorted(
                loc
                for loc in set(self.mask) | set(after.mask)
                if self.perm(loc) > 0 and after.perm(loc) == 0
            )
        )


def zero_mask_state(
    store: Mapping[str, Value],
    field_types: Mapping[str, Type],
    heap: Mapping[HeapLoc, Value] = (),
) -> ViperState:
    """Build a consistent state with no permissions (Fig. 9's initial state)."""
    return ViperState(
        store=dict(store), heap=dict(heap), mask={}, field_types=dict(field_types)
    )


def non_det_related(
    before: ViperState, after_remcheck: ViperState, result: ViperState
) -> bool:
    """The ``nonDet`` relation of Fig. 2.

    ``result`` must agree with ``after_remcheck`` on store and mask, and on
    the heap everywhere except the locations whose permission dropped from
    positive (in ``before``) to zero (in ``after_remcheck``), where it may
    hold arbitrary values.
    """
    if dict(result.store) != dict(after_remcheck.store):
        return False
    if result.mask_difference(after_remcheck):
        return False  # masks must agree pointwise
    havocable = set(before.zeroed_locations(after_remcheck))
    locs = set(before.heap) | set(after_remcheck.heap) | set(result.heap)
    for loc in locs:
        if loc in havocable:
            continue
        if result.heap_value(loc) != after_remcheck.heap_value(loc):
            return False
    return True
