"""Abstract syntax of the formalised Viper subset (Fig. 1 of the paper).

Trust: **trusted** — the kernel's definition of the source language's
syntax; every judgement is stated over these nodes.

The subset comprises:

* expressions ``e ::= x | lit | e.f | e bop e | uop(e)`` (plus conditional
  expressions, which Viper's surface syntax provides and which desugar into
  the paper's conditional assertions when used in assertion positions),
* assertions ``A ::= e | acc(e.f, e) | A * A | e ==> A | e ? A : A``,
* statements ``s ::= x := e | e.f := e | ys := m(xs) | var x: T | inhale A |
  exhale A | assert A | s; s | if (e) {s} else {s}``,
* top-level field and method declarations.

All nodes are immutable (frozen dataclasses) and hashable so that they can be
used as dictionary keys by the translator and the certification kernel.
Sequential composition is kept *binary* (``Seq``), exactly as in the paper,
because the mismatch between Viper's tree-shaped statements and Boogie's
block-list statements is one of the difficulties the proof generation must
handle (Sec. 2.1, Sec. 4.3).

Statement and declaration nodes carry an optional ``pos`` (1-based source
line) used exclusively for diagnostics.  ``pos`` is declared with
``compare=False`` so it participates in neither ``__eq__`` nor the generated
``__hash__`` — structural equality is what the translator and the
certification kernel rely on when using nodes as dictionary keys, and two
statements that differ only in where they were written remain equal.
"""

from __future__ import annotations

import enum
from dataclasses import dataclass, field
from fractions import Fraction
from functools import cached_property
from typing import Dict, Optional, Tuple, Union


# ---------------------------------------------------------------------------
# Types
# ---------------------------------------------------------------------------


class Type(enum.Enum):
    """The types of the formalised Viper subset."""

    INT = "Int"
    BOOL = "Bool"
    REF = "Ref"
    PERM = "Perm"

    def __str__(self) -> str:
        return self.value


TYPE_BY_NAME = {t.value: t for t in Type}


# ---------------------------------------------------------------------------
# Expressions
# ---------------------------------------------------------------------------


class BinOpKind(enum.Enum):
    """Binary operators of the subset.

    ``AND``/``OR``/``IMPLIES`` evaluate lazily in the Viper semantics: the
    right operand need not be well-defined when the left operand short
    circuits.  ``PERM_*`` operators work on permission amounts.
    """

    ADD = "+"
    SUB = "-"
    MUL = "*"
    DIV = "\\"
    MOD = "%"
    PERM_DIV = "/"
    LT = "<"
    LE = "<="
    GT = ">"
    GE = ">="
    EQ = "=="
    NE = "!="
    AND = "&&"
    OR = "||"
    IMPLIES = "==>"

    def __str__(self) -> str:
        return self.value


class UnOpKind(enum.Enum):
    NEG = "-"
    NOT = "!"

    def __str__(self) -> str:
        return self.value


LAZY_OPS = frozenset({BinOpKind.AND, BinOpKind.OR, BinOpKind.IMPLIES})
ARITH_OPS = frozenset(
    {BinOpKind.ADD, BinOpKind.SUB, BinOpKind.MUL, BinOpKind.DIV, BinOpKind.MOD}
)
CMP_OPS = frozenset({BinOpKind.LT, BinOpKind.LE, BinOpKind.GT, BinOpKind.GE})


@dataclass(frozen=True)
class Var:
    """A local variable occurrence."""

    name: str


@dataclass(frozen=True)
class IntLit:
    value: int


@dataclass(frozen=True)
class BoolLit:
    value: bool


@dataclass(frozen=True)
class NullLit:
    pass


@dataclass(frozen=True)
class PermLit:
    """A literal permission amount, e.g. ``write`` (1), ``none`` (0), ``1/2``."""

    amount: Fraction


@dataclass(frozen=True)
class FieldAcc:
    """A heap read ``receiver.field``; partial — requires nonzero permission."""

    receiver: "Expr"
    field: str


@dataclass(frozen=True)
class BinOp:
    op: BinOpKind
    left: "Expr"
    right: "Expr"


@dataclass(frozen=True)
class UnOp:
    op: UnOpKind
    operand: "Expr"


@dataclass(frozen=True)
class CondExp:
    """A conditional expression ``cond ? then : otherwise``."""

    cond: "Expr"
    then: "Expr"
    otherwise: "Expr"


Expr = Union[Var, IntLit, BoolLit, NullLit, PermLit, FieldAcc, BinOp, UnOp, CondExp]


# ---------------------------------------------------------------------------
# Assertions
# ---------------------------------------------------------------------------


@dataclass(frozen=True)
class AExpr:
    """A pure (boolean) assertion."""

    expr: Expr


@dataclass(frozen=True)
class Acc:
    """An accessibility predicate ``acc(receiver.field, perm)``."""

    receiver: Expr
    field: str
    perm: Expr


@dataclass(frozen=True)
class SepConj:
    """The separating conjunction ``A * B`` (written ``&&`` in Viper syntax)."""

    left: "Assertion"
    right: "Assertion"


@dataclass(frozen=True)
class Implies:
    """A conditional assertion ``cond ==> A``."""

    cond: Expr
    body: "Assertion"


@dataclass(frozen=True)
class CondAssert:
    """A conditional assertion ``cond ? A : B``."""

    cond: Expr
    then: "Assertion"
    otherwise: "Assertion"


Assertion = Union[AExpr, Acc, SepConj, Implies, CondAssert]

TRUE_ASSERTION: Assertion = AExpr(BoolLit(True))


# ---------------------------------------------------------------------------
# Statements
# ---------------------------------------------------------------------------


@dataclass(frozen=True)
class LocalAssign:
    """``target := rhs``."""

    target: str
    rhs: Expr
    pos: Optional[int] = field(default=None, compare=False, repr=False)


@dataclass(frozen=True)
class FieldAssign:
    """``receiver.field := rhs``; requires full permission."""

    receiver: Expr
    field: str
    rhs: Expr
    pos: Optional[int] = field(default=None, compare=False, repr=False)


@dataclass(frozen=True)
class MethodCall:
    """``targets := method(args)``; verified modularly against the spec."""

    targets: Tuple[str, ...]
    method: str
    args: Tuple[Expr, ...]
    pos: Optional[int] = field(default=None, compare=False, repr=False)


@dataclass(frozen=True)
class VarDecl:
    """A scoped variable declaration ``var x: T`` (value is havoced)."""

    name: str
    typ: Type
    pos: Optional[int] = field(default=None, compare=False, repr=False)


@dataclass(frozen=True)
class Inhale:
    assertion: Assertion
    pos: Optional[int] = field(default=None, compare=False, repr=False)


@dataclass(frozen=True)
class Exhale:
    assertion: Assertion
    pos: Optional[int] = field(default=None, compare=False, repr=False)


@dataclass(frozen=True)
class AssertStmt:
    assertion: Assertion
    pos: Optional[int] = field(default=None, compare=False, repr=False)


@dataclass(frozen=True)
class Seq:
    """Binary sequential composition ``first; second``."""

    first: "Stmt"
    second: "Stmt"


@dataclass(frozen=True)
class If:
    cond: Expr
    then: "Stmt"
    otherwise: "Stmt"
    pos: Optional[int] = field(default=None, compare=False, repr=False)


@dataclass(frozen=True)
class Skip:
    """The empty statement (used for elided else branches)."""


Stmt = Union[
    LocalAssign, FieldAssign, MethodCall, VarDecl, Inhale, Exhale, AssertStmt, Seq, If, Skip
]


def seq_of(*stmts: Stmt) -> Stmt:
    """Right-nest a list of statements into binary ``Seq`` nodes."""
    items = [s for s in stmts if not isinstance(s, Skip)]
    if not items:
        return Skip()
    result = items[-1]
    for stmt in reversed(items[:-1]):
        result = Seq(stmt, result)
    return result


def stmt_pos(stmt: Stmt) -> Optional[int]:
    """Best-effort source line of a statement (``Seq`` delegates leftward)."""
    if isinstance(stmt, Seq):
        return stmt_pos(stmt.first) or stmt_pos(stmt.second)
    return getattr(stmt, "pos", None)


def stmt_size(stmt: Stmt) -> int:
    """Number of AST nodes in a statement (used by harness metrics)."""
    if isinstance(stmt, Seq):
        return 1 + stmt_size(stmt.first) + stmt_size(stmt.second)
    if isinstance(stmt, If):
        return 1 + stmt_size(stmt.then) + stmt_size(stmt.otherwise)
    return 1


# ---------------------------------------------------------------------------
# Top-level declarations
# ---------------------------------------------------------------------------


@dataclass(frozen=True)
class FieldDecl:
    """A field declaration ``field f: T``."""

    name: str
    typ: Type
    pos: Optional[int] = field(default=None, compare=False, repr=False)


@dataclass(frozen=True)
class MethodDecl:
    """A method with specification.

    ``body`` is ``None`` for abstract methods (spec-only), which can be
    called but have no correctness obligation of their own.
    """

    name: str
    args: Tuple[Tuple[str, Type], ...]
    returns: Tuple[Tuple[str, Type], ...]
    pre: Assertion
    post: Assertion
    body: Optional[Stmt]
    pos: Optional[int] = field(default=None, compare=False, repr=False)

    @property
    def arg_names(self) -> Tuple[str, ...]:
        return tuple(name for name, _ in self.args)

    @property
    def return_names(self) -> Tuple[str, ...]:
        return tuple(name for name, _ in self.returns)


class DuplicateDeclarationError(ValueError):
    """Two top-level declarations share a name — the program is malformed."""


@dataclass(frozen=True)
class Program:
    """A Viper program: fields and methods.

    Declaration lookup goes through precomputed name→decl indices
    (``cached_property`` writes to ``__dict__`` directly, which a frozen
    dataclass permits): the translator and the certification checker
    resolve the callee at every call site, so a linear scan here is
    quadratic over the program.  Building the index also rejects duplicate
    declaration names eagerly instead of silently resolving to the first.
    """

    fields: Tuple[FieldDecl, ...]
    methods: Tuple[MethodDecl, ...]

    @cached_property
    def _field_index(self) -> Dict[str, FieldDecl]:
        index: Dict[str, FieldDecl] = {}
        for decl in self.fields:
            if decl.name in index:
                raise DuplicateDeclarationError(
                    f"duplicate field name {decl.name!r}"
                )
            index[decl.name] = decl
        return index

    @cached_property
    def _method_index(self) -> Dict[str, MethodDecl]:
        index: Dict[str, MethodDecl] = {}
        for decl in self.methods:
            if decl.name in index:
                raise DuplicateDeclarationError(
                    f"duplicate method name {decl.name!r}"
                )
            index[decl.name] = decl
        return index

    def field(self, name: str) -> FieldDecl:
        try:
            return self._field_index[name]
        except KeyError:
            raise KeyError(f"no field named {name!r}") from None

    def method(self, name: str) -> MethodDecl:
        try:
            return self._method_index[name]
        except KeyError:
            raise KeyError(f"no method named {name!r}") from None

    def has_method(self, name: str) -> bool:
        return name in self._method_index

    @property
    def field_names(self) -> Tuple[str, ...]:
        return tuple(decl.name for decl in self.fields)


# ---------------------------------------------------------------------------
# Traversals
# ---------------------------------------------------------------------------


def expr_children(expr: Expr) -> Tuple[Expr, ...]:
    """Direct subexpressions of an expression."""
    if isinstance(expr, FieldAcc):
        return (expr.receiver,)
    if isinstance(expr, BinOp):
        return (expr.left, expr.right)
    if isinstance(expr, UnOp):
        return (expr.operand,)
    if isinstance(expr, CondExp):
        return (expr.cond, expr.then, expr.otherwise)
    return ()


def expr_vars(expr: Expr) -> frozenset:
    """The set of variable names read by an expression."""
    if isinstance(expr, Var):
        return frozenset({expr.name})
    result: frozenset = frozenset()
    for child in expr_children(expr):
        result |= expr_vars(child)
    return result


def assertion_vars(assertion: Assertion) -> frozenset:
    """The set of variable names read by an assertion."""
    if isinstance(assertion, AExpr):
        return expr_vars(assertion.expr)
    if isinstance(assertion, Acc):
        return expr_vars(assertion.receiver) | expr_vars(assertion.perm)
    if isinstance(assertion, SepConj):
        return assertion_vars(assertion.left) | assertion_vars(assertion.right)
    if isinstance(assertion, Implies):
        return expr_vars(assertion.cond) | assertion_vars(assertion.body)
    if isinstance(assertion, CondAssert):
        return (
            expr_vars(assertion.cond)
            | assertion_vars(assertion.then)
            | assertion_vars(assertion.otherwise)
        )
    raise TypeError(f"not an assertion: {assertion!r}")


def assertion_fields(assertion: Assertion) -> frozenset:
    """The set of field names mentioned in accessibility predicates of A."""
    if isinstance(assertion, Acc):
        return frozenset({assertion.field})
    if isinstance(assertion, SepConj):
        return assertion_fields(assertion.left) | assertion_fields(assertion.right)
    if isinstance(assertion, Implies):
        return assertion_fields(assertion.body)
    if isinstance(assertion, CondAssert):
        return assertion_fields(assertion.then) | assertion_fields(assertion.otherwise)
    return frozenset()


def assertion_has_acc(assertion: Assertion) -> bool:
    """True iff the assertion contains an accessibility predicate.

    The translator omits the nondeterministic heap havoc after an exhale when
    this is false (Sec. 3.4) — one of the "diverse translations" the
    certification must justify.
    """
    return bool(assertion_fields(assertion))


def substitute_expr(expr: Expr, mapping: dict) -> Expr:
    """Capture-free substitution of variables by expressions.

    The subset has no binders in expressions, so substitution is plain
    structural replacement.
    """
    if isinstance(expr, Var):
        return mapping.get(expr.name, expr)
    if isinstance(expr, FieldAcc):
        return FieldAcc(substitute_expr(expr.receiver, mapping), expr.field)
    if isinstance(expr, BinOp):
        return BinOp(
            expr.op,
            substitute_expr(expr.left, mapping),
            substitute_expr(expr.right, mapping),
        )
    if isinstance(expr, UnOp):
        return UnOp(expr.op, substitute_expr(expr.operand, mapping))
    if isinstance(expr, CondExp):
        return CondExp(
            substitute_expr(expr.cond, mapping),
            substitute_expr(expr.then, mapping),
            substitute_expr(expr.otherwise, mapping),
        )
    return expr


def substitute_assertion(assertion: Assertion, mapping: dict) -> Assertion:
    """Substitution of variables by expressions within an assertion."""
    if isinstance(assertion, AExpr):
        return AExpr(substitute_expr(assertion.expr, mapping))
    if isinstance(assertion, Acc):
        return Acc(
            substitute_expr(assertion.receiver, mapping),
            assertion.field,
            substitute_expr(assertion.perm, mapping),
        )
    if isinstance(assertion, SepConj):
        return SepConj(
            substitute_assertion(assertion.left, mapping),
            substitute_assertion(assertion.right, mapping),
        )
    if isinstance(assertion, Implies):
        return Implies(
            substitute_expr(assertion.cond, mapping),
            substitute_assertion(assertion.body, mapping),
        )
    if isinstance(assertion, CondAssert):
        return CondAssert(
            substitute_expr(assertion.cond, mapping),
            substitute_assertion(assertion.then, mapping),
            substitute_assertion(assertion.otherwise, mapping),
        )
    raise TypeError(f"not an assertion: {assertion!r}")
