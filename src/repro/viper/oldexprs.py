"""``old(e)`` expressions, desugared into ghost arguments.

Trust: **trusted** — old-expression snapshotting is part of the source
semantics.

The paper's evaluation had to *manually remove* assertions containing
old-expressions from benchmark files because its subset does not support
them (Sec. 5).  This module supports them instead, by a method-modular
desugaring into the core subset:

for every syntactically distinct ``old(e)`` in a method's postcondition or
body, introduce a fresh *ghost argument* ``old_k`` of ``e``'s type, and

* strengthen the precondition with ``old_k == e`` (appended *after* the
  original precondition, so ``e``'s footprint is available — exactly the
  framing requirement old-expressions carry),
* replace every ``old(e)`` by ``old_k`` in the postcondition and body,
* rewrite every call site to evaluate ``e`` (with actuals substituted)
  into a fresh local *before* the call and pass it as the extra argument —
  the pre-call state is the callee's entry state, so the captured value is
  exactly what ``old(e)`` denotes.

The ghost-argument equality is assumed on ``inhale pre`` (method entry)
and checked on ``exhale pre`` (call sites), so the unchanged core pipeline
— semantics, translation, certification — handles the result.

Restrictions: ``old`` must not be nested and must not mention return
formals (it denotes the *pre*-state, where returns are meaningless).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Tuple

from .ast import (
    Acc,
    AExpr,
    Assertion,
    AssertStmt,
    BinOp,
    BinOpKind,
    CondAssert,
    CondExp,
    Exhale,
    Expr,
    expr_vars,
    FieldAcc,
    FieldAssign,
    If,
    Implies,
    Inhale,
    LocalAssign,
    MethodCall,
    MethodDecl,
    Program,
    SepConj,
    Seq,
    Skip,
    Stmt,
    substitute_expr,
    Type,
    UnOp,
    Var,
    VarDecl,
)
from .exprtype import viper_expr_type


@dataclass(frozen=True)
class OldExpr:
    """``old(e)`` — an extension expression, eliminated by desugaring."""

    expr: Expr


class OldExprError(Exception):
    """Raised when an old-expression violates the desugaring restrictions."""


# ---------------------------------------------------------------------------
# Collection and replacement
# ---------------------------------------------------------------------------


def _collect_in_expr(expr: Expr, found: List[Expr]) -> None:
    if isinstance(expr, OldExpr):
        if _expr_contains_old(expr.expr):
            raise OldExprError("nested old-expressions are not supported")
        if expr.expr not in found:
            found.append(expr.expr)
        return
    for child in _children(expr):
        _collect_in_expr(child, found)


def _expr_contains_old(expr: Expr) -> bool:
    if isinstance(expr, OldExpr):
        return True
    return any(_expr_contains_old(child) for child in _children(expr))


def _children(expr: Expr) -> Tuple[Expr, ...]:
    if isinstance(expr, OldExpr):
        return (expr.expr,)
    if isinstance(expr, FieldAcc):
        return (expr.receiver,)
    if isinstance(expr, BinOp):
        return (expr.left, expr.right)
    if isinstance(expr, UnOp):
        return (expr.operand,)
    if isinstance(expr, CondExp):
        return (expr.cond, expr.then, expr.otherwise)
    return ()


def _collect_in_assertion(assertion: Assertion, found: List[Expr]) -> None:
    if isinstance(assertion, AExpr):
        _collect_in_expr(assertion.expr, found)
    elif isinstance(assertion, Acc):
        _collect_in_expr(assertion.receiver, found)
        _collect_in_expr(assertion.perm, found)
    elif isinstance(assertion, SepConj):
        _collect_in_assertion(assertion.left, found)
        _collect_in_assertion(assertion.right, found)
    elif isinstance(assertion, Implies):
        _collect_in_expr(assertion.cond, found)
        _collect_in_assertion(assertion.body, found)
    elif isinstance(assertion, CondAssert):
        _collect_in_expr(assertion.cond, found)
        _collect_in_assertion(assertion.then, found)
        _collect_in_assertion(assertion.otherwise, found)


def _collect_in_stmt(stmt: Stmt, found: List[Expr]) -> None:
    if isinstance(stmt, Seq):
        _collect_in_stmt(stmt.first, found)
        _collect_in_stmt(stmt.second, found)
    elif isinstance(stmt, If):
        _collect_in_expr(stmt.cond, found)
        _collect_in_stmt(stmt.then, found)
        _collect_in_stmt(stmt.otherwise, found)
    elif isinstance(stmt, LocalAssign):
        _collect_in_expr(stmt.rhs, found)
    elif isinstance(stmt, FieldAssign):
        _collect_in_expr(stmt.receiver, found)
        _collect_in_expr(stmt.rhs, found)
    elif isinstance(stmt, (Inhale, Exhale, AssertStmt)):
        _collect_in_assertion(stmt.assertion, found)
    elif isinstance(stmt, MethodCall):
        for arg in stmt.args:
            _collect_in_expr(arg, found)


def _replace_in_expr(expr: Expr, mapping: Dict[Expr, str]) -> Expr:
    if isinstance(expr, OldExpr):
        return Var(mapping[expr.expr])
    if isinstance(expr, FieldAcc):
        return FieldAcc(_replace_in_expr(expr.receiver, mapping), expr.field)
    if isinstance(expr, BinOp):
        return BinOp(
            expr.op,
            _replace_in_expr(expr.left, mapping),
            _replace_in_expr(expr.right, mapping),
        )
    if isinstance(expr, UnOp):
        return UnOp(expr.op, _replace_in_expr(expr.operand, mapping))
    if isinstance(expr, CondExp):
        return CondExp(
            _replace_in_expr(expr.cond, mapping),
            _replace_in_expr(expr.then, mapping),
            _replace_in_expr(expr.otherwise, mapping),
        )
    return expr


def _replace_in_assertion(assertion: Assertion, mapping: Dict[Expr, str]) -> Assertion:
    if isinstance(assertion, AExpr):
        return AExpr(_replace_in_expr(assertion.expr, mapping))
    if isinstance(assertion, Acc):
        return Acc(
            _replace_in_expr(assertion.receiver, mapping),
            assertion.field,
            _replace_in_expr(assertion.perm, mapping),
        )
    if isinstance(assertion, SepConj):
        return SepConj(
            _replace_in_assertion(assertion.left, mapping),
            _replace_in_assertion(assertion.right, mapping),
        )
    if isinstance(assertion, Implies):
        return Implies(
            _replace_in_expr(assertion.cond, mapping),
            _replace_in_assertion(assertion.body, mapping),
        )
    if isinstance(assertion, CondAssert):
        return CondAssert(
            _replace_in_expr(assertion.cond, mapping),
            _replace_in_assertion(assertion.then, mapping),
            _replace_in_assertion(assertion.otherwise, mapping),
        )
    return assertion


def _replace_in_stmt(stmt: Stmt, mapping: Dict[Expr, str]) -> Stmt:
    # Rewritten statements keep their original source position so that
    # post-desugar diagnostics still cite the line the programmer wrote.
    if isinstance(stmt, Seq):
        return Seq(_replace_in_stmt(stmt.first, mapping), _replace_in_stmt(stmt.second, mapping))
    if isinstance(stmt, If):
        return If(
            _replace_in_expr(stmt.cond, mapping),
            _replace_in_stmt(stmt.then, mapping),
            _replace_in_stmt(stmt.otherwise, mapping),
            pos=stmt.pos,
        )
    if isinstance(stmt, LocalAssign):
        return LocalAssign(stmt.target, _replace_in_expr(stmt.rhs, mapping), pos=stmt.pos)
    if isinstance(stmt, FieldAssign):
        return FieldAssign(
            _replace_in_expr(stmt.receiver, mapping),
            stmt.field,
            _replace_in_expr(stmt.rhs, mapping),
            pos=stmt.pos,
        )
    if isinstance(stmt, Inhale):
        return Inhale(_replace_in_assertion(stmt.assertion, mapping), pos=stmt.pos)
    if isinstance(stmt, Exhale):
        return Exhale(_replace_in_assertion(stmt.assertion, mapping), pos=stmt.pos)
    if isinstance(stmt, AssertStmt):
        return AssertStmt(_replace_in_assertion(stmt.assertion, mapping), pos=stmt.pos)
    if isinstance(stmt, MethodCall):
        return MethodCall(
            stmt.targets,
            stmt.method,
            tuple(_replace_in_expr(a, mapping) for a in stmt.args),
            pos=stmt.pos,
        )
    return stmt


# ---------------------------------------------------------------------------
# The desugaring
# ---------------------------------------------------------------------------


@dataclass
class _GhostInfo:
    """Per-method: the captured expressions and their ghost-argument names."""

    captured: List[Expr]
    ghost_args: List[Tuple[str, Type]]


def program_has_old(program: Program) -> bool:
    """Whether any specification or body contains an old-expression."""
    for method in program.methods:
        found: List[Expr] = []
        _collect_in_assertion(method.pre, found)
        _collect_in_assertion(method.post, found)
        if method.body is not None:
            _collect_in_stmt(method.body, found)
        if found:
            return True
    return False


def desugar_old(program: Program) -> Program:
    """Eliminate every old-expression from the program (see module doc)."""
    field_types = {decl.name: decl.typ for decl in program.fields}
    formal_names = {m.name: m.arg_names for m in program.methods}
    infos: Dict[str, _GhostInfo] = {}
    for method in program.methods:
        pre_old: List[Expr] = []
        _collect_in_assertion(method.pre, pre_old)
        if pre_old:
            raise OldExprError(
                f"method {method.name!r}: old-expressions are not allowed in "
                f"preconditions"
            )
        captured: List[Expr] = []
        _collect_in_assertion(method.post, captured)
        if method.body is not None:
            _collect_in_stmt(method.body, captured)
        ghost_args: List[Tuple[str, Type]] = []
        return_names = set(method.return_names)
        for index, expr in enumerate(captured):
            if expr_vars(expr) & return_names:
                raise OldExprError(
                    f"method {method.name!r}: old(...) must not mention "
                    f"return variables"
                )
            typ = viper_expr_type(expr, dict(method.args), field_types)
            ghost_args.append((f"old_{index}", typ))
        infos[method.name] = _GhostInfo(captured, ghost_args)

    methods = []
    for method in program.methods:
        info = infos[method.name]
        mapping = {
            expr: name for expr, (name, _) in zip(info.captured, info.ghost_args)
        }
        pre = method.pre
        for expr, (name, _) in zip(info.captured, info.ghost_args):
            pre = SepConj(pre, AExpr(BinOp(BinOpKind.EQ, Var(name), expr)))
        post = _replace_in_assertion(method.post, mapping)
        body = method.body
        if body is not None:
            body = _replace_in_stmt(body, mapping)
            body = _rewrite_calls(body, infos, formal_names)
        methods.append(
            MethodDecl(
                method.name,
                method.args + tuple(info.ghost_args),
                method.returns,
                pre,
                post,
                body,
                pos=method.pos,
            )
        )
    return Program(program.fields, tuple(methods))


def _rewrite_calls(
    stmt: Stmt,
    infos: Dict[str, _GhostInfo],
    formal_names: Dict[str, Tuple[str, ...]],
) -> Stmt:
    """Extend each call with pre-call captures of the callee's old-exprs."""
    counter = [0]

    def rewrite(node: Stmt) -> Stmt:
        if isinstance(node, Seq):
            return Seq(rewrite(node.first), rewrite(node.second))
        if isinstance(node, If):
            return If(node.cond, rewrite(node.then), rewrite(node.otherwise), pos=node.pos)
        if isinstance(node, MethodCall) and node.method in infos:
            info = infos[node.method]
            if not info.captured:
                return node
            callee_formals = formal_names[node.method]
            substitution = dict(zip(callee_formals, node.args))
            capture_stmts: List[Stmt] = []
            extra_args: List[Expr] = []
            for expr, (_, typ) in zip(info.captured, info.ghost_args):
                local = f"oldcap_{counter[0]}"
                counter[0] += 1
                actual = substitute_expr(expr, substitution)
                # Captures inherit the call site's line for diagnostics.
                capture_stmts.append(VarDecl(local, typ, pos=node.pos))
                capture_stmts.append(LocalAssign(local, actual, pos=node.pos))
                extra_args.append(Var(local))
            call = MethodCall(
                node.targets, node.method, node.args + tuple(extra_args), pos=node.pos
            )
            result: Stmt = call
            for capture in reversed(capture_stmts):
                result = Seq(capture, result)
            return result
        return node

    return rewrite(stmt)



