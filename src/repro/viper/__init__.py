"""The Viper language substrate: AST, parser, type checker, semantics.

Trust: **untrusted-but-checked** — package hub re-exporting both trusted
semantics and untrusted pretty-printing.

This package formalises (executably) the Viper subset of Fig. 1 of the
paper, with the big-step semantics of Sec. 2.3 / App. A.
"""

from .ast import (  # noqa: F401
    Acc,
    AExpr,
    AssertStmt,
    Assertion,
    BinOp,
    BinOpKind,
    BoolLit,
    CondAssert,
    CondExp,
    Expr,
    FieldAcc,
    FieldAssign,
    FieldDecl,
    If,
    Implies,
    Inhale,
    IntLit,
    LocalAssign,
    MethodCall,
    MethodDecl,
    NullLit,
    PermLit,
    Program,
    SepConj,
    Seq,
    Skip,
    Stmt,
    Type,
    UnOp,
    UnOpKind,
    Var,
    VarDecl,
    Exhale,
    seq_of,
)
from .lexer import ViperSyntaxError  # noqa: F401
from .allocation import desugar_new, NewStmt, program_has_new  # noqa: F401
from .callargs import hoist_call_args, program_has_complex_call_args  # noqa: F401
from .exprtype import viper_expr_type  # noqa: F401
from .loops import desugar_loops, program_has_loops, While  # noqa: F401
from .oldexprs import desugar_old, OldExpr, OldExprError, program_has_old  # noqa: F401
from .parser import parse_assertion, parse_expr, parse_program, parse_stmt  # noqa: F401
from .pretty import count_loc, pretty_assertion, pretty_expr, pretty_program, pretty_stmt  # noqa: F401
from .semantics import (  # noqa: F401
    Failure,
    ILL_DEFINED,
    Magic,
    Normal,
    Outcome,
    ViperContext,
    eval_expr,
    exec_stmt,
    exhale,
    inhale,
    remcheck,
    run_method,
)
from .state import ViperState, zero_mask_state  # noqa: F401
from .typechecker import ProgramTypeInfo, ViperTypeError, check_program  # noqa: F401
from .values import NULL, Value, VBool, VInt, VNull, VPerm, VRef  # noqa: F401
