"""Bounded semantic checks: method correctness and spec well-formedness.

Trust: **trusted** — well-definedness checking is part of the source
semantics (Sec. 2.1); a miss here weakens the theorem.

The paper's correctness definition for a Viper method (Fig. 9, bottom)
quantifies over *all* initial states with an empty permission mask; spec
well-formedness (the C1 component of Fig. 10) asks that inhaling the
precondition from an empty state never fails (i.e. all expressions in it are
well-defined wherever they are evaluated).

These properties are undecidable in general; this module provides *bounded*
checkers that enumerate initial stores over small value domains and explore
every nondeterministic execution path.  They serve two roles in the
reproduction: (1) ground-truth oracles for differential validation of the
certification pipeline, and (2) executable documentation of Fig. 9/Fig. 10.
"""

from __future__ import annotations

import itertools
from dataclasses import dataclass
from fractions import Fraction
from typing import Dict, Iterator, List, Mapping, Optional, Sequence, Tuple

from ..choice import ChoiceOracle, all_executions
from .ast import MethodDecl, Program, Type
from .semantics import (
    Failure,
    HAVOC_CANDIDATES,
    Normal,
    Outcome,
    ViperContext,
    inhale,
    run_method,
)
from .state import ViperState, zero_mask_state
from .typechecker import ProgramTypeInfo
from .values import Value


@dataclass
class BoundedVerdict:
    """Result of a bounded check."""

    ok: bool
    counterexample: Optional[ViperState] = None
    reason: str = ""
    explored_states: int = 0


#: Default store-value candidates per type for bounded initial states.
STORE_DOMAINS: Dict[Type, Tuple[Value, ...]] = dict(HAVOC_CANDIDATES)


def enumerate_stores(
    var_types: Sequence[Tuple[str, Type]],
    domains: Optional[Mapping[Type, Sequence[Value]]] = None,
) -> Iterator[Dict[str, Value]]:
    """Enumerate all stores assigning domain values to the given variables."""
    chosen = domains or STORE_DOMAINS
    names = [name for name, _ in var_types]
    candidate_lists = [list(chosen[typ]) for _, typ in var_types]
    for combo in itertools.product(*candidate_lists):
        yield dict(zip(names, combo))


#: Heap-value candidates per type; deliberately smaller than the store
#: domains because heap enumeration multiplies across all locations.
HEAP_DOMAINS: Dict[Type, Tuple[Value, ...]] = {
    Type.INT: STORE_DOMAINS[Type.INT][:2],
    Type.BOOL: STORE_DOMAINS[Type.BOOL],
    Type.REF: STORE_DOMAINS[Type.REF][:2],
    Type.PERM: STORE_DOMAINS[Type.PERM][:2],
}

#: Reference addresses considered by the bounded heap enumeration; these
#: match the VRef candidates in ``HAVOC_CANDIDATES``.
HEAP_ADDRESSES: Tuple[int, ...] = (1, 2)


def enumerate_heaps(
    field_types: Mapping[str, Type],
    domains: Optional[Mapping[Type, Sequence[Value]]] = None,
) -> Iterator[Dict[Tuple[int, str], Value]]:
    """Enumerate small total heaps over the bounded address space.

    Correctness (Fig. 9) quantifies over *all* initial states; ``inhale``
    does not havoc heap values, so the initial heap contents are observable
    and must be enumerated alongside the store.
    """
    chosen = domains or HEAP_DOMAINS
    locs = [
        (address, field_name)
        for address in HEAP_ADDRESSES
        for field_name in sorted(field_types)
    ]
    candidate_lists = [list(chosen[field_types[field_name]]) for _, field_name in locs]
    for combo in itertools.product(*candidate_lists):
        yield dict(zip(locs, combo))


def check_method_correct_bounded(
    program: Program,
    type_info: ProgramTypeInfo,
    method_name: str,
    domains: Optional[Mapping[Type, Sequence[Value]]] = None,
    max_paths_per_state: int = 50_000,
) -> BoundedVerdict:
    """Bounded version of Correct_v (Fig. 9): no failing execution of
    ``inhale pre; body; exhale post`` from any zero-mask initial state."""
    method = program.method(method_name)
    ctx = ViperContext(program, type_info, method_name)
    info = type_info.methods[method_name]
    explored = 0
    # All variables that are ever in scope get initial (havoced) values; the
    # semantics of VarDecl re-havocs locals at their declaration point, so
    # only args and returns actually matter, but a total store is simpler.
    init_vars = list(method.args) + list(method.returns)
    for store in enumerate_stores(init_vars, domains):
        for heap in enumerate_heaps(type_info.field_types):
            state = zero_mask_state(store, type_info.field_types, heap)
            for outcome in all_executions(
                lambda oracle: run_method(method, state, ctx, oracle),
                max_paths=max_paths_per_state,
            ):
                explored += 1
                if isinstance(outcome, Failure):
                    return BoundedVerdict(
                        ok=False,
                        counterexample=state,
                        reason=outcome.reason,
                        explored_states=explored,
                    )
    return BoundedVerdict(ok=True, explored_states=explored)


def check_spec_wellformed_bounded(
    program: Program,
    type_info: ProgramTypeInfo,
    method_name: str,
    domains: Optional[Mapping[Type, Sequence[Value]]] = None,
) -> BoundedVerdict:
    """Bounded C1 check: well-formedness of the method's specification.

    Inhaling the precondition from a zero-mask state must never fail, and —
    having inhaled the precondition and havoced the returns — inhaling the
    postcondition must never fail either.  (Failures of *inhale* are exactly
    ill-definedness failures plus negative permission amounts, so this is
    the semantic counterpart of the syntactic well-definedness checks the
    translation emits for specifications.)
    """
    method = program.method(method_name)
    explored = 0
    arg_vars = list(method.args)
    for store, heap in itertools.product(
        enumerate_stores(arg_vars, domains),
        enumerate_heaps(type_info.field_types),
    ):
        state = zero_mask_state(store, type_info.field_types, heap)
        pre_outcome = inhale(method.pre, state)
        explored += 1
        if isinstance(pre_outcome, Failure):
            return BoundedVerdict(
                ok=False,
                counterexample=state,
                reason=f"precondition ill-formed: {pre_outcome.reason}",
                explored_states=explored,
            )
        if not isinstance(pre_outcome, Normal):
            continue
        for ret_store in enumerate_stores(list(method.returns), domains):
            post_state = pre_outcome.state.set_vars(ret_store)
            post_outcome = inhale(method.post, post_state)
            explored += 1
            if isinstance(post_outcome, Failure):
                return BoundedVerdict(
                    ok=False,
                    counterexample=post_state,
                    reason=f"postcondition ill-formed: {post_outcome.reason}",
                    explored_states=explored,
                )
    return BoundedVerdict(ok=True, explored_states=explored)


def check_program_correct_bounded(
    program: Program,
    type_info: ProgramTypeInfo,
    domains: Optional[Mapping[Type, Sequence[Value]]] = None,
) -> Dict[str, BoundedVerdict]:
    """Bounded correctness of every method with a body, plus C1 for all."""
    verdicts: Dict[str, BoundedVerdict] = {}
    for method in program.methods:
        wf = check_spec_wellformed_bounded(program, type_info, method.name, domains)
        if not wf.ok:
            verdicts[method.name] = wf
            continue
        if method.body is None:
            verdicts[method.name] = wf
            continue
        verdicts[method.name] = check_method_correct_bounded(
            program, type_info, method.name, domains
        )
    return verdicts
