"""While loops, desugared via their invariant (Sec. 2.1 of the paper).

Trust: **trusted** — loop havoc and invariant framing are part of the
source semantics.

The paper's subset omits loops but notes that "their semantics can be
desugared via their invariant, in a pattern similar to method calls".
This module implements exactly that as a Viper-to-Viper pass, so the
translation, certification, and semantics of the core subset apply
unchanged — the same modularity argument the paper makes.

``while (cond) invariant I { body }`` becomes::

    exhale I                    // the invariant holds on entry
    havoc targets(body)         // forget everything the loop may change
    inhale I                    // an arbitrary iteration's entry state
    if (cond) {
        body
        exhale I                // the invariant is preserved
        inhale false            // cut: this branch over-approximated one
    }                           // arbitrary iteration
    inhale I && !cond           // after the loop: invariant and exit

with two wrinkles dictated by the core subset:

* ``havoc x`` is expressed as ``var x#havoc : T ; x := x#havoc`` — a fresh
  scoped variable (whose declaration havocs it, matching the translation's
  treatment of scoped variables) assigned over ``x``;
* the heap footprint is havoced by the ``exhale I``/``inhale I`` pair
  itself: exhaling the invariant's permissions nondeterministically
  reassigns the locations it gives up (the Viper exhale semantics), so no
  separate heap havoc is needed.

A small soundness remark (mirroring the method-call encoding): the
desugared statement fails iff the invariant fails to hold on entry, fails
to be preserved by an arbitrary iteration, is ill-formed, or the
continuation fails from an arbitrary invariant-satisfying exit state —
precisely the standard loop proof obligation.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional, Set, Tuple

from .ast import (
    AExpr,
    Assertion,
    AssertStmt,
    BinOp,
    BinOpKind,
    BoolLit,
    Exhale,
    Expr,
    FieldAssign,
    If,
    Implies,
    Inhale,
    LocalAssign,
    MethodCall,
    MethodDecl,
    Program,
    SepConj,
    Seq,
    Skip,
    Stmt,
    Type,
    UnOp,
    UnOpKind,
    Var,
    VarDecl,
    seq_of,
)


@dataclass(frozen=True)
class While:
    """A while loop with an invariant (extended-subset statement)."""

    cond: Expr
    invariant: Assertion
    body: "Stmt"
    pos: Optional[int] = field(default=None, compare=False, repr=False)


def _assigned_vars(stmt: Stmt) -> Set[str]:
    if isinstance(stmt, LocalAssign):
        return {stmt.target}
    if isinstance(stmt, VarDecl):
        return {stmt.name}
    if isinstance(stmt, MethodCall):
        return set(stmt.targets)
    if isinstance(stmt, Seq):
        return _assigned_vars(stmt.first) | _assigned_vars(stmt.second)
    if isinstance(stmt, If):
        return _assigned_vars(stmt.then) | _assigned_vars(stmt.otherwise)
    if isinstance(stmt, While):
        return _assigned_vars(stmt.body)
    return set()


def _declared_vars(stmt: Stmt) -> Set[str]:
    if isinstance(stmt, VarDecl):
        return {stmt.name}
    if isinstance(stmt, Seq):
        return _declared_vars(stmt.first) | _declared_vars(stmt.second)
    if isinstance(stmt, If):
        return _declared_vars(stmt.then) | _declared_vars(stmt.otherwise)
    if isinstance(stmt, While):
        return _declared_vars(stmt.body)
    return set()


def loop_targets(stmt: Stmt) -> Set[str]:
    """The loop's targets: variables the body may assign, excluding those it
    declares itself (body-scoped variables have no pre-loop value to
    havoc, and are not in scope at the loop head)."""
    return _assigned_vars(stmt) - _declared_vars(stmt)


class LoopDesugarer:
    """Rewrites ``While`` nodes into the core subset.

    Needs the types of the enclosing method's variables to declare the
    fresh havoc variables; collects the declarations it introduces so the
    caller can extend its typing environment.
    """

    def __init__(self, var_types: Dict[str, Type]):
        self._var_types = dict(var_types)
        self._counter = 0
        self.introduced: List[Tuple[str, Type]] = []

    def _fresh_havoc_var(self, target: str) -> Tuple[str, Type]:
        name = f"{target}__havoc{self._counter}"
        self._counter += 1
        typ = self._var_types[target]
        self.introduced.append((name, typ))
        self._var_types[name] = typ
        return name, typ

    def desugar_stmt(self, stmt: Stmt) -> Stmt:
        if isinstance(stmt, While):
            return self._desugar_while(stmt)
        if isinstance(stmt, Seq):
            return Seq(self.desugar_stmt(stmt.first), self.desugar_stmt(stmt.second))
        if isinstance(stmt, If):
            return If(
                stmt.cond,
                self.desugar_stmt(stmt.then),
                self.desugar_stmt(stmt.otherwise),
                pos=stmt.pos,
            )
        if isinstance(stmt, VarDecl):
            self._var_types[stmt.name] = stmt.typ
            return stmt
        return stmt

    def _desugar_while(self, loop: While) -> Stmt:
        # Synthesized statements inherit the loop-header line so that any
        # diagnostic raised downstream (translate stage, analyzer) still
        # cites the loop the programmer wrote.
        pos = loop.pos
        body = self.desugar_stmt(loop.body)
        havocs: List[Stmt] = []
        for target in sorted(loop_targets(body)):
            havoc_name, typ = self._fresh_havoc_var(target)
            havocs.append(VarDecl(havoc_name, typ, pos=pos))
            havocs.append(LocalAssign(target, Var(havoc_name), pos=pos))
        not_cond = UnOp(UnOpKind.NOT, loop.cond)
        arbitrary_iteration = If(
            loop.cond,
            seq_of(
                body,
                Exhale(loop.invariant, pos=pos),
                Inhale(AExpr(BoolLit(False)), pos=pos),  # cut the over-approximation
            ),
            Skip(),
            pos=pos,
        )
        return seq_of(
            Exhale(loop.invariant, pos=pos),
            *havocs,
            Inhale(loop.invariant, pos=pos),
            arbitrary_iteration,
            Inhale(AExpr(not_cond), pos=pos),
        )


def desugar_method(method: MethodDecl, var_types: Dict[str, Type]) -> MethodDecl:
    """Desugar all loops in a method body; returns the rewritten method."""
    if method.body is None:
        return method
    desugarer = LoopDesugarer(var_types)
    body = desugarer.desugar_stmt(method.body)
    return MethodDecl(
        method.name,
        method.args,
        method.returns,
        method.pre,
        method.post,
        body,
        pos=method.pos,
    )


def program_has_loops(program: Program) -> bool:
    """Whether any method body contains a ``While`` node."""
    def stmt_has_loops(stmt: Stmt) -> bool:
        if isinstance(stmt, While):
            return True
        if isinstance(stmt, Seq):
            return stmt_has_loops(stmt.first) or stmt_has_loops(stmt.second)
        if isinstance(stmt, If):
            return stmt_has_loops(stmt.then) or stmt_has_loops(stmt.otherwise)
        return False

    return any(
        method.body is not None and stmt_has_loops(method.body)
        for method in program.methods
    )


def desugar_loops(program: Program) -> Program:
    """Desugar every loop in a program into the core subset.

    The result contains no ``While`` nodes and type-checks against the
    core checker (the fresh havoc variables appear as ordinary scoped
    declarations).
    """
    methods = []
    for method in program.methods:
        # Collect the method's variable types by a light scan: parameters,
        # returns, and declarations (the full checker runs afterwards).
        var_types: Dict[str, Type] = dict(method.args) | dict(method.returns)

        def collect(stmt: Stmt) -> None:
            if isinstance(stmt, VarDecl):
                var_types[stmt.name] = stmt.typ
            elif isinstance(stmt, Seq):
                collect(stmt.first)
                collect(stmt.second)
            elif isinstance(stmt, If):
                collect(stmt.then)
                collect(stmt.otherwise)
            elif isinstance(stmt, While):
                collect(stmt.body)

        if method.body is not None:
            collect(method.body)
        methods.append(desugar_method(method, var_types))
    return Program(program.fields, tuple(methods))
