"""Recursive-descent parser for the Viper subset (Fig. 1).

Trust: **trusted** — fixes which Viper program the final theorem talks
about; a parser bug changes the theorem statement itself.

Grammar (assertion positions treat ``&&`` as the separating conjunction, as
in Viper's surface syntax; ``*`` inside expressions is multiplication):

.. code-block:: text

    program    ::= (field_decl | method_decl)*
    field_decl ::= "field" ident ":" type
    method_decl::= "method" ident "(" params ")" ["returns" "(" params ")"]
                   ("requires" assertion)* ("ensures" assertion)* [block]
    block      ::= "{" stmt* "}"
    stmt       ::= "var" ident ":" type [":=" expr]
                 | "inhale" assertion | "exhale" assertion | "assert" assertion
                 | "if" "(" expr ")" block ["else" (block | if-stmt)]
                 | ident ("," ident)* ":=" call-or-expr
                 | expr "." ident ":=" expr
                 | ident "(" args ")"                 (call without targets)
    assertion  ::= impl_assert ("&&" impl_assert)*    (SepConj, right-assoc)
    impl_assert::= expr ["==>" impl_assert]
                 | expr "?" assertion ":" assertion
                 | "acc" "(" expr "." ident ["," expr] ")"

Expression precedence (loosest first): ``? :``, ``==>``, ``||``, ``&&``,
comparisons, additive, multiplicative, unary.
"""

from __future__ import annotations

from fractions import Fraction
from typing import List, Optional, Tuple

from .ast import (
    Acc,
    AExpr,
    AssertStmt,
    Assertion,
    BinOp,
    BinOpKind,
    BoolLit,
    CondAssert,
    CondExp,
    Expr,
    FieldAcc,
    FieldAssign,
    FieldDecl,
    If,
    Implies,
    Inhale,
    IntLit,
    LocalAssign,
    MethodCall,
    MethodDecl,
    NullLit,
    PermLit,
    Program,
    SepConj,
    Seq,
    Skip,
    Stmt,
    Type,
    TYPE_BY_NAME,
    UnOp,
    UnOpKind,
    Var,
    VarDecl,
    Exhale,
    seq_of,
)
from .lexer import Token, ViperSyntaxError, tokenize


class _Parser:
    def __init__(self, tokens: List[Token]):
        self._tokens = tokens
        self._pos = 0

    # -- token plumbing -----------------------------------------------------

    def _peek(self, offset: int = 0) -> Token:
        return self._tokens[min(self._pos + offset, len(self._tokens) - 1)]

    def _advance(self) -> Token:
        token = self._tokens[self._pos]
        if token.kind != "eof":
            self._pos += 1
        return token

    def _check(self, kind: str) -> bool:
        return self._peek().kind == kind

    def _accept(self, kind: str) -> Optional[Token]:
        if self._check(kind):
            return self._advance()
        return None

    def _expect(self, kind: str) -> Token:
        token = self._peek()
        if token.kind != kind:
            raise ViperSyntaxError(
                f"expected {kind!r}, found {token.text!r}", token.line, token.column
            )
        return self._advance()

    def _error(self, message: str) -> ViperSyntaxError:
        token = self._peek()
        return ViperSyntaxError(message, token.line, token.column)

    # -- program ------------------------------------------------------------

    def parse_program(self) -> Program:
        """Parse a whole program: field and method declarations."""
        fields: List[FieldDecl] = []
        methods: List[MethodDecl] = []
        while not self._check("eof"):
            if self._check("field"):
                fields.append(self._parse_field_decl())
            elif self._check("method"):
                methods.append(self._parse_method_decl())
            else:
                raise self._error("expected a field or method declaration")
        return Program(tuple(fields), tuple(methods))

    def _parse_field_decl(self) -> FieldDecl:
        line = self._peek().line
        self._expect("field")
        name = self._expect("ident").text
        self._expect(":")
        return FieldDecl(name, self._parse_type(), pos=line)

    def _parse_type(self) -> Type:
        token = self._advance()
        if token.text in TYPE_BY_NAME:
            return TYPE_BY_NAME[token.text]
        raise ViperSyntaxError(f"unknown type {token.text!r}", token.line, token.column)

    def _parse_params(self) -> Tuple[Tuple[str, Type], ...]:
        params: List[Tuple[str, Type]] = []
        self._expect("(")
        if not self._check(")"):
            while True:
                name = self._expect("ident").text
                self._expect(":")
                params.append((name, self._parse_type()))
                if not self._accept(","):
                    break
        self._expect(")")
        return tuple(params)

    def _parse_method_decl(self) -> MethodDecl:
        line = self._peek().line
        self._expect("method")
        name = self._expect("ident").text
        args = self._parse_params()
        returns: Tuple[Tuple[str, Type], ...] = ()
        if self._accept("returns"):
            returns = self._parse_params()
        pres: List[Assertion] = []
        posts: List[Assertion] = []
        while True:
            if self._accept("requires"):
                pres.append(self.parse_assertion())
            elif self._accept("ensures"):
                posts.append(self.parse_assertion())
            else:
                break
        body: Optional[Stmt] = None
        if self._check("{"):
            body = self._parse_block()
        return MethodDecl(
            name,
            args,
            returns,
            _conjoin(pres),
            _conjoin(posts),
            body,
            pos=line,
        )

    # -- statements ---------------------------------------------------------

    def _parse_block(self) -> Stmt:
        self._expect("{")
        stmts: List[Stmt] = []
        while not self._check("}"):
            stmts.append(self._parse_stmt())
            self._accept(";")
        self._expect("}")
        return seq_of(*stmts)

    def _parse_stmt(self) -> Stmt:
        line = self._peek().line
        if self._accept("var"):
            name = self._expect("ident").text
            self._expect(":")
            typ = self._parse_type()
            if self._accept(":="):
                init = self.parse_expr()
                return Seq(
                    VarDecl(name, typ, pos=line),
                    LocalAssign(name, init, pos=line),
                )
            return VarDecl(name, typ, pos=line)
        if self._accept("inhale"):
            return Inhale(self.parse_assertion(), pos=line)
        if self._accept("exhale"):
            return Exhale(self.parse_assertion(), pos=line)
        if self._accept("assert"):
            return AssertStmt(self.parse_assertion(), pos=line)
        if self._accept("assume"):
            # assume A desugars to inhale A for pure A (Viper restricts
            # assume to pure assertions).
            return Inhale(self.parse_assertion(), pos=line)
        if self._check("if"):
            return self._parse_if()
        if self._check("while"):
            return self._parse_while()
        return self._parse_assign_or_call()

    def _parse_if(self) -> Stmt:
        line = self._peek().line
        self._expect("if")
        self._expect("(")
        cond = self.parse_expr()
        self._expect(")")
        then = self._parse_block()
        otherwise: Stmt = Skip()
        if self._accept("else"):
            if self._check("if"):
                otherwise = self._parse_if()
            else:
                otherwise = self._parse_block()
        elif self._accept("elseif"):
            raise self._error("use 'else if' instead of 'elseif'")
        return If(cond, then, otherwise, pos=line)

    def _parse_while(self) -> Stmt:
        from .loops import While

        line = self._peek().line
        self._expect("while")
        self._expect("(")
        cond = self.parse_expr()
        self._expect(")")
        invariants: List[Assertion] = []
        while self._accept("invariant"):
            invariants.append(self.parse_assertion())
        body = self._parse_block()
        return While(cond, _conjoin(invariants), body, pos=line)

    def _parse_assign_or_call(self) -> Stmt:
        line = self._peek().line
        # Lookahead: ident (, ident)* := ...  |  ident(...)  |  expr.f := ...
        if self._check("ident"):
            # Call without targets: ident '('
            if self._peek(1).kind == "(":
                name = self._advance().text
                args = self._parse_call_args()
                return MethodCall((), name, args, pos=line)
            # Multi-target assignment / call: ident (',' ident)* ':='
            targets = [self._peek().text]
            offset = 1
            while (
                self._peek(offset).kind == ","
                and self._peek(offset + 1).kind == "ident"
            ):
                targets.append(self._peek(offset + 1).text)
                offset += 2
            if self._peek(offset).kind == ":=":
                for _ in range(offset + 1):
                    self._advance()
                if self._check("new"):
                    if len(targets) != 1:
                        raise self._error("new() has a single target")
                    return self._parse_new(targets[0], line)
                if (
                    self._check("ident")
                    and self._peek(1).kind == "("
                ):
                    name = self._advance().text
                    args = self._parse_call_args()
                    return MethodCall(tuple(targets), name, args, pos=line)
                if len(targets) != 1:
                    raise self._error("multiple assignment targets require a call")
                return LocalAssign(targets[0], self.parse_expr(), pos=line)
        # Field assignment: expr '.' field ':=' expr
        lhs = self.parse_expr()
        if isinstance(lhs, FieldAcc) and self._accept(":="):
            return FieldAssign(lhs.receiver, lhs.field, self.parse_expr(), pos=line)
        raise self._error("expected a statement")

    def _parse_new(self, target: str, line: Optional[int] = None) -> Stmt:
        from .allocation import NewStmt

        self._expect("new")
        self._expect("(")
        if self._accept("*"):
            self._expect(")")
            return NewStmt(target, (), all_fields=True, pos=line)
        fields = []
        if not self._check(")"):
            fields.append(self._expect("ident").text)
            while self._accept(","):
                fields.append(self._expect("ident").text)
        self._expect(")")
        return NewStmt(target, tuple(fields), pos=line)

    def _parse_call_args(self) -> Tuple[Expr, ...]:
        self._expect("(")
        args: List[Expr] = []
        if not self._check(")"):
            while True:
                args.append(self.parse_expr())
                if not self._accept(","):
                    break
        self._expect(")")
        return tuple(args)

    # -- assertions -----------------------------------------------------------

    def parse_assertion(self) -> Assertion:
        """Parse an assertion (`&&` is the separating conjunction here)."""
        left = self._parse_assertion_impl()
        if self._accept("&&"):
            right = self.parse_assertion()
            return SepConj(left, right)
        return left

    def _parse_assertion_impl(self) -> Assertion:
        if self._check("acc"):
            return self._parse_acc()
        # Parse an expression *without* crossing assertion-level '&&'.
        expr = self._parse_impl_level_expr(assertion_pos=True)
        if self._accept("==>"):
            # ==> binds weakest in assertions: its body extends maximally,
            # including across `&&` (matching Viper's concrete syntax).
            body = self.parse_assertion()
            return Implies(expr, body)
        if self._accept("?"):
            then = self.parse_assertion()
            self._expect(":")
            otherwise = self.parse_assertion()
            return CondAssert(expr, then, otherwise)
        return AExpr(expr)

    def _parse_acc(self) -> Assertion:
        self._expect("acc")
        self._expect("(")
        receiver = self.parse_expr()
        if not isinstance(receiver, FieldAcc):
            raise self._error("acc expects a field access receiver.field")
        perm: Expr = PermLit(Fraction(1))
        if self._accept(","):
            perm = self.parse_expr()
        self._expect(")")
        return Acc(receiver.receiver, receiver.field, perm)

    # -- expressions ----------------------------------------------------------
    #
    # Precedence climbing; in assertion positions '&&' and '==>' terminate the
    # expression so the assertion grammar can consume them.

    def parse_expr(self) -> Expr:
        """Parse an expression at the loosest precedence level."""
        return self._parse_cond_expr(assertion_pos=False)

    def _parse_impl_level_expr(self, assertion_pos: bool) -> Expr:
        return self._parse_or(assertion_pos)

    def _parse_cond_expr(self, assertion_pos: bool) -> Expr:
        cond = self._parse_implies(assertion_pos)
        if self._accept("?"):
            then = self._parse_cond_expr(assertion_pos)
            self._expect(":")
            otherwise = self._parse_cond_expr(assertion_pos)
            return CondExp(cond, then, otherwise)
        return cond

    def _parse_implies(self, assertion_pos: bool) -> Expr:
        left = self._parse_or(assertion_pos)
        if not assertion_pos and self._accept("==>"):
            right = self._parse_implies(assertion_pos)
            return BinOp(BinOpKind.IMPLIES, left, right)
        return left

    def _parse_or(self, assertion_pos: bool) -> Expr:
        left = self._parse_and(assertion_pos)
        while self._accept("||"):
            right = self._parse_and(assertion_pos)
            left = BinOp(BinOpKind.OR, left, right)
        return left

    def _parse_and(self, assertion_pos: bool) -> Expr:
        left = self._parse_cmp()
        while not assertion_pos and self._accept("&&"):
            right = self._parse_cmp()
            left = BinOp(BinOpKind.AND, left, right)
        return left

    _CMP = {
        "==": BinOpKind.EQ,
        "!=": BinOpKind.NE,
        "<": BinOpKind.LT,
        "<=": BinOpKind.LE,
        ">": BinOpKind.GT,
        ">=": BinOpKind.GE,
    }

    def _parse_cmp(self) -> Expr:
        left = self._parse_additive()
        if self._peek().kind in self._CMP:
            op = self._CMP[self._advance().kind]
            right = self._parse_additive()
            return BinOp(op, left, right)
        return left

    def _parse_additive(self) -> Expr:
        left = self._parse_multiplicative()
        while self._peek().kind in ("+", "-"):
            op = BinOpKind.ADD if self._advance().kind == "+" else BinOpKind.SUB
            right = self._parse_multiplicative()
            left = BinOp(op, left, right)
        return left

    _MUL = {"*": BinOpKind.MUL, "/": BinOpKind.PERM_DIV, "\\": BinOpKind.DIV, "%": BinOpKind.MOD}

    def _parse_multiplicative(self) -> Expr:
        left = self._parse_unary()
        while self._peek().kind in self._MUL:
            op = self._MUL[self._advance().kind]
            right = self._parse_unary()
            # Fold literal fractions like 1/2 into permission literals.
            if (
                op is BinOpKind.PERM_DIV
                and isinstance(left, IntLit)
                and isinstance(right, IntLit)
                and right.value != 0
            ):
                left = PermLit(Fraction(left.value, right.value))
            else:
                left = BinOp(op, left, right)
        return left

    def _parse_unary(self) -> Expr:
        if self._accept("-"):
            operand = self._parse_unary()
            if isinstance(operand, IntLit):
                return IntLit(-operand.value)
            return UnOp(UnOpKind.NEG, operand)
        if self._accept("!"):
            return UnOp(UnOpKind.NOT, self._parse_unary())
        return self._parse_postfix()

    def _parse_postfix(self) -> Expr:
        expr = self._parse_atom()
        while self._accept("."):
            field = self._expect("ident").text
            expr = FieldAcc(expr, field)
        return expr

    def _parse_atom(self) -> Expr:
        token = self._peek()
        if token.kind == "int":
            self._advance()
            return IntLit(int(token.text))
        if token.kind == "true":
            self._advance()
            return BoolLit(True)
        if token.kind == "false":
            self._advance()
            return BoolLit(False)
        if token.kind == "null":
            self._advance()
            return NullLit()
        if token.kind == "write":
            self._advance()
            return PermLit(Fraction(1))
        if token.kind == "none":
            self._advance()
            return PermLit(Fraction(0))
        if token.kind == "ident":
            self._advance()
            return Var(token.text)
        if token.kind == "old":
            from .oldexprs import OldExpr

            self._advance()
            self._expect("(")
            inner = self._parse_cond_expr(assertion_pos=False)
            self._expect(")")
            return OldExpr(inner)
        if self._accept("("):
            expr = self._parse_cond_expr(assertion_pos=False)
            self._expect(")")
            return expr
        raise self._error(f"expected an expression, found {token.text!r}")


def _conjoin(assertions: List[Assertion]) -> Assertion:
    if not assertions:
        return AExpr(BoolLit(True))
    result = assertions[-1]
    for assertion in reversed(assertions[:-1]):
        result = SepConj(assertion, result)
    return result


def parse_program(source: str) -> Program:
    """Parse a complete Viper program."""
    parser = _Parser(tokenize(source))
    return parser.parse_program()


def parse_stmt(source: str) -> Stmt:
    """Parse a statement block ``{ ... }`` or a bare statement sequence."""
    text = source.strip()
    if not text.startswith("{"):
        text = "{" + text + "}"
    parser = _Parser(tokenize(text))
    stmt = parser._parse_block()
    parser._expect("eof")
    return stmt


def parse_assertion(source: str) -> Assertion:
    """Parse a single assertion."""
    parser = _Parser(tokenize(source))
    assertion = parser.parse_assertion()
    parser._expect("eof")
    return assertion


def parse_expr(source: str) -> Expr:
    """Parse a single expression."""
    parser = _Parser(tokenize(source))
    expr = parser.parse_expr()
    parser._expect("eof")
    return expr
