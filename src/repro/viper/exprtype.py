"""Type synthesis for Viper expressions (shared by front-end and passes).

Trust: **trusted** — expression typing feeds the kernel's correspondence
checks.
"""

from __future__ import annotations

from typing import Mapping

from .ast import (
    BinOp,
    BinOpKind,
    BoolLit,
    CondExp,
    Expr,
    FieldAcc,
    IntLit,
    NullLit,
    PermLit,
    Type,
    UnOp,
    UnOpKind,
    Var,
)


def viper_expr_type(
    expr: Expr,
    var_types: Mapping[str, Type],
    field_types: Mapping[str, Type],
) -> Type:
    """Synthesise the Viper type of a (well-typed) expression."""
    if isinstance(expr, Var):
        return var_types[expr.name]
    if isinstance(expr, IntLit):
        return Type.INT
    if isinstance(expr, BoolLit):
        return Type.BOOL
    if isinstance(expr, NullLit):
        return Type.REF
    if isinstance(expr, PermLit):
        return Type.PERM
    if isinstance(expr, FieldAcc):
        return field_types[expr.field]
    if isinstance(expr, UnOp):
        if expr.op is UnOpKind.NOT:
            return Type.BOOL
        return viper_expr_type(expr.operand, var_types, field_types)
    if isinstance(expr, CondExp):
        then_type = viper_expr_type(expr.then, var_types, field_types)
        if then_type is Type.INT:
            else_type = viper_expr_type(expr.otherwise, var_types, field_types)
            return else_type if else_type is Type.PERM else Type.INT
        return then_type
    if isinstance(expr, BinOp):
        op = expr.op
        if op in (
            BinOpKind.AND,
            BinOpKind.OR,
            BinOpKind.IMPLIES,
            BinOpKind.EQ,
            BinOpKind.NE,
            BinOpKind.LT,
            BinOpKind.LE,
            BinOpKind.GT,
            BinOpKind.GE,
        ):
            return Type.BOOL
        if op is BinOpKind.PERM_DIV:
            return Type.PERM
        if op in (BinOpKind.DIV, BinOpKind.MOD):
            return Type.INT
        left = viper_expr_type(expr.left, var_types, field_types)
        right = viper_expr_type(expr.right, var_types, field_types)
        if left is Type.PERM or right is Type.PERM:
            return Type.PERM
        return Type.INT
    raise TypeError(f"unknown expression {expr!r}")
