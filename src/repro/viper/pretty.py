"""Pretty-printer for the Viper subset.

Trust: **untrusted-but-checked** — rendering for messages and round-trip
tests; never consulted by a judgement.

``pretty_program(parse_program(text))`` round-trips modulo whitespace; the
test suite checks ``parse(pretty(ast)) == ast`` for generated ASTs, which is
the invariant the harness relies on when it counts source lines.
"""

from __future__ import annotations

from fractions import Fraction
from typing import List

from .ast import (
    Acc,
    AExpr,
    AssertStmt,
    Assertion,
    BinOp,
    BinOpKind,
    BoolLit,
    CondAssert,
    CondExp,
    Expr,
    FieldAcc,
    FieldAssign,
    If,
    Implies,
    Inhale,
    IntLit,
    LocalAssign,
    MethodCall,
    MethodDecl,
    NullLit,
    PermLit,
    Program,
    SepConj,
    Seq,
    Skip,
    Stmt,
    UnOp,
    UnOpKind,
    Var,
    VarDecl,
    Exhale,
)

_PRECEDENCE = {
    BinOpKind.IMPLIES: 1,
    BinOpKind.OR: 2,
    BinOpKind.AND: 3,
    BinOpKind.EQ: 4,
    BinOpKind.NE: 4,
    BinOpKind.LT: 4,
    BinOpKind.LE: 4,
    BinOpKind.GT: 4,
    BinOpKind.GE: 4,
    BinOpKind.ADD: 5,
    BinOpKind.SUB: 5,
    BinOpKind.MUL: 6,
    BinOpKind.DIV: 6,
    BinOpKind.MOD: 6,
    BinOpKind.PERM_DIV: 6,
}


def pretty_expr(expr: Expr, parent_prec: int = 0) -> str:
    """Render an expression with minimal parentheses."""
    from .oldexprs import OldExpr

    if isinstance(expr, OldExpr):
        return f"old({pretty_expr(expr.expr)})"
    if isinstance(expr, Var):
        return expr.name
    if isinstance(expr, IntLit):
        return str(expr.value)
    if isinstance(expr, BoolLit):
        return "true" if expr.value else "false"
    if isinstance(expr, NullLit):
        return "null"
    if isinstance(expr, PermLit):
        return _pretty_perm(expr.amount)
    if isinstance(expr, FieldAcc):
        return f"{pretty_expr(expr.receiver, 7)}.{expr.field}"
    if isinstance(expr, UnOp):
        op = "-" if expr.op is UnOpKind.NEG else "!"
        return f"{op}{pretty_expr(expr.operand, 7)}"
    if isinstance(expr, CondExp):
        text = (
            f"{pretty_expr(expr.cond, 1)} ? {pretty_expr(expr.then)} : "
            f"{pretty_expr(expr.otherwise)}"
        )
        return f"({text})" if parent_prec > 0 else text
    if isinstance(expr, BinOp):
        prec = _PRECEDENCE[expr.op]
        if expr.op is BinOpKind.IMPLIES:
            # ==> is right-associative: parenthesise a nested left operand.
            text = (
                f"{pretty_expr(expr.left, prec + 1)} {expr.op.value} "
                f"{pretty_expr(expr.right, prec)}"
            )
        else:
            text = (
                f"{pretty_expr(expr.left, prec)} {expr.op.value} "
                f"{pretty_expr(expr.right, prec + 1)}"
            )
        return f"({text})" if prec < parent_prec else text
    raise TypeError(f"unknown expression {expr!r}")


def _pretty_perm(amount: Fraction) -> str:
    if amount == 1:
        return "write"
    if amount == 0:
        return "none"
    return f"{amount.numerator}/{amount.denominator}"


def pretty_assertion(assertion: Assertion) -> str:
    """Render an assertion in Viper concrete syntax."""
    if isinstance(assertion, AExpr):
        return pretty_expr(assertion.expr, 4)
    if isinstance(assertion, Acc):
        receiver = pretty_expr(assertion.receiver, 7)
        return f"acc({receiver}.{assertion.field}, {pretty_expr(assertion.perm)})"
    if isinstance(assertion, SepConj):
        return f"{pretty_assertion(assertion.left)} && {pretty_assertion(assertion.right)}"
    if isinstance(assertion, Implies):
        return f"{pretty_expr(assertion.cond, 4)} ==> {pretty_assertion(assertion.body)}"
    if isinstance(assertion, CondAssert):
        return (
            f"{pretty_expr(assertion.cond, 4)} ? {pretty_assertion(assertion.then)}"
            f" : {pretty_assertion(assertion.otherwise)}"
        )
    raise TypeError(f"unknown assertion {assertion!r}")


def _stmt_lines(stmt: Stmt, indent: int) -> List[str]:
    pad = "  " * indent
    if isinstance(stmt, Skip):
        return []
    if isinstance(stmt, Seq):
        return _stmt_lines(stmt.first, indent) + _stmt_lines(stmt.second, indent)
    if isinstance(stmt, VarDecl):
        return [f"{pad}var {stmt.name}: {stmt.typ}"]
    if isinstance(stmt, LocalAssign):
        return [f"{pad}{stmt.target} := {pretty_expr(stmt.rhs)}"]
    if isinstance(stmt, FieldAssign):
        receiver = pretty_expr(stmt.receiver, 7)
        return [f"{pad}{receiver}.{stmt.field} := {pretty_expr(stmt.rhs)}"]
    if isinstance(stmt, MethodCall):
        call = f"{stmt.method}({', '.join(pretty_expr(a) for a in stmt.args)})"
        if stmt.targets:
            return [f"{pad}{', '.join(stmt.targets)} := {call}"]
        return [f"{pad}{call}"]
    if isinstance(stmt, Inhale):
        return [f"{pad}inhale {pretty_assertion(stmt.assertion)}"]
    if isinstance(stmt, Exhale):
        return [f"{pad}exhale {pretty_assertion(stmt.assertion)}"]
    if isinstance(stmt, AssertStmt):
        return [f"{pad}assert {pretty_assertion(stmt.assertion)}"]
    from .allocation import NewStmt
    from .loops import While

    if isinstance(stmt, While):
        lines = [
            f"{pad}while ({pretty_expr(stmt.cond)})",
            f"{pad}  invariant {pretty_assertion(stmt.invariant)}",
            f"{pad}{{",
        ]
        lines += _stmt_lines(stmt.body, indent + 1)
        lines.append(f"{pad}}}")
        return lines
    if isinstance(stmt, NewStmt):
        inner = "*" if stmt.all_fields else ", ".join(stmt.fields)
        return [f"{pad}{stmt.target} := new({inner})"]
    if isinstance(stmt, If):
        lines = [f"{pad}if ({pretty_expr(stmt.cond)}) {{"]
        lines += _stmt_lines(stmt.then, indent + 1)
        if isinstance(stmt.otherwise, Skip):
            lines.append(f"{pad}}}")
        else:
            lines.append(f"{pad}}} else {{")
            lines += _stmt_lines(stmt.otherwise, indent + 1)
            lines.append(f"{pad}}}")
        return lines
    raise TypeError(f"unknown statement {stmt!r}")


def pretty_stmt(stmt: Stmt, indent: int = 0) -> str:
    """Render a statement (one line per simple statement)."""
    return "\n".join(_stmt_lines(stmt, indent))


def pretty_method(method: MethodDecl) -> str:
    """Render a method declaration with its specification and body."""
    args = ", ".join(f"{name}: {typ}" for name, typ in method.args)
    lines = [f"method {method.name}({args})"]
    if method.returns:
        rets = ", ".join(f"{name}: {typ}" for name, typ in method.returns)
        lines[0] += f" returns ({rets})"
    lines.append(f"  requires {pretty_assertion(method.pre)}")
    lines.append(f"  ensures {pretty_assertion(method.post)}")
    if method.body is not None:
        lines.append("{")
        lines += _stmt_lines(method.body, 1)
        lines.append("}")
    return "\n".join(lines)


def pretty_program(program: Program) -> str:
    """Render a whole program; round-trips with ``parse_program``."""
    parts = [f"field {f.name}: {f.typ}" for f in program.fields]
    parts += [""] if program.fields else []
    parts += [pretty_method(m) + "\n" for m in program.methods]
    return "\n".join(parts)


def count_loc(text: str) -> int:
    """Count non-empty, non-comment-only lines (the paper's LoC metric)."""
    count = 0
    for line in text.splitlines():
        stripped = line.strip()
        if stripped and not stripped.startswith("//"):
            count += 1
    return count
