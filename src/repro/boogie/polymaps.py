"""Desugaring of Boogie's polymorphic maps (Sec. 4.4).

Trust: **untrusted-but-checked** — desugaring convenience used by the
translator side; the kernel sees only its re-parsed output.

Boogie's polymorphic map types (e.g. ``<T>[Ref, Field T]T``) are
*impredicative* — a map admits any value as key, including itself — and have
no general formal model.  The paper side-steps this by adjusting the
Viper-to-Boogie implementation to represent each polymorphic map type via

* an uninterpreted type (e.g. ``HeapType``),
* polymorphic ``read``/``upd`` functions, and
* two axioms relating them (read-over-update).

This module implements that adjustment as a Boogie-to-Boogie pass:
:func:`desugar_program` rewrites every map-typed variable and every
``MapSelect``/``MapStore`` into the function-based form.  The concrete model
justifying the new declarations — partial maps with a default-valued
``read``, the circularity-breaking construction — lives with the background
theory in :mod:`repro.frontend.background`.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional, Tuple

from .ast import (
    Assign,
    Assume,
    AxiomDecl,
    BAssert,
    BBinOp,
    BBinOpKind,
    BExpr,
    BIf,
    BoogieProgram,
    BStmt,
    BType,
    BUnOp,
    BVar,
    CondB,
    ConstDecl,
    Exists,
    Forall,
    FuncApp,
    FuncDecl,
    GlobalVarDecl,
    Havoc,
    MapSelect,
    MapStore,
    MapType,
    Procedure,
    SimpleCmd,
    StmtBlock,
    subst_type,
    TCon,
    TVar,
    TypeConDecl,
)


@dataclass
class DesugaredMap:
    """The function-based representation of one polymorphic map type."""

    map_type: MapType
    type_name: str
    read_name: str
    upd_name: str

    @property
    def tcon(self) -> TCon:
        return TCon(self.type_name)


@dataclass
class PolymapEnv:
    """Mapping from polymorphic map types to their desugared representation."""

    by_type: Dict[MapType, DesugaredMap] = field(default_factory=dict)

    def representation(self, map_type: MapType, hint: str = "Map") -> DesugaredMap:
        if map_type not in self.by_type:
            taken = {rep.type_name for rep in self.by_type.values()}
            name = f"{hint}Type"
            index = 0
            while name in taken:
                index += 1
                name = f"{hint}Type{index}"
            self.by_type[map_type] = DesugaredMap(
                map_type=map_type,
                type_name=name,
                read_name=f"read{name}",
                upd_name=f"upd{name}",
            )
        return self.by_type[map_type]

    def declarations(
        self,
    ) -> Tuple[List[TypeConDecl], List[FuncDecl], List[AxiomDecl]]:
        """Type, function, and axiom declarations for all representations."""
        type_decls: List[TypeConDecl] = []
        func_decls: List[FuncDecl] = []
        axioms: List[AxiomDecl] = []
        for rep in self.by_type.values():
            mt = rep.map_type
            type_decls.append(TypeConDecl(rep.type_name, 0))
            func_decls.append(
                FuncDecl(rep.read_name, mt.type_params, (rep.tcon,) + mt.arg_types, mt.result)
            )
            func_decls.append(
                FuncDecl(
                    rep.upd_name,
                    mt.type_params,
                    (rep.tcon,) + mt.arg_types + (mt.result,),
                    rep.tcon,
                )
            )
            axioms.extend(_read_upd_axioms(rep))
        return type_decls, func_decls, axioms


def _read_upd_axioms(rep: DesugaredMap) -> List[AxiomDecl]:
    """The two read-over-update axioms for a desugared map type."""
    mt = rep.map_type
    targs: Tuple[BType, ...] = tuple(TVar(p) for p in mt.type_params)
    m = BVar("m?")
    v = BVar("v?")
    keys = tuple(BVar(f"k{i}?") for i in range(len(mt.arg_types)))
    keys2 = tuple(BVar(f"l{i}?") for i in range(len(mt.arg_types)))
    bound_same = (("m?", rep.tcon),) + tuple(
        (k.name, t) for k, t in zip(keys, mt.arg_types)
    ) + (("v?", mt.result),)
    upd = FuncApp(rep.upd_name, targs, (m,) + keys + (v,))
    read_same = FuncApp(rep.read_name, targs, (upd,) + keys)
    same = AxiomDecl(
        Forall(mt.type_params, bound_same, BBinOp(BBinOpKind.EQ, read_same, v)),
        comment=f"read-over-update (same key) for {rep.type_name}",
    )
    bound_other = bound_same + tuple((k.name, t) for k, t in zip(keys2, mt.arg_types))
    distinct: Optional[BExpr] = None
    for k, l in zip(keys, keys2):
        clause = BBinOp(BBinOpKind.NE, k, l)
        distinct = clause if distinct is None else BBinOp(BBinOpKind.OR, distinct, clause)
    read_other = FuncApp(rep.read_name, targs, (upd,) + keys2)
    read_orig = FuncApp(rep.read_name, targs, (m,) + keys2)
    other = AxiomDecl(
        Forall(
            mt.type_params,
            bound_other,
            BBinOp(
                BBinOpKind.IMPLIES,
                distinct if distinct is not None else BVar("false"),
                BBinOp(BBinOpKind.EQ, read_other, read_orig),
            ),
        ),
        comment=f"read-over-update (other key) for {rep.type_name}",
    )
    return [same, other]


class _Desugarer:
    """Rewrites one program; resolves map-expression types from variables."""

    def __init__(self, env: PolymapEnv, hint_for_var):
        self._env = env
        self._hint_for_var = hint_for_var
        self._var_types: Dict[str, BType] = {}

    def desugar_type(self, typ: BType, hint: str = "Map") -> BType:
        if isinstance(typ, MapType):
            return self._env.representation(typ, hint).tcon
        if isinstance(typ, TCon):
            return TCon(typ.name, tuple(self.desugar_type(a) for a in typ.args))
        return typ

    # -- expressions ----------------------------------------------------------

    def desugar_expr(self, expr: BExpr) -> BExpr:
        if isinstance(expr, MapSelect):
            map_type = self._map_type_of(expr.map)
            rep = self._env.representation(map_type)
            return FuncApp(
                rep.read_name,
                expr.type_args,
                (self.desugar_expr(expr.map),)
                + tuple(self.desugar_expr(i) for i in expr.indices),
            )
        if isinstance(expr, MapStore):
            map_type = self._map_type_of(expr.map)
            rep = self._env.representation(map_type)
            return FuncApp(
                rep.upd_name,
                expr.type_args,
                (self.desugar_expr(expr.map),)
                + tuple(self.desugar_expr(i) for i in expr.indices)
                + (self.desugar_expr(expr.value),),
            )
        if isinstance(expr, BBinOp):
            return BBinOp(expr.op, self.desugar_expr(expr.left), self.desugar_expr(expr.right))
        if isinstance(expr, BUnOp):
            return BUnOp(expr.op, self.desugar_expr(expr.operand))
        if isinstance(expr, CondB):
            return CondB(
                self.desugar_expr(expr.cond),
                self.desugar_expr(expr.then),
                self.desugar_expr(expr.otherwise),
            )
        if isinstance(expr, FuncApp):
            return FuncApp(
                expr.name, expr.type_args, tuple(self.desugar_expr(a) for a in expr.args)
            )
        if isinstance(expr, (Forall, Exists)):
            ctor = Forall if isinstance(expr, Forall) else Exists
            saved = dict(self._var_types)
            new_bound = []
            for name, typ in expr.bound:
                self._var_types[name] = typ
                new_bound.append((name, self.desugar_type(typ)))
            body = self.desugar_expr(expr.body)
            self._var_types = saved
            return ctor(expr.type_vars, tuple(new_bound), body)
        return expr

    def _map_type_of(self, expr: BExpr) -> MapType:
        if isinstance(expr, BVar):
            typ = self._var_types.get(expr.name)
            if isinstance(typ, MapType):
                return typ
            raise TypeError(f"variable {expr.name!r} is not map-typed")
        if isinstance(expr, MapStore):
            return self._map_type_of(expr.map)
        raise TypeError(
            f"cannot resolve the map type of {expr!r}; desugaring supports "
            f"map expressions rooted at variables (which the Viper encoding "
            f"always produces)"
        )

    # -- statements -------------------------------------------------------------

    def desugar_cmd(self, cmd: SimpleCmd) -> SimpleCmd:
        if isinstance(cmd, Assume):
            return Assume(self.desugar_expr(cmd.expr))
        if isinstance(cmd, BAssert):
            return BAssert(self.desugar_expr(cmd.expr))
        if isinstance(cmd, Assign):
            return Assign(cmd.target, self.desugar_expr(cmd.rhs))
        return cmd

    def desugar_stmt(self, stmt: BStmt) -> BStmt:
        blocks = []
        for block in stmt:
            cmds = tuple(self.desugar_cmd(c) for c in block.cmds)
            ifopt = None
            if block.ifopt is not None:
                ifopt = BIf(
                    None if block.ifopt.cond is None else self.desugar_expr(block.ifopt.cond),
                    self.desugar_stmt(block.ifopt.then),
                    self.desugar_stmt(block.ifopt.otherwise),
                )
            blocks.append(StmtBlock(cmds, ifopt))
        return tuple(blocks)

    # -- program ---------------------------------------------------------------

    def desugar_program(self, program: BoogieProgram) -> BoogieProgram:
        # First pass: record variable types so map expressions resolve, and
        # pre-register representations with good name hints.
        for gvar in program.globals:
            self._var_types[gvar.name] = gvar.typ
            if isinstance(gvar.typ, MapType):
                self._env.representation(gvar.typ, self._hint_for_var(gvar.name))
        for const in program.consts:
            self._var_types[const.name] = const.typ
        for proc in program.procedures:
            for name, typ in proc.locals:
                if isinstance(typ, MapType):
                    self._env.representation(typ, self._hint_for_var(name))
        globals_ = tuple(
            GlobalVarDecl(g.name, self.desugar_type(g.typ)) for g in program.globals
        )
        consts = tuple(
            ConstDecl(c.name, self.desugar_type(c.typ), c.unique) for c in program.consts
        )
        axioms = tuple(
            AxiomDecl(self.desugar_expr(a.expr), a.comment) for a in program.axioms
        )
        procedures = []
        for proc in program.procedures:
            saved = dict(self._var_types)
            for name, typ in proc.locals:
                self._var_types[name] = typ
            body = self.desugar_stmt(proc.body)
            self._var_types = saved
            locals_ = tuple((n, self.desugar_type(t)) for n, t in proc.locals)
            procedures.append(Procedure(proc.name, locals_, body))
        type_decls, func_decls, new_axioms = self._env.declarations()
        return BoogieProgram(
            type_decls=program.type_decls + tuple(type_decls),
            consts=consts,
            globals=globals_,
            functions=program.functions + tuple(func_decls),
            axioms=tuple(new_axioms) + axioms,
            procedures=tuple(procedures),
        )


def desugar_program(
    program: BoogieProgram, env: Optional[PolymapEnv] = None
) -> BoogieProgram:
    """Rewrite all polymorphic-map uses into the function-based form."""

    def hint_for_var(name: str) -> str:
        if name.upper().startswith("H"):
            return "Heap"
        if name.upper().startswith("M") or name.upper().startswith("W"):
            return "Mask"
        return "Map"

    desugarer = _Desugarer(env if env is not None else PolymapEnv(), hint_for_var)
    return desugarer.desugar_program(program)
