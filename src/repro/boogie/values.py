"""Boogie value domain.

Trust: **trusted** — the value domain of the target semantics.

Boogie values are integers, reals, booleans, and elements of uninterpreted
type carriers.  Carrier elements are :class:`UValue` — a tagged, hashable
payload.  The tailored polymorphic-map model of Sec. 4.4 instantiates the
heap/mask carriers with *partial maps* (:class:`FrozenMap` payloads); the
empty map is a legal carrier element, which is exactly how the paper breaks
the impredicativity circularity ("to construct an initial heap, we already
need a heap of the same type").
"""

from __future__ import annotations

from dataclasses import dataclass
from fractions import Fraction
from typing import Iterator, Mapping, Tuple, Union


@dataclass(frozen=True)
class BVInt:
    value: int

    def __repr__(self) -> str:
        return f"BVInt({self.value})"


@dataclass(frozen=True)
class BVReal:
    value: Fraction

    def __repr__(self) -> str:
        return f"BVReal({self.value})"


@dataclass(frozen=True)
class BVBool:
    value: bool

    def __repr__(self) -> str:
        return f"BVBool({self.value})"


class FrozenMap:
    """An immutable, hashable finite partial map (carrier payload)."""

    __slots__ = ("_items", "_hash")

    def __init__(self, mapping: Mapping = ()):
        items = dict(mapping)
        self._items = tuple(sorted(items.items(), key=lambda kv: repr(kv[0])))
        self._hash = hash(self._items)

    def get(self, key, default=None):
        for k, v in self._items:
            if k == key:
                return v
        return default

    def __contains__(self, key) -> bool:
        return any(k == key for k, _ in self._items)

    def set(self, key, value) -> "FrozenMap":
        items = {k: v for k, v in self._items}
        items[key] = value
        return FrozenMap(items)

    def items(self) -> Tuple:
        return self._items

    def keys(self) -> Iterator:
        return (k for k, _ in self._items)

    def __iter__(self):
        return self.keys()

    def __len__(self) -> int:
        return len(self._items)

    def __eq__(self, other: object) -> bool:
        return isinstance(other, FrozenMap) and self._items == other._items

    def __hash__(self) -> int:
        return self._hash

    def __repr__(self) -> str:
        inner = ", ".join(f"{k!r}: {v!r}" for k, v in self._items)
        return f"FrozenMap({{{inner}}})"


EMPTY_MAP = FrozenMap()


@dataclass(frozen=True)
class UValue:
    """An element of an uninterpreted type carrier.

    ``type_name`` names the carrier (e.g. ``"Ref"``, ``"Field"``,
    ``"HeapType"``); ``payload`` is any hashable identity (an address, a
    field name, a :class:`FrozenMap`, ...).
    """

    type_name: str
    payload: object

    def __repr__(self) -> str:
        return f"UValue({self.type_name}, {self.payload!r})"


BValue = Union[BVInt, BVReal, BVBool, UValue]


def as_b_bool(value: BValue) -> bool:
    if not isinstance(value, BVBool):
        raise TypeError(f"expected a Boogie boolean, got {value!r}")
    return value.value


def as_b_int(value: BValue) -> int:
    if not isinstance(value, BVInt):
        raise TypeError(f"expected a Boogie integer, got {value!r}")
    return value.value


def as_b_real(value: BValue) -> Fraction:
    if isinstance(value, BVReal):
        return value.value
    if isinstance(value, BVInt):
        return Fraction(value.value)
    raise TypeError(f"expected a Boogie real, got {value!r}")
