"""Type and function interpretations for Boogie (Sec. 2.2, Sec. 4.4).

Trust: **trusted** — evaluates axioms under the standard interpretation;
background validity rests on it.

The correctness of a Boogie procedure quantifies over all *well-formed*
interpretations of the uninterpreted types and functions that satisfy the
program's axioms (Fig. 9, top).  Executable semantics need concrete,
finitely-sampled interpretations:

* :class:`Interpretation` holds carrier samples for uninterpreted types and
  Python callables for uninterpreted functions.
* ``check_axioms_bounded`` evaluates each axiom over the sampled carriers —
  the executable counterpart of the paper's once-and-for-all Isabelle proof
  that the chosen interpretation satisfies the axioms (AxiomSat in Fig. 9).

The *standard interpretation* for the Viper encoding (heap/mask carriers as
partial maps with a default-value ``read`` — the circularity-breaking model
of Sec. 4.4) is constructed in :mod:`repro.frontend.background`, since its
shape is dictated by the background declarations the translation emits.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from fractions import Fraction
from typing import Callable, Dict, List, Optional, Sequence, Tuple

from .ast import (
    AxiomDecl,
    BBool,
    BInt,
    BReal,
    BType,
    BoogieProgram,
    BOOL,
    INT,
    MapType,
    REAL,
    TCon,
    TVar,
)
from .values import BValue, BVBool, BVInt, BVReal, FrozenMap, UValue

#: Signature of an uninterpreted-function implementation.
FuncImpl = Callable[[Tuple[BType, ...], Tuple[BValue, ...]], BValue]

#: Signature of a carrier: given the constructor's type arguments, return a
#: finite sample of the carrier set.
Carrier = Callable[[Tuple[BType, ...]], Sequence[BValue]]

#: Finite samples for the built-in types (used by havoc and quantifiers).
INT_SAMPLE: Tuple[BValue, ...] = (BVInt(0), BVInt(1), BVInt(-1), BVInt(7))
REAL_SAMPLE: Tuple[BValue, ...] = (
    BVReal(Fraction(0)),
    BVReal(Fraction(1, 2)),
    BVReal(Fraction(1)),
)
BOOL_SAMPLE: Tuple[BValue, ...] = (BVBool(False), BVBool(True))


class InterpretationError(Exception):
    """Raised when an interpretation is queried for something it lacks."""


@dataclass
class Interpretation:
    """A concrete interpretation 𝒯, ℱ of uninterpreted types and functions."""

    carriers: Dict[str, Carrier] = field(default_factory=dict)
    functions: Dict[str, FuncImpl] = field(default_factory=dict)
    #: Monotypes over which type quantifiers (∀_ty) are evaluated.
    type_universe: Tuple[BType, ...] = (INT, BOOL)
    #: Overrides for built-in-type samples (rarely needed).
    int_sample: Tuple[BValue, ...] = INT_SAMPLE
    real_sample: Tuple[BValue, ...] = REAL_SAMPLE

    def carrier_of(self, typ: BType) -> Sequence[BValue]:
        """A finite sample of the values of ``typ``."""
        if isinstance(typ, BInt):
            return self.int_sample
        if isinstance(typ, BReal):
            return self.real_sample
        if isinstance(typ, BBool):
            return BOOL_SAMPLE
        if isinstance(typ, TCon):
            if typ.name not in self.carriers:
                raise InterpretationError(f"no carrier for type {typ}")
            return self.carriers[typ.name](typ.args)
        if isinstance(typ, MapType):
            # Sugar-level map values are FrozenMaps; sample only the empty
            # map plus single-entry maps over the index carriers.
            return (UValue("__map__", FrozenMap()),)
        raise InterpretationError(f"cannot sample carrier of {typ}")

    def apply(self, name: str, type_args: Tuple[BType, ...], args: Tuple[BValue, ...]) -> BValue:
        if name not in self.functions:
            raise InterpretationError(f"no interpretation for function {name!r}")
        return self.functions[name](type_args, args)

    def with_function(self, name: str, impl: FuncImpl) -> "Interpretation":
        functions = dict(self.functions)
        functions[name] = impl
        return Interpretation(
            carriers=dict(self.carriers),
            functions=functions,
            type_universe=self.type_universe,
            int_sample=self.int_sample,
            real_sample=self.real_sample,
        )


def fixed_carrier(values: Sequence[BValue]) -> Carrier:
    """A carrier that ignores type arguments and returns a fixed sample."""
    sample = tuple(values)

    def carrier(_type_args: Tuple[BType, ...]) -> Sequence[BValue]:
        return sample

    return carrier


@dataclass
class AxiomCheckResult:
    ok: bool
    failed_axiom: Optional[AxiomDecl] = None
    detail: str = ""


def check_axioms_bounded(
    program: BoogieProgram,
    interp: Interpretation,
    const_values: Dict[str, BValue],
) -> AxiomCheckResult:
    """Evaluate every axiom over the sampled carriers (bounded AxiomSat).

    ``const_values`` maps declared constants to their interpreted values
    (the initial Boogie state restricted to constants).
    """
    from .semantics import BoogieContext, eval_bexpr
    from .state import BoogieState

    ctx = BoogieContext(program=program, interp=interp, var_types=program.global_types())
    state = BoogieState(dict(const_values))
    for axiom in program.axioms:
        value = eval_bexpr(axiom.expr, state, ctx)
        if not isinstance(value, BVBool) or not value.value:
            return AxiomCheckResult(
                ok=False,
                failed_axiom=axiom,
                detail=f"axiom {axiom.comment or axiom.expr!r} evaluated to {value!r}",
            )
    return AxiomCheckResult(ok=True)
