"""Verification-condition generation for the Boogie subset (the back-end).

Trust: **trusted** — the kernel's notion of procedure correctness that the
theorem's hypothesis quantifies over.

The paper treats the IVL back-end (VC generation + SMT) as an orthogonal,
separately-validated component ([37]); this module provides a working
back-end so the reproduction's pipeline is complete: a weakest-(liberal-)
precondition transformer over statement blocks.

``wlp`` obeys the standard equations:

* ``wlp(assume e, Q) = e ==> Q``
* ``wlp(assert e, Q) = e && Q``
* ``wlp(x := e, Q) = Q[x := e]``
* ``wlp(havoc x, Q) = forall x :: Q``
* ``wlp(if (e) {s1} else {s2}, Q) = (e ==> wlp(s1,Q)) && (!e ==> wlp(s2,Q))``
* ``wlp(if (*) {s1} else {s2}, Q) = wlp(s1,Q) && wlp(s2,Q)``

The VC of a procedure is ``wlp(body, true)`` universally closed over the
procedure's variables, under the program's axioms as hypotheses.
"""

from __future__ import annotations

from typing import Dict, Tuple

from .ast import (
    Assign,
    Assume,
    BAssert,
    band,
    BBinOp,
    BBinOpKind,
    BExpr,
    bimplies,
    bnot,
    BoogieProgram,
    BStmt,
    BType,
    BVar,
    expr_free_vars,
    Forall,
    Havoc,
    Procedure,
    SimpleCmd,
    StmtBlock,
    subst_expr,
    TRUE,
)


def wlp_cmd(cmd: SimpleCmd, post: BExpr, var_types: Dict[str, BType]) -> BExpr:
    """wlp of a single simple command (see the module equations)."""
    if isinstance(cmd, Assume):
        return bimplies(cmd.expr, post)
    if isinstance(cmd, BAssert):
        return band(cmd.expr, post)
    if isinstance(cmd, Assign):
        return subst_expr(post, {cmd.target: cmd.rhs})
    if isinstance(cmd, Havoc):
        if cmd.target not in expr_free_vars(post):
            return post
        return Forall((), ((cmd.target, var_types[cmd.target]),), post)
    raise TypeError(f"unknown command {cmd!r}")


def wlp_block(block: StmtBlock, post: BExpr, var_types: Dict[str, BType]) -> BExpr:
    """wlp of a statement block (commands then the optional if)."""
    if block.ifopt is not None:
        then_wlp = wlp_stmt(block.ifopt.then, post, var_types)
        else_wlp = wlp_stmt(block.ifopt.otherwise, post, var_types)
        if block.ifopt.cond is None:
            post = band(then_wlp, else_wlp)
        else:
            post = band(
                bimplies(block.ifopt.cond, then_wlp),
                bimplies(bnot(block.ifopt.cond), else_wlp),
            )
    for cmd in reversed(block.cmds):
        post = wlp_cmd(cmd, post, var_types)
    return post


def wlp_stmt(stmt: BStmt, post: BExpr, var_types: Dict[str, BType]) -> BExpr:
    """wlp of a whole statement (block list), right to left."""
    for block in reversed(stmt):
        post = wlp_block(block, post, var_types)
    return post


def procedure_vc(
    program: BoogieProgram, proc: Procedure
) -> Tuple[BExpr, Dict[str, BType]]:
    """The procedure's verification condition and its free-variable typing.

    Returns ``(vc, var_types)`` where ``vc``'s free variables are the
    procedure's variables (globals, constants, locals); the VC holds in an
    interpretation iff every execution from every initial state avoids F.
    The program's axioms are *not* conjoined here — the prover assumes an
    interpretation and initial constant values under which they hold
    (AxiomSat of Fig. 9), mirroring the paper's correctness definition.
    """
    var_types: Dict[str, BType] = program.global_types()
    var_types.update(dict(proc.locals))
    return wlp_stmt(proc.body, TRUE, var_types), var_types
