"""Small-step operational semantics for the Boogie subset (Sec. 2.2).

Trust: **trusted** — the executable target semantics; the simulation
judgements quantify over its steps.

Executions are sequences of steps between program points (cursors) with
three outcomes for finite executions: failure ``BFailure`` (a violated
``assert``), magic ``BMagic`` (a violated ``assume``), and normal
``BNormal(state)``.  Expression evaluation is *total* (given an
interpretation for the uninterpreted functions) — the key contrast with
Viper's partial evaluation.

Quantifiers are evaluated over the finite carrier samples of the ambient
:class:`~repro.boogie.interp.Interpretation`; type quantifiers range over
its ``type_universe``.  This makes the semantics executable, which the
certification test-suite uses to validate simulation lemmas differentially.
"""

from __future__ import annotations

from dataclasses import dataclass
from fractions import Fraction
from typing import Dict, Optional, Tuple, Union

from ..choice import ChoiceOracle, DefaultOracle
from .ast import (
    Assign,
    Assume,
    BAssert,
    BBinOp,
    BBinOpKind,
    BBoolLit,
    BExpr,
    BIntLit,
    BIf,
    BoogieProgram,
    BRealLit,
    BType,
    BUnOp,
    BUnOpKind,
    BVar,
    CondB,
    Exists,
    Forall,
    FuncApp,
    Havoc,
    MapSelect,
    MapStore,
    Procedure,
    SimpleCmd,
    subst_type,
    TVar,
    TCon,
    MapType,
)
from .cursor import Cursor
from .interp import Interpretation, InterpretationError
from .state import BoogieState
from .values import (
    BValue,
    BVBool,
    BVInt,
    BVReal,
    FrozenMap,
    UValue,
    as_b_bool,
    as_b_int,
    as_b_real,
)


# ---------------------------------------------------------------------------
# Outcomes
# ---------------------------------------------------------------------------


@dataclass(frozen=True)
class BFailure:
    """Outcome F: a failed assert, optionally carrying diagnostics."""

    reason: str = ""

    def __eq__(self, other: object) -> bool:
        return isinstance(other, BFailure)

    def __hash__(self) -> int:
        return hash("BFailure")


@dataclass(frozen=True)
class BMagic:
    """Outcome M: execution stopped at a violated assume."""


@dataclass(frozen=True)
class BNormal:
    """Outcome N(σ_b)."""

    state: BoogieState


BOutcome = Union[BFailure, BMagic, BNormal]


@dataclass
class BoogieContext:
    """The Boogie context Γ_b: declarations plus an interpretation.

    ``havoc_hook``, when set, replaces the carrier sample as the candidate
    set for ``havoc`` commands; it receives ``(name, type, state, ctx)`` and
    returns the candidates.  The differential-testing oracle uses it to
    offer *state-derived* heap candidates (all idOnPositive-compatible
    variants of the current heap), which keeps exhaustive path enumeration
    tractable while covering every havoc target the Viper semantics can
    produce.
    """

    program: BoogieProgram
    interp: Interpretation
    var_types: Dict[str, BType]
    havoc_hook: Optional[object] = None

    def with_locals(self, local_types: Dict[str, BType]) -> "BoogieContext":
        merged = dict(self.var_types)
        merged.update(local_types)
        return BoogieContext(self.program, self.interp, merged, self.havoc_hook)

    def havoc_candidates(self, name: str, state: "BoogieState"):
        typ = self.var_types[name]
        if self.havoc_hook is not None:
            candidates = self.havoc_hook(name, typ, state, self)
            if candidates is not None:
                return tuple(candidates)
        return tuple(self.interp.carrier_of(typ))


# ---------------------------------------------------------------------------
# Expression evaluation (total)
# ---------------------------------------------------------------------------


def eval_bexpr(expr: BExpr, state: BoogieState, ctx: BoogieContext) -> BValue:
    """Evaluate a Boogie expression; total on well-typed input."""
    if isinstance(expr, BVar):
        return state.lookup(expr.name)
    if isinstance(expr, BIntLit):
        return BVInt(expr.value)
    if isinstance(expr, BRealLit):
        return BVReal(expr.value)
    if isinstance(expr, BBoolLit):
        return BVBool(expr.value)
    if isinstance(expr, BUnOp):
        operand = eval_bexpr(expr.operand, state, ctx)
        if expr.op is BUnOpKind.NOT:
            return BVBool(not as_b_bool(operand))
        if isinstance(operand, BVInt):
            return BVInt(-operand.value)
        return BVReal(-as_b_real(operand))
    if isinstance(expr, BBinOp):
        return _eval_binop(expr, state, ctx)
    if isinstance(expr, CondB):
        cond = eval_bexpr(expr.cond, state, ctx)
        branch = expr.then if as_b_bool(cond) else expr.otherwise
        return eval_bexpr(branch, state, ctx)
    if isinstance(expr, FuncApp):
        args = tuple(eval_bexpr(a, state, ctx) for a in expr.args)
        return ctx.interp.apply(expr.name, expr.type_args, args)
    if isinstance(expr, MapSelect):
        map_value = eval_bexpr(expr.map, state, ctx)
        key = tuple(eval_bexpr(i, state, ctx) for i in expr.indices)
        payload = _map_payload(map_value)
        if key not in payload:
            raise InterpretationError(
                "select on unstored key of a sugar-level polymorphic map; "
                "run the polymap desugaring pass first"
            )
        return payload.get(key)
    if isinstance(expr, MapStore):
        map_value = eval_bexpr(expr.map, state, ctx)
        key = tuple(eval_bexpr(i, state, ctx) for i in expr.indices)
        value = eval_bexpr(expr.value, state, ctx)
        payload = _map_payload(map_value)
        return UValue("__map__", payload.set(key, value))
    if isinstance(expr, Forall):
        return BVBool(_eval_quant(expr, state, ctx, want_all=True))
    if isinstance(expr, Exists):
        return BVBool(_eval_quant(expr, state, ctx, want_all=False))
    raise TypeError(f"unknown Boogie expression {expr!r}")


def _map_payload(value: BValue) -> FrozenMap:
    if isinstance(value, UValue) and isinstance(value.payload, FrozenMap):
        return value.payload
    raise TypeError(f"expected a map value, got {value!r}")


def _eval_binop(expr: BBinOp, state: BoogieState, ctx: BoogieContext) -> BValue:
    op = expr.op
    # Boogie's logical operators are short-circuit in evaluation order, which
    # matters only for efficiency here — evaluation is total.
    if op is BBinOpKind.AND:
        left = as_b_bool(eval_bexpr(expr.left, state, ctx))
        return BVBool(left and as_b_bool(eval_bexpr(expr.right, state, ctx)))
    if op is BBinOpKind.OR:
        left = as_b_bool(eval_bexpr(expr.left, state, ctx))
        return BVBool(left or as_b_bool(eval_bexpr(expr.right, state, ctx)))
    if op is BBinOpKind.IMPLIES:
        left = as_b_bool(eval_bexpr(expr.left, state, ctx))
        return BVBool((not left) or as_b_bool(eval_bexpr(expr.right, state, ctx)))
    if op is BBinOpKind.IFF:
        left = as_b_bool(eval_bexpr(expr.left, state, ctx))
        return BVBool(left == as_b_bool(eval_bexpr(expr.right, state, ctx)))
    left = eval_bexpr(expr.left, state, ctx)
    right = eval_bexpr(expr.right, state, ctx)
    if op is BBinOpKind.EQ:
        return BVBool(_b_equal(left, right))
    if op is BBinOpKind.NE:
        return BVBool(not _b_equal(left, right))
    if op in (BBinOpKind.LT, BBinOpKind.LE, BBinOpKind.GT, BBinOpKind.GE):
        lnum, rnum = _b_num(left), _b_num(right)
        if op is BBinOpKind.LT:
            return BVBool(lnum < rnum)
        if op is BBinOpKind.LE:
            return BVBool(lnum <= rnum)
        if op is BBinOpKind.GT:
            return BVBool(lnum > rnum)
        return BVBool(lnum >= rnum)
    if op is BBinOpKind.DIV:
        divisor = as_b_int(right)
        dividend = as_b_int(left)
        if divisor == 0:
            return BVInt(0)  # SMT-style total division: unspecified, fixed
        return BVInt(_trunc_div(dividend, divisor))
    if op is BBinOpKind.MOD:
        divisor = as_b_int(right)
        dividend = as_b_int(left)
        if divisor == 0:
            return BVInt(dividend)
        return BVInt(dividend - divisor * _trunc_div(dividend, divisor))
    if op is BBinOpKind.REAL_DIV:
        denom = as_b_real(right)
        if denom == 0:
            return BVReal(Fraction(0))
        return BVReal(as_b_real(left) / denom)
    if isinstance(left, BVInt) and isinstance(right, BVInt):
        if op is BBinOpKind.ADD:
            return BVInt(left.value + right.value)
        if op is BBinOpKind.SUB:
            return BVInt(left.value - right.value)
        if op is BBinOpKind.MUL:
            return BVInt(left.value * right.value)
    lnum, rnum = _b_num(left), _b_num(right)
    if op is BBinOpKind.ADD:
        return BVReal(lnum + rnum)
    if op is BBinOpKind.SUB:
        return BVReal(lnum - rnum)
    if op is BBinOpKind.MUL:
        return BVReal(lnum * rnum)
    raise TypeError(f"unknown operator {op}")


def _b_equal(left: BValue, right: BValue) -> bool:
    both_numeric = isinstance(left, (BVInt, BVReal)) and isinstance(right, (BVInt, BVReal))
    if both_numeric:
        return _b_num(left) == _b_num(right)
    return left == right


def _b_num(value: BValue) -> Fraction:
    if isinstance(value, BVInt):
        return Fraction(value.value)
    if isinstance(value, BVReal):
        return value.value
    raise TypeError(f"expected a numeric Boogie value, got {value!r}")


def _trunc_div(a: int, b: int) -> int:
    q = abs(a) // abs(b)
    return q if (a >= 0) == (b >= 0) else -q


def _eval_quant(
    expr: Union[Forall, Exists], state: BoogieState, ctx: BoogieContext, want_all: bool
) -> bool:
    """Evaluate a quantifier over sampled carriers (and the type universe)."""
    type_assignments = _type_assignments(expr.type_vars, ctx)
    for type_map in type_assignments:
        bound = [
            (name, subst_type(typ, type_map)) for name, typ in expr.bound
        ]
        body = substitute_type_args(expr.body, type_map)
        if not _eval_value_quant(bound, body, state, ctx, want_all):
            if want_all:
                return False
        else:
            if not want_all:
                return True
    return want_all


def _type_assignments(type_vars: Tuple[str, ...], ctx: BoogieContext):
    if not type_vars:
        return [{}]
    assignments = [{}]
    for tvar in type_vars:
        assignments = [
            {**assignment, tvar: typ}
            for assignment in assignments
            for typ in ctx.interp.type_universe
        ]
    return assignments


def _eval_value_quant(bound, body, state, ctx, want_all: bool) -> bool:
    def recurse(index: int, current: BoogieState) -> bool:
        if index == len(bound):
            return as_b_bool(eval_bexpr(body, current, ctx))
        name, typ = bound[index]
        for value in ctx.interp.carrier_of(typ):
            result = recurse(index + 1, current.set(name, value))
            if want_all and not result:
                return False
            if not want_all and result:
                return True
        return want_all

    return recurse(0, state)


def substitute_type_args(expr: BExpr, type_map: dict) -> BExpr:
    """Substitute type variables occurring in ``type_args`` positions."""
    if not type_map:
        return expr
    if isinstance(expr, FuncApp):
        return FuncApp(
            expr.name,
            tuple(subst_type(t, type_map) for t in expr.type_args),
            tuple(substitute_type_args(a, type_map) for a in expr.args),
        )
    if isinstance(expr, BBinOp):
        return BBinOp(
            expr.op,
            substitute_type_args(expr.left, type_map),
            substitute_type_args(expr.right, type_map),
        )
    if isinstance(expr, BUnOp):
        return BUnOp(expr.op, substitute_type_args(expr.operand, type_map))
    if isinstance(expr, CondB):
        return CondB(
            substitute_type_args(expr.cond, type_map),
            substitute_type_args(expr.then, type_map),
            substitute_type_args(expr.otherwise, type_map),
        )
    if isinstance(expr, MapSelect):
        return MapSelect(
            substitute_type_args(expr.map, type_map),
            tuple(subst_type(t, type_map) for t in expr.type_args),
            tuple(substitute_type_args(i, type_map) for i in expr.indices),
        )
    if isinstance(expr, MapStore):
        return MapStore(
            substitute_type_args(expr.map, type_map),
            tuple(subst_type(t, type_map) for t in expr.type_args),
            tuple(substitute_type_args(i, type_map) for i in expr.indices),
            substitute_type_args(expr.value, type_map),
        )
    if isinstance(expr, (Forall, Exists)):
        inner = {k: v for k, v in type_map.items() if k not in expr.type_vars}
        ctor = Forall if isinstance(expr, Forall) else Exists
        return ctor(
            expr.type_vars,
            tuple((name, subst_type(typ, inner)) for name, typ in expr.bound),
            substitute_type_args(expr.body, inner),
        )
    return expr


# ---------------------------------------------------------------------------
# Small-step execution
# ---------------------------------------------------------------------------


@dataclass(frozen=True)
class StepNormal:
    """A single successful step to a new program point and state."""

    cursor: Cursor
    state: BoogieState


StepResult = Union[StepNormal, BFailure, BMagic]


def step(
    cursor: Cursor, state: BoogieState, ctx: BoogieContext, oracle: ChoiceOracle
) -> StepResult:
    """One small step from a (non-final) program point."""
    if cursor.is_done:
        raise ValueError("cannot step a finished execution")
    if cursor.cmds:
        cmd = cursor.current_cmd
        result = exec_simple_cmd(cmd, state, ctx, oracle)
        if isinstance(result, (BFailure, BMagic)):
            return result
        return StepNormal(cursor.after_cmd(), result)
    assert cursor.ifopt is not None
    branch_if = cursor.ifopt
    if branch_if.cond is None:
        take_then = oracle.choose((True, False), "if(*)")
    else:
        take_then = as_b_bool(eval_bexpr(branch_if.cond, state, ctx))
    return StepNormal(cursor.enter_branch(take_then), state)


def exec_simple_cmd(
    cmd: SimpleCmd, state: BoogieState, ctx: BoogieContext, oracle: ChoiceOracle
) -> Union[BoogieState, BFailure, BMagic]:
    """Execute one simple command (assume / assert / assign / havoc)."""
    if isinstance(cmd, Assume):
        if as_b_bool(eval_bexpr(cmd.expr, state, ctx)):
            return state
        return BMagic()
    if isinstance(cmd, BAssert):
        if as_b_bool(eval_bexpr(cmd.expr, state, ctx)):
            return state
        return BFailure(f"assert failed: {cmd.expr!r}")
    if isinstance(cmd, Assign):
        return state.set(cmd.target, eval_bexpr(cmd.rhs, state, ctx))
    if isinstance(cmd, Havoc):
        candidates = ctx.havoc_candidates(cmd.target, state)
        value = oracle.choose(candidates, f"havoc {cmd.target}")
        return state.set(cmd.target, value)
    raise TypeError(f"unknown simple command {cmd!r}")


def run_from(
    cursor: Cursor,
    state: BoogieState,
    ctx: BoogieContext,
    oracle: Optional[ChoiceOracle] = None,
    max_steps: int = 1_000_000,
) -> BOutcome:
    """Run to completion from a program point (→*_b in the paper)."""
    if oracle is None:
        oracle = DefaultOracle()
    steps = 0
    while not cursor.is_done:
        result = step(cursor, state, ctx, oracle)
        if isinstance(result, (BFailure, BMagic)):
            return result
        cursor, state = result.cursor, result.state
        steps += 1
        if steps > max_steps:
            raise RuntimeError("Boogie execution exceeded the step budget")
    return BNormal(state)


def procedure_context(
    program: BoogieProgram, proc: Procedure, interp: Interpretation
) -> BoogieContext:
    """Γ_b for a procedure: globals, constants, and the procedure's locals."""
    var_types = program.global_types()
    var_types.update(dict(proc.locals))
    return BoogieContext(program, interp, var_types)


def run_procedure(
    program: BoogieProgram,
    proc: Procedure,
    interp: Interpretation,
    init_state: BoogieState,
    oracle: Optional[ChoiceOracle] = None,
) -> BOutcome:
    """Run a procedure body from its initial program point."""
    ctx = procedure_context(program, proc, interp)
    return run_from(Cursor.from_stmt(proc.body), init_state, ctx, oracle)
