"""Program points for the Boogie small-step semantics (Sec. 2.2).

Trust: **trusted** — program points are the gamma's of the simulation
judgements; normalisation bugs break proof chaining.

A *program point* is a pair of the currently active statement block and a
continuation; a continuation is either empty or a statement followed by a
continuation.  :class:`Cursor` realises this directly and is shared between
the executable semantics and the certification kernel — the γ's of the
simulation judgements are exactly cursors.

Cursors are *normalised*: a cursor never sits at the end of a block with an
empty if-slot — it is advanced into the next block or the continuation.
Normalisation gives structural equality the meaning "same program point",
which the proof checker relies on when chaining simulation sub-proofs.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional, Tuple

from .ast import BIf, BStmt, SimpleCmd, StmtBlock


@dataclass(frozen=True)
class Cursor:
    """A normalised Boogie program point."""

    cmds: Tuple[SimpleCmd, ...]
    ifopt: Optional[BIf]
    rest: Tuple[StmtBlock, ...]
    cont: Optional["Cursor"]

    # -- construction -------------------------------------------------------

    @staticmethod
    def make(
        cmds: Tuple[SimpleCmd, ...],
        ifopt: Optional[BIf],
        rest: Tuple[StmtBlock, ...],
        cont: Optional["Cursor"],
    ) -> "Cursor":
        """Build a cursor, normalising empty positions away."""
        while not cmds and ifopt is None:
            if rest:
                block = rest[0]
                cmds, ifopt, rest = block.cmds, block.ifopt, rest[1:]
            elif cont is not None:
                cmds, ifopt, rest, cont = cont.cmds, cont.ifopt, cont.rest, cont.cont
            else:
                break
        return Cursor(cmds, ifopt, rest, cont)

    @staticmethod
    def from_stmt(stmt: BStmt, cont: Optional["Cursor"] = None) -> "Cursor":
        """The initial program point of a statement (init_b in Fig. 9)."""
        return Cursor.make((), None, tuple(stmt), cont)

    # -- observation ---------------------------------------------------------

    @property
    def is_done(self) -> bool:
        return not self.cmds and self.ifopt is None and not self.rest and self.cont is None

    @property
    def current_cmd(self) -> SimpleCmd:
        if not self.cmds:
            raise ValueError("cursor is not at a simple command")
        return self.cmds[0]

    @property
    def at_if(self) -> bool:
        return not self.cmds and self.ifopt is not None

    # -- movement -------------------------------------------------------------

    def after_cmd(self) -> "Cursor":
        """The point just after the current simple command."""
        if not self.cmds:
            raise ValueError("cursor is not at a simple command")
        return Cursor.make(self.cmds[1:], self.ifopt, self.rest, self.cont)

    def after_if(self) -> "Cursor":
        """The join point after the current if-statement."""
        if self.ifopt is None or self.cmds:
            raise ValueError("cursor is not at an if-statement")
        return Cursor.make((), None, self.rest, self.cont)

    def enter_branch(self, then_branch: bool) -> "Cursor":
        """The point at the start of a branch, continuing at the join."""
        if self.ifopt is None or self.cmds:
            raise ValueError("cursor is not at an if-statement")
        branch = self.ifopt.then if then_branch else self.ifopt.otherwise
        return Cursor.from_stmt(branch, self.after_if())

    def skip_cmds(self, count: int) -> "Cursor":
        """Advance past ``count`` simple commands."""
        cursor = self
        for _ in range(count):
            cursor = cursor.after_cmd()
        return cursor

    # -- rendering ---------------------------------------------------------------

    def peek(self, count: int = 3) -> str:
        """A short human-readable description of the upcoming commands."""
        from .pretty import pretty_cmd  # tcb: allow[TB001] message rendering only: peek() feeds error text, never a judgement

        parts = [pretty_cmd(cmd) for cmd in self.cmds[:count]]
        if self.at_if:
            parts.append("if(...)")
        if len(self.cmds) > count:
            parts.append("...")
        if self.is_done:
            return "<end>"
        return "; ".join(parts) if parts else "<block boundary>"
