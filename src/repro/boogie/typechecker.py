"""Type checker for the Boogie subset.

Trust: **trusted** — background validity (Sec. 4.4) starts from this
typechecker's acceptance.

Checks declarations and procedure bodies: well-formed types (declared type
constructors with correct arities), well-typed expressions (polymorphic
function applications receive explicit type arguments, as in our AST),
closed axioms over globals/constants, and command typing.

The checker also enforces the *syntactic guard* Boogie places on axioms:
axioms may not mention global variables (Sec. 1 lists this as one of the
syntactic checks Boogie uses where Viper uses semantic ones).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, Optional, Tuple

from .ast import (
    Assign,
    Assume,
    BAssert,
    BBinOp,
    BBinOpKind,
    BBool,
    BBoolLit,
    BExpr,
    BInt,
    BIntLit,
    BIf,
    BoogieProgram,
    BOOL,
    BReal,
    BRealLit,
    BStmt,
    BType,
    BUnOp,
    BUnOpKind,
    BVar,
    CondB,
    Exists,
    Forall,
    FuncApp,
    Havoc,
    INT,
    MapSelect,
    MapStore,
    MapType,
    Procedure,
    REAL,
    SimpleCmd,
    subst_type,
    TCon,
    TVar,
    type_free_vars,
)


class BoogieTypeError(Exception):
    """Raised when a Boogie program fails type checking."""


@dataclass
class BoogieTypeInfo:
    """Typing results for a Boogie program."""

    program: BoogieProgram
    #: Types of globals and constants.
    global_types: Dict[str, BType]
    #: Per-procedure variable typing (globals + consts + locals).
    proc_var_types: Dict[str, Dict[str, BType]]


class BoogieTypeChecker:
    def __init__(self, program: BoogieProgram):
        self._program = program
        self._type_arities: Dict[str, int] = {}
        self._functions = {f.name: f for f in program.functions}
        self._globals: Dict[str, BType] = {}
        self._global_var_names = frozenset(g.name for g in program.globals)

    def check_program(self) -> BoogieTypeInfo:
        for tdecl in self._program.type_decls:
            if tdecl.name in self._type_arities:
                raise BoogieTypeError(f"duplicate type constructor {tdecl.name!r}")
            self._type_arities[tdecl.name] = tdecl.arity
        for func in self._program.functions:
            bound = frozenset(func.type_params)
            for typ in func.arg_types + (func.result,):
                self._check_type(typ, bound)
        for const in self._program.consts:
            self._check_type(const.typ, frozenset())
            self._declare_global(const.name, const.typ)
        for gvar in self._program.globals:
            self._check_type(gvar.typ, frozenset())
            self._declare_global(gvar.name, gvar.typ)
        for axiom in self._program.axioms:
            # Boogie's syntactic guard: axioms must not read global variables
            # (checked first so the diagnostic names the offending global).
            self._check_no_globals(axiom.expr)
            env = {
                name: typ
                for name, typ in self._globals.items()
                if name not in self._global_var_names
            }
            axiom_type = self._check_expr(axiom.expr, env, frozenset())
            if not isinstance(axiom_type, BBool):
                raise BoogieTypeError("axiom must be boolean")
        proc_var_types: Dict[str, Dict[str, BType]] = {}
        seen = set()
        for proc in self._program.procedures:
            if proc.name in seen:
                raise BoogieTypeError(f"duplicate procedure {proc.name!r}")
            seen.add(proc.name)
            proc_var_types[proc.name] = self._check_procedure(proc)
        return BoogieTypeInfo(self._program, dict(self._globals), proc_var_types)

    # -- declarations ---------------------------------------------------------

    def _declare_global(self, name: str, typ: BType) -> None:
        if name in self._globals:
            raise BoogieTypeError(f"duplicate global declaration {name!r}")
        self._globals[name] = typ

    def _check_type(self, typ: BType, bound_tvars: frozenset) -> None:
        if isinstance(typ, (BInt, BReal, BBool)):
            return
        if isinstance(typ, TVar):
            if typ.name not in bound_tvars:
                raise BoogieTypeError(f"unbound type variable {typ.name!r}")
            return
        if isinstance(typ, TCon):
            if typ.name not in self._type_arities:
                raise BoogieTypeError(f"undeclared type constructor {typ.name!r}")
            if len(typ.args) != self._type_arities[typ.name]:
                raise BoogieTypeError(
                    f"type constructor {typ.name!r} expects "
                    f"{self._type_arities[typ.name]} arguments, got {len(typ.args)}"
                )
            for arg in typ.args:
                self._check_type(arg, bound_tvars)
            return
        if isinstance(typ, MapType):
            inner = bound_tvars | frozenset(typ.type_params)
            for arg in typ.arg_types:
                self._check_type(arg, inner)
            self._check_type(typ.result, inner)
            return
        raise BoogieTypeError(f"unknown type {typ!r}")

    def _check_no_globals(self, expr: BExpr) -> None:
        from .ast import expr_free_vars

        bad = expr_free_vars(expr) & self._global_var_names
        if bad:
            raise BoogieTypeError(
                f"axiom mentions global variable(s) {sorted(bad)}; Boogie "
                f"axioms may only mention constants and functions"
            )

    # -- procedures ---------------------------------------------------------

    def _check_procedure(self, proc: Procedure) -> Dict[str, BType]:
        env = dict(self._globals)
        for name, typ in proc.locals:
            self._check_type(typ, frozenset())
            if name in env:
                raise BoogieTypeError(
                    f"procedure {proc.name!r}: local {name!r} shadows a declaration"
                )
            env[name] = typ
        self._check_stmt(proc.body, env)
        return env

    def _check_stmt(self, stmt: BStmt, env: Dict[str, BType]) -> None:
        for block in stmt:
            for cmd in block.cmds:
                self._check_cmd(cmd, env)
            if block.ifopt is not None:
                if block.ifopt.cond is not None:
                    cond_type = self._check_expr(block.ifopt.cond, env, frozenset())
                    if not isinstance(cond_type, BBool):
                        raise BoogieTypeError("if condition must be bool")
                self._check_stmt(block.ifopt.then, env)
                self._check_stmt(block.ifopt.otherwise, env)

    def _check_cmd(self, cmd: SimpleCmd, env: Dict[str, BType]) -> None:
        if isinstance(cmd, (Assume, BAssert)):
            typ = self._check_expr(cmd.expr, env, frozenset())
            if not isinstance(typ, BBool):
                raise BoogieTypeError(f"{type(cmd).__name__.lower()} expects bool")
            return
        if isinstance(cmd, Assign):
            if cmd.target not in env:
                raise BoogieTypeError(f"assignment to undeclared {cmd.target!r}")
            rhs_type = self._check_expr(cmd.rhs, env, frozenset())
            if not _types_compatible(env[cmd.target], rhs_type):
                raise BoogieTypeError(
                    f"cannot assign {rhs_type} to {cmd.target!r}: {env[cmd.target]}"
                )
            return
        if isinstance(cmd, Havoc):
            if cmd.target not in env:
                raise BoogieTypeError(f"havoc of undeclared {cmd.target!r}")
            return
        raise BoogieTypeError(f"unknown command {cmd!r}")

    # -- expressions ---------------------------------------------------------

    def _check_expr(self, expr: BExpr, env: Dict[str, BType], tvars: frozenset) -> BType:
        if isinstance(expr, BVar):
            if expr.name not in env:
                raise BoogieTypeError(f"undeclared variable {expr.name!r}")
            return env[expr.name]
        if isinstance(expr, BIntLit):
            return INT
        if isinstance(expr, BRealLit):
            return REAL
        if isinstance(expr, BBoolLit):
            return BOOL
        if isinstance(expr, BUnOp):
            operand = self._check_expr(expr.operand, env, tvars)
            if expr.op is BUnOpKind.NOT:
                if not isinstance(operand, BBool):
                    raise BoogieTypeError("'!' expects bool")
                return BOOL
            if not isinstance(operand, (BInt, BReal)):
                raise BoogieTypeError("unary '-' expects a numeric operand")
            return operand
        if isinstance(expr, BBinOp):
            return self._check_binop(expr, env, tvars)
        if isinstance(expr, CondB):
            cond = self._check_expr(expr.cond, env, tvars)
            if not isinstance(cond, BBool):
                raise BoogieTypeError("conditional guard must be bool")
            then_type = self._check_expr(expr.then, env, tvars)
            else_type = self._check_expr(expr.otherwise, env, tvars)
            if not _types_compatible(then_type, else_type):
                raise BoogieTypeError("conditional branches disagree in type")
            return then_type
        if isinstance(expr, FuncApp):
            return self._check_funcapp(expr, env, tvars)
        if isinstance(expr, MapSelect):
            return self._check_select(expr, env, tvars)
        if isinstance(expr, MapStore):
            map_type = self._check_expr(expr.map, env, tvars)
            self._check_select(
                MapSelect(expr.map, expr.type_args, expr.indices), env, tvars
            )
            return map_type
        if isinstance(expr, (Forall, Exists)):
            inner_tvars = tvars | frozenset(expr.type_vars)
            inner_env = dict(env)
            for name, typ in expr.bound:
                self._check_type(typ, inner_tvars)
                inner_env[name] = typ
            body_type = self._check_expr(expr.body, inner_env, inner_tvars)
            if not isinstance(body_type, BBool):
                raise BoogieTypeError("quantifier body must be bool")
            return BOOL
        raise BoogieTypeError(f"unknown expression {expr!r}")

    def _check_binop(self, expr: BBinOp, env: Dict[str, BType], tvars: frozenset) -> BType:
        left = self._check_expr(expr.left, env, tvars)
        right = self._check_expr(expr.right, env, tvars)
        op = expr.op
        if op in (BBinOpKind.AND, BBinOpKind.OR, BBinOpKind.IMPLIES, BBinOpKind.IFF):
            if not (isinstance(left, BBool) and isinstance(right, BBool)):
                raise BoogieTypeError(f"{op} expects bool operands")
            return BOOL
        if op in (BBinOpKind.EQ, BBinOpKind.NE):
            if not _types_compatible(left, right):
                raise BoogieTypeError(f"cannot compare {left} with {right}")
            return BOOL
        if op in (BBinOpKind.LT, BBinOpKind.LE, BBinOpKind.GT, BBinOpKind.GE):
            if not (
                isinstance(left, (BInt, BReal)) and isinstance(right, (BInt, BReal))
            ):
                raise BoogieTypeError(f"{op} expects numeric operands")
            return BOOL
        if op in (BBinOpKind.DIV, BBinOpKind.MOD):
            if not (isinstance(left, BInt) and isinstance(right, BInt)):
                raise BoogieTypeError(f"{op} expects int operands")
            return INT
        if op is BBinOpKind.REAL_DIV:
            if not (
                isinstance(left, (BInt, BReal)) and isinstance(right, (BInt, BReal))
            ):
                raise BoogieTypeError("'/' expects numeric operands")
            return REAL
        # ADD / SUB / MUL
        if isinstance(left, BInt) and isinstance(right, BInt):
            return INT
        if isinstance(left, (BInt, BReal)) and isinstance(right, (BInt, BReal)):
            return REAL
        raise BoogieTypeError(f"{op} got non-numeric operands {left}, {right}")

    def _check_funcapp(self, expr: FuncApp, env: Dict[str, BType], tvars: frozenset) -> BType:
        if expr.name not in self._functions:
            raise BoogieTypeError(f"application of undeclared function {expr.name!r}")
        func = self._functions[expr.name]
        if len(expr.type_args) != len(func.type_params):
            raise BoogieTypeError(
                f"function {expr.name!r} expects {len(func.type_params)} type "
                f"arguments, got {len(expr.type_args)}"
            )
        for targ in expr.type_args:
            self._check_type(targ, tvars)
        mapping = dict(zip(func.type_params, expr.type_args))
        expected = [subst_type(t, mapping) for t in func.arg_types]
        if len(expr.args) != len(expected):
            raise BoogieTypeError(
                f"function {expr.name!r} expects {len(expected)} arguments, "
                f"got {len(expr.args)}"
            )
        for arg, want in zip(expr.args, expected):
            got = self._check_expr(arg, env, tvars)
            if not _types_compatible(want, got):
                raise BoogieTypeError(
                    f"function {expr.name!r}: argument has type {got}, expected {want}"
                )
        return subst_type(func.result, mapping)

    def _check_select(self, expr: MapSelect, env: Dict[str, BType], tvars: frozenset) -> BType:
        map_type = self._check_expr(expr.map, env, tvars)
        if not isinstance(map_type, MapType):
            raise BoogieTypeError(f"select on non-map type {map_type}")
        if len(expr.type_args) != len(map_type.type_params):
            raise BoogieTypeError(
                f"map select expects {len(map_type.type_params)} type arguments"
            )
        mapping = dict(zip(map_type.type_params, expr.type_args))
        expected = [subst_type(t, mapping) for t in map_type.arg_types]
        if len(expr.indices) != len(expected):
            raise BoogieTypeError("wrong number of map indices")
        for index, want in zip(expr.indices, expected):
            got = self._check_expr(index, env, tvars)
            if not _types_compatible(want, got):
                raise BoogieTypeError(f"map index has type {got}, expected {want}")
        return subst_type(map_type.result, mapping)


def _types_compatible(left: BType, right: BType) -> bool:
    """Structural equality, with int accepted where real is expected.

    The Viper encoding freely mixes integer literals into permission (real)
    positions; real Boogie inserts explicit coercions, which we model as a
    subtyping-style relaxation here (the semantics coerces on evaluation).
    """
    if left == right:
        return True
    if isinstance(left, BReal) and isinstance(right, (BInt, BReal)):
        return True
    if isinstance(right, BReal) and isinstance(left, (BInt, BReal)):
        return True
    return False


def check_boogie_program(program: BoogieProgram) -> BoogieTypeInfo:
    """Type-check a Boogie program, returning the collected typing info."""
    return BoogieTypeChecker(program).check_program()
