"""The Boogie state: a mapping from variables to values (Sec. 2.2).

Trust: **trusted** — the state model the target semantics and the
simulation relations are stated over.
"""

from __future__ import annotations

from typing import Dict, Iterator, Mapping

from .values import BValue


class BoogieState:
    """An immutable Boogie variable store."""

    __slots__ = ("_store",)

    def __init__(self, store: Mapping[str, BValue] = ()):
        self._store: Dict[str, BValue] = dict(store)

    def lookup(self, name: str) -> BValue:
        try:
            return self._store[name]
        except KeyError:
            raise KeyError(f"Boogie variable {name!r} not in state") from None

    def __contains__(self, name: str) -> bool:
        return name in self._store

    def set(self, name: str, value: BValue) -> "BoogieState":
        store = dict(self._store)
        store[name] = value
        return BoogieState(store)

    def set_many(self, updates: Mapping[str, BValue]) -> "BoogieState":
        store = dict(self._store)
        store.update(updates)
        return BoogieState(store)

    def as_dict(self) -> Dict[str, BValue]:
        return dict(self._store)

    def names(self) -> Iterator[str]:
        return iter(self._store)

    def __eq__(self, other: object) -> bool:
        return isinstance(other, BoogieState) and self._store == other._store

    def __hash__(self) -> int:
        return hash(tuple(sorted(self._store.items(), key=lambda kv: kv[0])))

    def __repr__(self) -> str:
        inner = ", ".join(f"{k}={v!r}" for k, v in sorted(self._store.items()))
        return f"BoogieState({inner})"
