"""Parser for Boogie concrete syntax.

Trust: **trusted** — the kernel re-parses the Boogie program from text;
this parser decides what was actually emitted.

Parses the subset the pretty-printer emits (which is also the subset the
Viper-to-Boogie translation produces), including polymorphic function
declarations and applications, type quantifiers, map types with
select/store sugar, and nondeterministic if-statements.

The certificate checker deliberately does *not* go through this parser —
it consumes the Boogie AST directly, matching the paper's choice to avoid
trusting the Boogie parser (footnote 2).  The parser exists for the
substrate's own completeness: loading hand-written Boogie tests and
round-tripping the printer.
"""

from __future__ import annotations

from fractions import Fraction
from typing import List, Optional, Set, Tuple

from .ast import (
    Assign,
    Assume,
    AxiomDecl,
    BAssert,
    BBinOp,
    BBinOpKind,
    BBoolLit,
    BExpr,
    BIf,
    BIntLit,
    BoogieProgram,
    BOOL,
    BRealLit,
    BStmt,
    BType,
    BUnOp,
    BUnOpKind,
    BVar,
    CondB,
    ConstDecl,
    Exists,
    Forall,
    FuncApp,
    FuncDecl,
    GlobalVarDecl,
    Havoc,
    INT,
    MapSelect,
    MapStore,
    MapType,
    Procedure,
    REAL,
    SimpleCmd,
    StmtBlock,
    TCon,
    TVar,
    TypeConDecl,
)
from .lexer import BoogieSyntaxError, BToken, tokenize_boogie


class _BoogieParser:
    def __init__(self, tokens: List[BToken]):
        self._tokens = tokens
        self._pos = 0
        self._tvars: Set[str] = set()

    # -- plumbing ------------------------------------------------------------

    def _peek(self, offset: int = 0) -> BToken:
        return self._tokens[min(self._pos + offset, len(self._tokens) - 1)]

    def _advance(self) -> BToken:
        token = self._tokens[self._pos]
        if token.kind != "eof":
            self._pos += 1
        return token

    def _check(self, kind: str) -> bool:
        return self._peek().kind == kind

    def _accept(self, kind: str) -> Optional[BToken]:
        if self._check(kind):
            return self._advance()
        return None

    def _expect(self, kind: str) -> BToken:
        token = self._peek()
        if token.kind != kind:
            raise BoogieSyntaxError(
                f"expected {kind!r}, found {token.text!r}", token.line, token.column
            )
        return self._advance()

    def _error(self, message: str) -> BoogieSyntaxError:
        token = self._peek()
        return BoogieSyntaxError(message, token.line, token.column)

    # -- program -------------------------------------------------------------

    def parse_program(self) -> BoogieProgram:
        type_decls: List[TypeConDecl] = []
        consts: List[ConstDecl] = []
        globals_: List[GlobalVarDecl] = []
        functions: List[FuncDecl] = []
        axioms: List[AxiomDecl] = []
        procedures: List[Procedure] = []
        while not self._check("eof"):
            if self._accept("type"):
                name = self._expect("ident").text
                arity = 0
                while self._accept("_"):
                    arity += 1
                self._expect(";")
                type_decls.append(TypeConDecl(name, arity))
            elif self._accept("const"):
                unique = bool(self._accept("unique"))
                name = self._expect("ident").text
                self._expect(":")
                typ = self.parse_type()
                self._expect(";")
                consts.append(ConstDecl(name, typ, unique))
            elif self._accept("var"):
                name = self._expect("ident").text
                self._expect(":")
                typ = self.parse_type()
                self._expect(";")
                globals_.append(GlobalVarDecl(name, typ))
            elif self._accept("function"):
                functions.append(self._parse_function())
            elif self._accept("axiom"):
                expr = self.parse_expr()
                self._expect(";")
                axioms.append(AxiomDecl(expr))
            elif self._accept("procedure"):
                procedures.append(self._parse_procedure())
            else:
                raise self._error("expected a top-level declaration")
        return BoogieProgram(
            type_decls=tuple(type_decls),
            consts=tuple(consts),
            globals=tuple(globals_),
            functions=tuple(functions),
            axioms=tuple(axioms),
            procedures=tuple(procedures),
        )

    def _parse_function(self) -> FuncDecl:
        name = self._expect("ident").text
        type_params: Tuple[str, ...] = ()
        if self._accept("<"):
            params = [self._expect("ident").text]
            while self._accept(","):
                params.append(self._expect("ident").text)
            self._expect(">")
            type_params = tuple(params)
        saved = set(self._tvars)
        self._tvars |= set(type_params)
        self._expect("(")
        arg_types: List[BType] = []
        if not self._check(")"):
            arg_types.append(self.parse_type())
            while self._accept(","):
                arg_types.append(self.parse_type())
        self._expect(")")
        self._expect(":")
        result = self.parse_type()
        self._expect(";")
        self._tvars = saved
        return FuncDecl(name, type_params, tuple(arg_types), result)

    def _parse_procedure(self) -> Procedure:
        name = self._expect("ident").text
        self._expect("(")
        self._expect(")")
        self._expect("{")
        locals_: List[Tuple[str, BType]] = []
        while self._check("var"):
            self._advance()
            var_name = self._expect("ident").text
            self._expect(":")
            locals_.append((var_name, self.parse_type()))
            self._expect(";")
        body = self._parse_stmt_until("}")
        self._expect("}")
        return Procedure(name, tuple(locals_), body)

    # -- types ------------------------------------------------------------------

    def parse_type(self) -> BType:
        if self._accept("int"):
            return INT
        if self._accept("real"):
            return REAL
        if self._accept("bool"):
            return BOOL
        if self._check("ident"):
            name = self._advance().text
            if name in self._tvars:
                return TVar(name)
            return TCon(name)
        if self._check("(") and self._peek(1).kind == "ident":
            # Applied type constructor: (Name T1 T2 ...)
            self._advance()
            name = self._expect("ident").text
            args: List[BType] = []
            while not self._check(")"):
                args.append(self.parse_type())
            self._expect(")")
            return TCon(name, tuple(args))
        if self._check("<") or self._check("["):
            return self._parse_map_type()
        raise self._error("expected a type")

    def _parse_map_type(self) -> BType:
        type_params: Tuple[str, ...] = ()
        if self._accept("<"):
            params = [self._expect("ident").text]
            while self._accept(","):
                params.append(self._expect("ident").text)
            self._expect(">")
            type_params = tuple(params)
        saved = set(self._tvars)
        self._tvars |= set(type_params)
        self._expect("[")
        arg_types = [self.parse_type()]
        while self._accept(","):
            arg_types.append(self.parse_type())
        self._expect("]")
        result = self.parse_type()
        self._tvars = saved
        return MapType(type_params, tuple(arg_types), result)

    # -- statements ------------------------------------------------------------

    def _parse_stmt_until(self, terminator: str) -> BStmt:
        blocks: List[StmtBlock] = []
        cmds: List[SimpleCmd] = []
        while not self._check(terminator):
            if self._check("if"):
                self._advance()
                self._expect("(")
                cond: Optional[BExpr]
                if self._accept("*"):
                    cond = None
                else:
                    cond = self.parse_expr()
                self._expect(")")
                self._expect("{")
                then = self._parse_stmt_until("}")
                self._expect("}")
                otherwise: BStmt = ()
                if self._accept("else"):
                    self._expect("{")
                    otherwise = self._parse_stmt_until("}")
                    self._expect("}")
                blocks.append(StmtBlock(tuple(cmds), BIf(cond, then, otherwise)))
                cmds = []
                continue
            cmds.append(self._parse_cmd())
        if cmds or not blocks:
            blocks.append(StmtBlock(tuple(cmds), None))
        return tuple(blocks)

    def _parse_cmd(self) -> SimpleCmd:
        if self._accept("assume"):
            expr = self.parse_expr()
            self._expect(";")
            return Assume(expr)
        if self._accept("assert"):
            expr = self.parse_expr()
            self._expect(";")
            return BAssert(expr)
        if self._accept("havoc"):
            name = self._expect("ident").text
            self._expect(";")
            return Havoc(name)
        name = self._expect("ident").text
        self._expect(":=")
        expr = self.parse_expr()
        self._expect(";")
        return Assign(name, expr)

    # -- expressions ----------------------------------------------------------

    def parse_expr(self) -> BExpr:
        return self._parse_iff()

    def _parse_iff(self) -> BExpr:
        left = self._parse_implies()
        while self._accept("<==>"):
            right = self._parse_implies()
            left = BBinOp(BBinOpKind.IFF, left, right)
        return left

    def _parse_implies(self) -> BExpr:
        left = self._parse_or()
        if self._accept("==>"):
            right = self._parse_implies()
            return BBinOp(BBinOpKind.IMPLIES, left, right)
        return left

    def _parse_or(self) -> BExpr:
        left = self._parse_and()
        while self._accept("||"):
            left = BBinOp(BBinOpKind.OR, left, self._parse_and())
        return left

    def _parse_and(self) -> BExpr:
        left = self._parse_cmp()
        while self._accept("&&"):
            left = BBinOp(BBinOpKind.AND, left, self._parse_cmp())
        return left

    _CMP = {
        "==": BBinOpKind.EQ,
        "!=": BBinOpKind.NE,
        "<": BBinOpKind.LT,
        "<=": BBinOpKind.LE,
        ">": BBinOpKind.GT,
        ">=": BBinOpKind.GE,
    }

    def _parse_cmp(self) -> BExpr:
        left = self._parse_additive()
        if self._peek().kind in self._CMP:
            op = self._CMP[self._advance().kind]
            return BBinOp(op, left, self._parse_additive())
        return left

    def _parse_additive(self) -> BExpr:
        left = self._parse_multiplicative()
        while self._peek().kind in ("+", "-"):
            op = BBinOpKind.ADD if self._advance().kind == "+" else BBinOpKind.SUB
            left = BBinOp(op, left, self._parse_multiplicative())
        return left

    _MUL = {"*": BBinOpKind.MUL, "/": BBinOpKind.REAL_DIV, "div": BBinOpKind.DIV,
            "mod": BBinOpKind.MOD, "%": BBinOpKind.MOD}

    def _parse_multiplicative(self) -> BExpr:
        left = self._parse_unary()
        while self._peek().kind in self._MUL:
            op = self._MUL[self._advance().kind]
            right = self._parse_unary()
            # Fold literal real fractions back: (1.0 / 2.0) -> BRealLit(1/2).
            if (
                op is BBinOpKind.REAL_DIV
                and isinstance(left, BRealLit)
                and isinstance(right, BRealLit)
                and right.value != 0
            ):
                left = BRealLit(left.value / right.value)
            else:
                left = BBinOp(op, left, right)
        return left

    def _parse_unary(self) -> BExpr:
        if self._accept("-"):
            operand = self._parse_unary()
            if isinstance(operand, BIntLit):
                return BIntLit(-operand.value)
            if isinstance(operand, BRealLit):
                return BRealLit(-operand.value)
            return BUnOp(BUnOpKind.NEG, operand)
        if self._accept("!"):
            return BUnOp(BUnOpKind.NOT, self._parse_unary())
        return self._parse_postfix()

    def _parse_postfix(self) -> BExpr:
        expr = self._parse_atom()
        while self._check("["):
            self._advance()
            indices = [self.parse_expr()]
            while self._accept(","):
                indices.append(self.parse_expr())
            if self._accept(":="):
                value = self.parse_expr()
                self._expect("]")
                expr = MapStore(expr, (), tuple(indices), value)
            else:
                self._expect("]")
                expr = MapSelect(expr, (), tuple(indices))
        return expr

    def _parse_atom(self) -> BExpr:
        token = self._peek()
        if token.kind == "int":
            self._advance()
            return BIntLit(int(token.text))
        if token.kind == "real":
            self._advance()
            whole, _, frac = token.text.partition(".")
            denominator = 10 ** len(frac)
            return BRealLit(Fraction(int(whole) * denominator + int(frac or 0), denominator))
        if token.kind == "true":
            self._advance()
            return BBoolLit(True)
        if token.kind == "false":
            self._advance()
            return BBoolLit(False)
        if token.kind == "ident":
            self._advance()
            # Function application with optional type arguments.
            if self._check("<") and self._looks_like_type_args():
                type_args = self._parse_type_args()
                self._expect("(")
                args = self._parse_args()
                return FuncApp(token.text, type_args, args)
            if self._check("("):
                self._advance()
                args_list: List[BExpr] = []
                if not self._check(")"):
                    args_list.append(self.parse_expr())
                    while self._accept(","):
                        args_list.append(self.parse_expr())
                self._expect(")")
                return FuncApp(token.text, (), tuple(args_list))
            return BVar(token.text)
        if token.kind == "(":
            self._advance()
            if self._check("forall") or self._check("exists"):
                expr = self._parse_quantifier()
                self._expect(")")
                return expr
            if self._accept("if"):
                cond = self.parse_expr()
                self._expect("then")
                then = self.parse_expr()
                self._expect("else")
                otherwise = self.parse_expr()
                self._expect(")")
                return CondB(cond, then, otherwise)
            expr = self.parse_expr()
            self._expect(")")
            return expr
        raise self._error(f"expected an expression, found {token.text!r}")

    def _looks_like_type_args(self) -> bool:
        """Disambiguate ``f<T>(...)`` from ``a < b``: scan for `>` then `(`.

        Parentheses may occur *inside* the type-argument list (applied type
        constructors like ``(Field int)``), so only an unbalanced `)` aborts.
        """
        angle_depth = 0
        paren_depth = 0
        offset = 0
        while True:
            token = self._peek(offset)
            if token.kind == "eof" or offset > 40:
                return False
            if token.kind == "<":
                angle_depth += 1
            elif token.kind == ">":
                angle_depth -= 1
                if angle_depth == 0:
                    return self._peek(offset + 1).kind == "("
            elif token.kind == "(":
                paren_depth += 1
            elif token.kind == ")":
                if paren_depth == 0:
                    return False
                paren_depth -= 1
            elif token.kind in (";", "{", "}", ":=", "&&", "||"):
                return False
            offset += 1

    def _parse_type_args(self) -> Tuple[BType, ...]:
        self._expect("<")
        args = [self.parse_type()]
        while self._accept(","):
            args.append(self.parse_type())
        self._expect(">")
        return tuple(args)

    def _parse_args(self) -> Tuple[BExpr, ...]:
        args: List[BExpr] = []
        if not self._check(")"):
            args.append(self.parse_expr())
            while self._accept(","):
                args.append(self.parse_expr())
        self._expect(")")
        return tuple(args)

    def _parse_quantifier(self) -> BExpr:
        is_forall = bool(self._accept("forall"))
        if not is_forall:
            self._expect("exists")
        type_vars: Tuple[str, ...] = ()
        if self._accept("<"):
            params = [self._expect("ident").text]
            while self._accept(","):
                params.append(self._expect("ident").text)
            self._expect(">")
            type_vars = tuple(params)
        saved = set(self._tvars)
        self._tvars |= set(type_vars)
        bound: List[Tuple[str, BType]] = []
        if not self._check("::"):
            name = self._expect("ident").text
            self._expect(":")
            bound.append((name, self.parse_type()))
            while self._accept(","):
                name = self._expect("ident").text
                self._expect(":")
                bound.append((name, self.parse_type()))
        self._expect("::")
        body = self.parse_expr()
        self._tvars = saved
        ctor = Forall if is_forall else Exists
        return ctor(type_vars, tuple(bound), body)


def parse_boogie_program(source: str) -> BoogieProgram:
    """Parse a complete Boogie program."""
    parser = _BoogieParser(tokenize_boogie(source))
    return parser.parse_program()


def parse_boogie_expr(source: str, type_vars: Tuple[str, ...] = ()) -> BExpr:
    """Parse a single Boogie expression (``type_vars`` are in scope)."""
    parser = _BoogieParser(tokenize_boogie(source))
    parser._tvars = set(type_vars)
    expr = parser.parse_expr()
    parser._expect("eof")
    return expr
