"""Lexer for Boogie concrete syntax (the subset our pretty-printer emits).

Trust: **trusted** — feeds the parser the kernel re-parses certificates and
programs with.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List


class BoogieSyntaxError(Exception):
    """Raised on lexical or syntactic errors in Boogie source text."""

    def __init__(self, message: str, line: int, column: int):
        super().__init__(f"{line}:{column}: {message}")
        self.line = line
        self.column = column


@dataclass(frozen=True)
class BToken:
    kind: str
    text: str
    line: int
    column: int


KEYWORDS = frozenset(
    {
        "type",
        "const",
        "unique",
        "var",
        "function",
        "axiom",
        "procedure",
        "assume",
        "assert",
        "havoc",
        "if",
        "else",
        "forall",
        "exists",
        "then",
        "true",
        "false",
        "int",
        "real",
        "bool",
        "div",
        "mod",
    }
)

OPERATORS = [
    "<==>",
    "==>",
    "::",
    ":=",
    "==",
    "!=",
    "<=",
    ">=",
    "&&",
    "||",
    "<",
    ">",
    "+",
    "-",
    "*",
    "/",
    "%",
    "!",
    ",",
    ";",
    ":",
    "(",
    ")",
    "{",
    "}",
    "[",
    "]",
    "_",
]


def tokenize_boogie(source: str) -> List[BToken]:
    """Tokenise Boogie source text; raises ``BoogieSyntaxError``."""
    tokens: List[BToken] = []
    line, column, i = 1, 1, 0
    n = len(source)
    while i < n:
        ch = source[i]
        if ch == "\n":
            line += 1
            column = 1
            i += 1
            continue
        if ch in " \t\r":
            i += 1
            column += 1
            continue
        if source.startswith("//", i):
            while i < n and source[i] != "\n":
                i += 1
            continue
        if source.startswith("/*", i):
            end = source.find("*/", i + 2)
            if end < 0:
                raise BoogieSyntaxError("unterminated comment", line, column)
            skipped = source[i : end + 2]
            newlines = skipped.count("\n")
            if newlines:
                line += newlines
                column = len(skipped) - skipped.rfind("\n")
            else:
                column += len(skipped)
            i = end + 2
            continue
        if ch.isdigit():
            start = i
            while i < n and source[i].isdigit():
                i += 1
            if i < n and source[i] == "." and i + 1 < n and source[i + 1].isdigit():
                i += 1
                while i < n and source[i].isdigit():
                    i += 1
                text = source[start:i]
                tokens.append(BToken("real", text, line, column))
            else:
                text = source[start:i]
                tokens.append(BToken("int", text, line, column))
            column += i - start
            continue
        if ch.isalpha() or ch == "_" and i + 1 < n and (source[i + 1].isalnum() or source[i + 1] == "_"):
            start = i
            while i < n and (source[i].isalnum() or source[i] in "_'#"):
                i += 1
            text = source[start:i]
            kind = text if text in KEYWORDS else "ident"
            tokens.append(BToken(kind, text, line, column))
            column += len(text)
            continue
        for op in OPERATORS:
            if source.startswith(op, i):
                tokens.append(BToken(op, op, line, column))
                i += len(op)
                column += len(op)
                break
        else:
            raise BoogieSyntaxError(f"unexpected character {ch!r}", line, column)
    tokens.append(BToken("eof", "", line, column))
    return tokens
