"""The Boogie language substrate: AST, typechecker, semantics, back-end.

Trust: **untrusted-but-checked** — package hub re-exporting both trusted
semantics and untrusted rendering.
"""

from .ast import (  # noqa: F401
    Assign,
    Assume,
    AxiomDecl,
    BAssert,
    band,
    BBinOp,
    BBinOpKind,
    BBool,
    BBoolLit,
    beq,
    BExpr,
    bimplies,
    BInt,
    BIntLit,
    BIf,
    bnot,
    BoogieProgram,
    BOOL,
    BReal,
    BRealLit,
    BStmt,
    BType,
    BUnOp,
    BUnOpKind,
    BVar,
    CondB,
    ConstDecl,
    Exists,
    FALSE,
    Forall,
    FuncApp,
    FuncDecl,
    GlobalVarDecl,
    Havoc,
    INT,
    MapSelect,
    MapStore,
    MapType,
    Procedure,
    REAL,
    SimpleCmd,
    single_block,
    StmtBlock,
    TCon,
    TRUE,
    TVar,
    TypeConDecl,
)
from .cursor import Cursor  # noqa: F401
from .lexer import BoogieSyntaxError  # noqa: F401
from .parser import parse_boogie_expr, parse_boogie_program  # noqa: F401
from .interp import (  # noqa: F401
    check_axioms_bounded,
    fixed_carrier,
    Interpretation,
    InterpretationError,
)
from .polymaps import desugar_program, PolymapEnv  # noqa: F401
from .pretty import pretty_bexpr, pretty_boogie_program, pretty_procedure  # noqa: F401
from .prover import (  # noqa: F401
    check_vc_bounded,
    ProveResult,
    Verdict,
    verify_procedure_bounded,
    verify_procedure_via_vc,
)
from .semantics import (  # noqa: F401
    BFailure,
    BMagic,
    BNormal,
    BoogieContext,
    BOutcome,
    eval_bexpr,
    exec_simple_cmd,
    procedure_context,
    run_from,
    run_procedure,
    step,
)
from .state import BoogieState  # noqa: F401
from .typechecker import BoogieTypeError, BoogieTypeInfo, check_boogie_program  # noqa: F401
from .values import BValue, BVBool, BVInt, BVReal, EMPTY_MAP, FrozenMap, UValue  # noqa: F401
from .vcgen import procedure_vc, wlp_stmt  # noqa: F401
