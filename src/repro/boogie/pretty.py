"""Pretty-printer emitting Boogie concrete syntax.

Trust: **untrusted-but-checked** — rendering for messages and artifact
text; the kernel re-parses rather than trusts it.

The Viper-to-Boogie implementation passes the generated program to Boogie as
a text file (footnote 2 of the paper); this module plays that role and also
feeds the harness's Boogie LoC metric (Tab. 1–6).
"""

from __future__ import annotations

from fractions import Fraction
from typing import List

from .ast import (
    Assign,
    Assume,
    AxiomDecl,
    BAssert,
    BBinOp,
    BBinOpKind,
    BBool,
    BBoolLit,
    BExpr,
    BInt,
    BIntLit,
    BIf,
    BoogieProgram,
    BReal,
    BRealLit,
    BStmt,
    BType,
    BUnOp,
    BUnOpKind,
    BVar,
    CondB,
    ConstDecl,
    Exists,
    Forall,
    FuncApp,
    FuncDecl,
    GlobalVarDecl,
    Havoc,
    MapSelect,
    MapStore,
    MapType,
    Procedure,
    SimpleCmd,
    StmtBlock,
    TCon,
    TVar,
    TypeConDecl,
)

_PRECEDENCE = {
    BBinOpKind.IFF: 1,
    BBinOpKind.IMPLIES: 2,
    BBinOpKind.OR: 3,
    BBinOpKind.AND: 4,
    BBinOpKind.EQ: 5,
    BBinOpKind.NE: 5,
    BBinOpKind.LT: 5,
    BBinOpKind.LE: 5,
    BBinOpKind.GT: 5,
    BBinOpKind.GE: 5,
    BBinOpKind.ADD: 6,
    BBinOpKind.SUB: 6,
    BBinOpKind.MUL: 7,
    BBinOpKind.DIV: 7,
    BBinOpKind.MOD: 7,
    BBinOpKind.REAL_DIV: 7,
}


def pretty_type(typ: BType) -> str:
    """Render a Boogie type."""
    if isinstance(typ, (BInt, BReal, BBool, TVar)):
        return str(typ)
    if isinstance(typ, TCon):
        if not typ.args:
            return typ.name
        return f"({typ.name} {' '.join(pretty_type(a) for a in typ.args)})"
    if isinstance(typ, MapType):
        params = f"<{','.join(typ.type_params)}>" if typ.type_params else ""
        args = ",".join(pretty_type(a) for a in typ.arg_types)
        return f"{params}[{args}]{pretty_type(typ.result)}"
    raise TypeError(f"unknown type {typ!r}")


def pretty_bexpr(expr: BExpr, parent_prec: int = 0) -> str:
    """Render a Boogie expression with minimal parentheses."""
    if isinstance(expr, BVar):
        return expr.name
    if isinstance(expr, BIntLit):
        return str(expr.value)
    if isinstance(expr, BRealLit):
        return _pretty_real(expr.value)
    if isinstance(expr, BBoolLit):
        return "true" if expr.value else "false"
    if isinstance(expr, BUnOp):
        op = "-" if expr.op is BUnOpKind.NEG else "!"
        return f"{op}{pretty_bexpr(expr.operand, 8)}"
    if isinstance(expr, BBinOp):
        prec = _PRECEDENCE[expr.op]
        text = (
            f"{pretty_bexpr(expr.left, prec)} {expr.op.value} "
            f"{pretty_bexpr(expr.right, prec + 1)}"
        )
        return f"({text})" if prec < parent_prec else text
    if isinstance(expr, CondB):
        text = (
            f"if {pretty_bexpr(expr.cond)} then {pretty_bexpr(expr.then)} "
            f"else {pretty_bexpr(expr.otherwise)}"
        )
        return f"({text})"
    if isinstance(expr, FuncApp):
        targs = ""
        if expr.type_args:
            targs = f"<{','.join(pretty_type(t) for t in expr.type_args)}>"
        args = ", ".join(pretty_bexpr(a) for a in expr.args)
        return f"{expr.name}{targs}({args})"
    if isinstance(expr, MapSelect):
        indices = ", ".join(pretty_bexpr(i) for i in expr.indices)
        return f"{pretty_bexpr(expr.map, 8)}[{indices}]"
    if isinstance(expr, MapStore):
        indices = ", ".join(pretty_bexpr(i) for i in expr.indices)
        return f"{pretty_bexpr(expr.map, 8)}[{indices} := {pretty_bexpr(expr.value)}]"
    if isinstance(expr, (Forall, Exists)):
        keyword = "forall" if isinstance(expr, Forall) else "exists"
        tvars = f"<{','.join(expr.type_vars)}> " if expr.type_vars else ""
        bound = ", ".join(f"{name}: {pretty_type(typ)}" for name, typ in expr.bound)
        return f"({keyword} {tvars}{bound} :: {pretty_bexpr(expr.body)})"
    raise TypeError(f"unknown Boogie expression {expr!r}")


def _pretty_real(value: Fraction) -> str:
    if value.denominator == 1:
        return f"{value.numerator}.0"
    return f"({value.numerator}.0 / {value.denominator}.0)"


def pretty_cmd(cmd: SimpleCmd) -> str:
    """Render one simple command, with the trailing semicolon."""
    if isinstance(cmd, Assume):
        return f"assume {pretty_bexpr(cmd.expr)};"
    if isinstance(cmd, BAssert):
        return f"assert {pretty_bexpr(cmd.expr)};"
    if isinstance(cmd, Assign):
        return f"{cmd.target} := {pretty_bexpr(cmd.rhs)};"
    if isinstance(cmd, Havoc):
        return f"havoc {cmd.target};"
    raise TypeError(f"unknown command {cmd!r}")


def _stmt_lines(stmt: BStmt, indent: int) -> List[str]:
    pad = "  " * indent
    lines: List[str] = []
    for block in stmt:
        for cmd in block.cmds:
            lines.append(pad + pretty_cmd(cmd))
        if block.ifopt is not None:
            cond = "*" if block.ifopt.cond is None else pretty_bexpr(block.ifopt.cond)
            lines.append(f"{pad}if ({cond}) {{")
            lines += _stmt_lines(block.ifopt.then, indent + 1)
            if block.ifopt.otherwise:
                lines.append(f"{pad}}} else {{")
                lines += _stmt_lines(block.ifopt.otherwise, indent + 1)
            lines.append(f"{pad}}}")
    return lines


def pretty_stmt(stmt: BStmt, indent: int = 0) -> str:
    """Render a Boogie statement (block list)."""
    return "\n".join(_stmt_lines(stmt, indent))


def pretty_procedure(proc: Procedure) -> str:
    """Render a procedure with its local declarations and body."""
    lines = [f"procedure {proc.name}()"]
    lines.append("{")
    for name, typ in proc.locals:
        lines.append(f"  var {name}: {pretty_type(typ)};")
    lines += _stmt_lines(proc.body, 1)
    lines.append("}")
    return "\n".join(lines)


def pretty_boogie_program(program: BoogieProgram) -> str:
    """Render a whole Boogie program in concrete syntax (.bpl)."""
    parts: List[str] = []
    for tdecl in program.type_decls:
        holes = " ".join("_" for _ in range(tdecl.arity))
        parts.append(f"type {tdecl.name}{(' ' + holes) if holes else ''};")
    for const in program.consts:
        unique = "unique " if const.unique else ""
        parts.append(f"const {unique}{const.name}: {pretty_type(const.typ)};")
    for gvar in program.globals:
        parts.append(f"var {gvar.name}: {pretty_type(gvar.typ)};")
    for func in program.functions:
        tparams = f"<{','.join(func.type_params)}>" if func.type_params else ""
        args = ", ".join(pretty_type(t) for t in func.arg_types)
        parts.append(
            f"function {func.name}{tparams}({args}): {pretty_type(func.result)};"
        )
    for axiom in program.axioms:
        if axiom.comment:
            parts.append(f"// {axiom.comment}")
        parts.append(f"axiom {pretty_bexpr(axiom.expr)};")
    for proc in program.procedures:
        parts.append("")
        parts.append(pretty_procedure(proc))
    return "\n".join(parts) + "\n"
