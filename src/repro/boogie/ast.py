"""Abstract syntax of the Boogie subset (Fig. 1, bottom).

Trust: **trusted** — the kernel's definition of the target language's
syntax.

The subset comprises expressions (with polymorphic uninterpreted function
applications and value/type quantifiers), simple commands (``assume``,
``assert``, assignment, ``havoc``), statement *blocks* (a list of simple
commands followed by an optional if-statement), and top-level declarations
(type constructors, constants, global variables, functions, axioms, and
procedures).

A Boogie statement is a *list of blocks* — deliberately different from
Viper's tree-shaped sequential composition, because this AST mismatch is one
of the proof-generation challenges the paper addresses (Sec. 2.1, 4.3).

Polymorphic *map types* (``<T>[Ref, Field T]T``) are represented explicitly
(:class:`MapType`, :class:`MapSelect`, :class:`MapStore`) so that the
desugaring into uninterpreted types plus ``read``/``upd`` functions
(Sec. 4.4) can be implemented as an actual Boogie-to-Boogie pass.
"""

from __future__ import annotations

import enum
from dataclasses import dataclass, field
from fractions import Fraction
from typing import Optional, Tuple, Union


# ---------------------------------------------------------------------------
# Types
# ---------------------------------------------------------------------------


@dataclass(frozen=True)
class BInt:
    def __str__(self) -> str:
        return "int"


@dataclass(frozen=True)
class BReal:
    def __str__(self) -> str:
        return "real"


@dataclass(frozen=True)
class BBool:
    def __str__(self) -> str:
        return "bool"


@dataclass(frozen=True)
class TVar:
    """A type variable bound by a function signature, axiom, or map type."""

    name: str

    def __str__(self) -> str:
        return self.name


@dataclass(frozen=True)
class TCon:
    """An applied (possibly nullary) uninterpreted type constructor."""

    name: str
    args: Tuple["BType", ...] = ()

    def __str__(self) -> str:
        if not self.args:
            return self.name
        return f"({self.name} {' '.join(str(a) for a in self.args)})"


@dataclass(frozen=True)
class MapType:
    """A (possibly impredicatively polymorphic) Boogie map type."""

    type_params: Tuple[str, ...]
    arg_types: Tuple["BType", ...]
    result: "BType"

    def __str__(self) -> str:
        params = f"<{','.join(self.type_params)}>" if self.type_params else ""
        args = ",".join(str(a) for a in self.arg_types)
        return f"{params}[{args}]{self.result}"


BType = Union[BInt, BReal, BBool, TVar, TCon, MapType]

INT = BInt()
REAL = BReal()
BOOL = BBool()


def subst_type(typ: BType, mapping: dict) -> BType:
    """Substitute type variables in a type."""
    if isinstance(typ, TVar):
        return mapping.get(typ.name, typ)
    if isinstance(typ, TCon):
        return TCon(typ.name, tuple(subst_type(a, mapping) for a in typ.args))
    if isinstance(typ, MapType):
        inner = {k: v for k, v in mapping.items() if k not in typ.type_params}
        return MapType(
            typ.type_params,
            tuple(subst_type(a, inner) for a in typ.arg_types),
            subst_type(typ.result, inner),
        )
    return typ


def type_free_vars(typ: BType) -> frozenset:
    if isinstance(typ, TVar):
        return frozenset({typ.name})
    if isinstance(typ, TCon):
        result: frozenset = frozenset()
        for arg in typ.args:
            result |= type_free_vars(arg)
        return result
    if isinstance(typ, MapType):
        result = type_free_vars(typ.result)
        for arg in typ.arg_types:
            result |= type_free_vars(arg)
        return result - frozenset(typ.type_params)
    return frozenset()


# ---------------------------------------------------------------------------
# Expressions
# ---------------------------------------------------------------------------


class BBinOpKind(enum.Enum):
    ADD = "+"
    SUB = "-"
    MUL = "*"
    DIV = "div"
    MOD = "mod"
    REAL_DIV = "/"
    LT = "<"
    LE = "<="
    GT = ">"
    GE = ">="
    EQ = "=="
    NE = "!="
    AND = "&&"
    OR = "||"
    IMPLIES = "==>"
    IFF = "<==>"

    def __str__(self) -> str:
        return self.value


class BUnOpKind(enum.Enum):
    NEG = "-"
    NOT = "!"

    def __str__(self) -> str:
        return self.value


@dataclass(frozen=True)
class BVar:
    name: str


@dataclass(frozen=True)
class BIntLit:
    value: int


@dataclass(frozen=True)
class BRealLit:
    value: Fraction


@dataclass(frozen=True)
class BBoolLit:
    value: bool


@dataclass(frozen=True)
class BBinOp:
    op: BBinOpKind
    left: "BExpr"
    right: "BExpr"


@dataclass(frozen=True)
class BUnOp:
    op: BUnOpKind
    operand: "BExpr"


@dataclass(frozen=True)
class FuncApp:
    """Application of a (possibly polymorphic) uninterpreted function."""

    name: str
    type_args: Tuple[BType, ...]
    args: Tuple["BExpr", ...]


@dataclass(frozen=True)
class MapSelect:
    """``map[indices]`` — sugar eliminated by the polymap desugaring pass."""

    map: "BExpr"
    type_args: Tuple[BType, ...]
    indices: Tuple["BExpr", ...]


@dataclass(frozen=True)
class MapStore:
    """``map[indices := value]`` — sugar eliminated by desugaring."""

    map: "BExpr"
    type_args: Tuple[BType, ...]
    indices: Tuple["BExpr", ...]
    value: "BExpr"


@dataclass(frozen=True)
class Forall:
    """A quantifier binding type variables and typed value variables."""

    type_vars: Tuple[str, ...]
    bound: Tuple[Tuple[str, BType], ...]
    body: "BExpr"


@dataclass(frozen=True)
class Exists:
    type_vars: Tuple[str, ...]
    bound: Tuple[Tuple[str, BType], ...]
    body: "BExpr"


@dataclass(frozen=True)
class CondB:
    """``if cond then e1 else e2`` expression."""

    cond: "BExpr"
    then: "BExpr"
    otherwise: "BExpr"


BExpr = Union[
    BVar, BIntLit, BRealLit, BBoolLit, BBinOp, BUnOp, FuncApp, MapSelect, MapStore,
    Forall, Exists, CondB,
]

TRUE = BBoolLit(True)
FALSE = BBoolLit(False)


def band(*exprs: BExpr) -> BExpr:
    """Conjunction of a list of expressions (TRUE when empty)."""
    useful = [e for e in exprs if e != TRUE]
    if not useful:
        return TRUE
    result = useful[0]
    for expr in useful[1:]:
        result = BBinOp(BBinOpKind.AND, result, expr)
    return result


def bimplies(lhs: BExpr, rhs: BExpr) -> BExpr:
    if lhs == TRUE:
        return rhs
    return BBinOp(BBinOpKind.IMPLIES, lhs, rhs)


def beq(lhs: BExpr, rhs: BExpr) -> BExpr:
    return BBinOp(BBinOpKind.EQ, lhs, rhs)


def bnot(expr: BExpr) -> BExpr:
    return BUnOp(BUnOpKind.NOT, expr)


# ---------------------------------------------------------------------------
# Commands, blocks, statements
# ---------------------------------------------------------------------------


@dataclass(frozen=True)
class Assume:
    expr: BExpr


@dataclass(frozen=True)
class BAssert:
    expr: BExpr


@dataclass(frozen=True)
class Assign:
    target: str
    rhs: BExpr


@dataclass(frozen=True)
class Havoc:
    target: str


SimpleCmd = Union[Assume, BAssert, Assign, Havoc]


@dataclass(frozen=True)
class BIf:
    """An if-statement; ``cond is None`` means nondeterministic ``if (*)``."""

    cond: Optional[BExpr]
    then: "BStmt"
    otherwise: "BStmt"


@dataclass(frozen=True)
class StmtBlock:
    """A list of simple commands followed by an optional if-statement."""

    cmds: Tuple[SimpleCmd, ...] = ()
    ifopt: Optional[BIf] = None


#: A Boogie statement: a list of statement blocks.
BStmt = Tuple[StmtBlock, ...]


def single_block(*cmds: SimpleCmd) -> BStmt:
    return (StmtBlock(tuple(cmds), None),)


def stmt_cmd_count(stmt: BStmt) -> int:
    """Total number of simple commands in a statement (harness metric)."""
    total = 0
    for block in stmt:
        total += len(block.cmds)
        if block.ifopt is not None:
            total += stmt_cmd_count(block.ifopt.then)
            total += stmt_cmd_count(block.ifopt.otherwise)
    return total


# ---------------------------------------------------------------------------
# Declarations and programs
# ---------------------------------------------------------------------------


@dataclass(frozen=True)
class TypeConDecl:
    """``type Name _ ... _;`` — an uninterpreted type constructor."""

    name: str
    arity: int = 0


@dataclass(frozen=True)
class ConstDecl:
    name: str
    typ: BType
    unique: bool = False


@dataclass(frozen=True)
class GlobalVarDecl:
    name: str
    typ: BType


@dataclass(frozen=True)
class FuncDecl:
    """``function f<T...>(args): result;`` — uninterpreted, polymorphic."""

    name: str
    type_params: Tuple[str, ...]
    arg_types: Tuple[BType, ...]
    result: BType


@dataclass(frozen=True)
class AxiomDecl:
    expr: BExpr
    comment: str = ""


@dataclass(frozen=True)
class Procedure:
    """A Boogie procedure; the Viper-to-Boogie translation uses neither
    procedure pre-/postconditions nor calls, so only locals and a body."""

    name: str
    locals: Tuple[Tuple[str, BType], ...]
    body: BStmt


@dataclass(frozen=True)
class BoogieProgram:
    type_decls: Tuple[TypeConDecl, ...] = ()
    consts: Tuple[ConstDecl, ...] = ()
    globals: Tuple[GlobalVarDecl, ...] = ()
    functions: Tuple[FuncDecl, ...] = ()
    axioms: Tuple[AxiomDecl, ...] = ()
    procedures: Tuple[Procedure, ...] = ()

    def procedure(self, name: str) -> Procedure:
        for proc in self.procedures:
            if proc.name == name:
                return proc
        raise KeyError(f"no procedure named {name!r}")

    def function(self, name: str) -> FuncDecl:
        for func in self.functions:
            if func.name == name:
                return func
        raise KeyError(f"no function named {name!r}")

    def global_types(self) -> dict:
        """Types of globals and constants (the ambient variable context)."""
        env = {g.name: g.typ for g in self.globals}
        env.update({c.name: c.typ for c in self.consts})
        return env


# ---------------------------------------------------------------------------
# Traversals
# ---------------------------------------------------------------------------


def expr_children(expr: BExpr) -> Tuple[BExpr, ...]:
    if isinstance(expr, BBinOp):
        return (expr.left, expr.right)
    if isinstance(expr, BUnOp):
        return (expr.operand,)
    if isinstance(expr, FuncApp):
        return expr.args
    if isinstance(expr, MapSelect):
        return (expr.map,) + expr.indices
    if isinstance(expr, MapStore):
        return (expr.map,) + expr.indices + (expr.value,)
    if isinstance(expr, (Forall, Exists)):
        return (expr.body,)
    if isinstance(expr, CondB):
        return (expr.cond, expr.then, expr.otherwise)
    return ()


def expr_free_vars(expr: BExpr) -> frozenset:
    """Free value variables of an expression."""
    if isinstance(expr, BVar):
        return frozenset({expr.name})
    if isinstance(expr, (Forall, Exists)):
        bound_names = frozenset(name for name, _ in expr.bound)
        return expr_free_vars(expr.body) - bound_names
    result: frozenset = frozenset()
    for child in expr_children(expr):
        result |= expr_free_vars(child)
    return result


def subst_expr(expr: BExpr, mapping: dict) -> BExpr:
    """Capture-avoiding substitution of free variables by expressions."""
    if isinstance(expr, BVar):
        return mapping.get(expr.name, expr)
    if isinstance(expr, (BIntLit, BRealLit, BBoolLit)):
        return expr
    if isinstance(expr, BBinOp):
        return BBinOp(expr.op, subst_expr(expr.left, mapping), subst_expr(expr.right, mapping))
    if isinstance(expr, BUnOp):
        return BUnOp(expr.op, subst_expr(expr.operand, mapping))
    if isinstance(expr, FuncApp):
        return FuncApp(
            expr.name, expr.type_args, tuple(subst_expr(a, mapping) for a in expr.args)
        )
    if isinstance(expr, MapSelect):
        return MapSelect(
            subst_expr(expr.map, mapping),
            expr.type_args,
            tuple(subst_expr(i, mapping) for i in expr.indices),
        )
    if isinstance(expr, MapStore):
        return MapStore(
            subst_expr(expr.map, mapping),
            expr.type_args,
            tuple(subst_expr(i, mapping) for i in expr.indices),
            subst_expr(expr.value, mapping),
        )
    if isinstance(expr, CondB):
        return CondB(
            subst_expr(expr.cond, mapping),
            subst_expr(expr.then, mapping),
            subst_expr(expr.otherwise, mapping),
        )
    if isinstance(expr, (Forall, Exists)):
        bound_names = {name for name, _ in expr.bound}
        inner = {k: v for k, v in mapping.items() if k not in bound_names}
        # Rename bound variables that would capture free variables of the
        # substituted expressions.
        free_in_images = frozenset()
        for image in inner.values():
            free_in_images |= expr_free_vars(image)
        renaming = {}
        new_bound = []
        for name, typ in expr.bound:
            if name in free_in_images:
                fresh = _fresh_name(name, free_in_images | expr_free_vars(expr.body))
                renaming[name] = BVar(fresh)
                new_bound.append((fresh, typ))
            else:
                new_bound.append((name, typ))
        body = expr.body
        if renaming:
            body = subst_expr(body, renaming)
        body = subst_expr(body, inner)
        ctor = Forall if isinstance(expr, Forall) else Exists
        return ctor(expr.type_vars, tuple(new_bound), body)
    raise TypeError(f"unknown expression {expr!r}")


def _fresh_name(base: str, avoid: frozenset) -> str:
    index = 0
    while f"{base}#{index}" in avoid:
        index += 1
    return f"{base}#{index}"
