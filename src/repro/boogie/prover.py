"""A bounded prover for Boogie verification conditions.

Trust: **trusted** — discharges the per-procedure correctness hypothesis in
the bounded model.

The paper's toolchain hands VCs to an SMT solver; no solver is available in
this environment, so the back-end discharges VCs by *bounded model
checking*: free variables and quantifiers range over the finite carrier
samples of a concrete interpretation.  Verdicts are explicit about this:

* ``REFUTED`` — a concrete counterexample assignment was found; the
  procedure genuinely has a failing execution (sound refutation).
* ``BOUNDED_VALID`` — the VC holds for every sampled assignment; this is
  evidence, not proof (bounded in both domain size and interpretation).

This asymmetry matches how the reproduction uses the back-end: refutations
feed negative tests, while positive assurance for the translation comes
from the certification package, not from the prover.
"""

from __future__ import annotations

import enum
import itertools
from dataclasses import dataclass
from typing import Dict, List, Optional, Tuple

from ..choice import all_executions
from .ast import BExpr, BoogieProgram, BType, Procedure
from .interp import Interpretation
from .semantics import (
    BFailure,
    BoogieContext,
    BOutcome,
    eval_bexpr,
    run_procedure,
)
from .state import BoogieState
from .values import BValue, BVBool
from .vcgen import procedure_vc


class Verdict(enum.Enum):
    """Outcome of a bounded verification attempt (see module doc)."""

    BOUNDED_VALID = "bounded-valid"
    REFUTED = "refuted"

    def __str__(self) -> str:
        return self.value


@dataclass
class ProveResult:
    """Verdict plus the counterexample (if refuted) and work done."""

    verdict: Verdict
    counterexample: Optional[Dict[str, BValue]] = None
    assignments_checked: int = 0


def check_vc_bounded(
    vc: BExpr,
    var_types: Dict[str, BType],
    program: BoogieProgram,
    interp: Interpretation,
    fixed: Optional[Dict[str, BValue]] = None,
    max_assignments: int = 1_000_000,
) -> ProveResult:
    """Check a VC over all sampled assignments to its free variables.

    ``fixed`` pins some variables (typically the declared constants) to
    their interpreted values instead of enumerating them.
    """
    from .ast import expr_free_vars

    fixed = dict(fixed or {})
    free = sorted(expr_free_vars(vc) - set(fixed))
    candidate_lists: List[Tuple[BValue, ...]] = []
    for name in free:
        if name not in var_types:
            raise KeyError(f"VC free variable {name!r} has no declared type")
        candidate_lists.append(tuple(interp.carrier_of(var_types[name])))
    ctx = BoogieContext(program, interp, dict(var_types))
    checked = 0
    for combo in itertools.product(*candidate_lists):
        assignment = dict(fixed)
        assignment.update(zip(free, combo))
        state = BoogieState(assignment)
        value = eval_bexpr(vc, state, ctx)
        checked += 1
        if checked > max_assignments:
            raise RuntimeError("VC checking exceeded the assignment budget")
        if not (isinstance(value, BVBool) and value.value):
            return ProveResult(Verdict.REFUTED, assignment, checked)
    return ProveResult(Verdict.BOUNDED_VALID, None, checked)


def verify_procedure_bounded(
    program: BoogieProgram,
    proc: Procedure,
    interp: Interpretation,
    fixed: Optional[Dict[str, BValue]] = None,
    max_paths: int = 500_000,
) -> ProveResult:
    """Operational bounded verification: enumerate every execution.

    All variables not pinned by ``fixed`` are havoced over their carriers
    (matching the initial-state quantification in Correct_b of Fig. 9);
    every nondeterministic branch and havoc is explored exhaustively.
    """
    fixed = dict(fixed or {})
    var_types: Dict[str, BType] = program.global_types()
    var_types.update(dict(proc.locals))
    to_enumerate = sorted(name for name in var_types if name not in fixed)
    candidate_lists = [
        tuple(interp.carrier_of(var_types[name])) for name in to_enumerate
    ]
    checked = 0
    for combo in itertools.product(*candidate_lists):
        assignment = dict(fixed)
        assignment.update(zip(to_enumerate, combo))
        init = BoogieState(assignment)
        for outcome in all_executions(
            lambda oracle: run_procedure(program, proc, interp, init, oracle),
            max_paths=max_paths,
        ):
            checked += 1
            if isinstance(outcome, BFailure):
                return ProveResult(Verdict.REFUTED, assignment, checked)
    return ProveResult(Verdict.BOUNDED_VALID, None, checked)


def verify_procedure_via_vc(
    program: BoogieProgram,
    proc: Procedure,
    interp: Interpretation,
    fixed: Optional[Dict[str, BValue]] = None,
) -> ProveResult:
    """Verify by generating the VC and bounded-checking it."""
    vc, var_types = procedure_vc(program, proc)
    return check_vc_bounded(vc, var_types, program, interp, fixed)
