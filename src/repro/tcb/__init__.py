"""repro.tcb — a static analyzer for the reproduction's own trust boundary.

Trust: **advisory** — the TCB checker analyzes the reproduction's source
code, never a user program; its findings gate CI and code review, not
verdicts.  A checker bug can mis-describe the boundary, but the boundary
itself (the kernel re-judging every artifact) does not depend on it.

The paper's central claim (Sec. 1, Sec. 4.5) is that only a small trusted
kernel must be correct; everything else — translation, caching,
incrementality, routing — is untrusted-but-checked.  In this repository
that boundary was prose: `docs/TRUSTED_BASE.md` inventories the TCB and
``Trust:`` docstring lines annotate the modules, but nothing stopped a
future change from importing the cache inside the kernel and silently
growing the trusted base.  This package turns the boundary into a
continuously machine-checked property of the source tree itself:

* :mod:`repro.tcb.policy` — the machine-readable trust policy
  (module-pattern → ``trusted | untrusted-but-checked | advisory``),
  cross-validated against both the ``Trust:`` docstring lines (TB007)
  and the TRUSTED_BASE.md inventory (TB008) so code, docs, and policy
  cannot drift apart;
* :mod:`repro.tcb.importgraph` — a zero-dependency (stdlib ``ast``)
  module-level import graph with transitive-closure queries, plus
  detection of dynamic imports and nondeterminism sources;
* :mod:`repro.tcb.checks` — the TB001–TB008 catalog (same
  zero-false-positive discipline as :mod:`repro.analysis`);
* :mod:`repro.tcb.report` — suppressions (``# tcb: allow[CODE] reason``),
  result/exit-code plumbing, and the ``repro tcb check`` entry point.
"""

from .checks import ALL_TCB_CHECK_IDS, TB_CHECKS, TcbFinding, run_checks  # noqa: F401
from .importgraph import ImportGraph, Module, build_graph  # noqa: F401
from .policy import (  # noqa: F401
    DEFAULT_POLICY,
    PolicyRule,
    TrustPolicy,
    normalize_status,
    parse_trust_line,
)
from .report import TcbResult, check_tree, default_doc_path, default_src_root  # noqa: F401
