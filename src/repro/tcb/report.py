"""Findings → results: suppression hygiene, exit codes, rendering.

Trust: **advisory** — reporting plumbing for the TCB checker; nothing on
a verdict path consults it.

Suppression is comment-based and purely line-oriented, mirroring the
``// lint:ignore`` scoping of :mod:`repro.analysis.report`: a marker
suppresses only findings reported *on its own line*, and only the listed
check codes.  Unlike ``lint:ignore``, a bare marker is not allowed —
every exemption names its code(s) **and carries a reason**::

    from ..frontend.translator import TranslationResult  # tcb: allow[TB001] type-only: no translator code runs while checking

A marker without a reason is itself a TB006 finding (and suppresses
nothing); a well-formed marker that matches no finding is *stale* and
also a TB006 finding — exemptions must be deleted when the code they
excused goes away.  TB006 findings are never suppressible: a suppression
that could silence the suppression checker would be unconditional.

Exit codes mirror ``repro lint``: 0 = boundary holds, 1 = findings,
2 = the tree could not be analyzed at all.
"""

from __future__ import annotations

import io
import re
import tokenize
from dataclasses import dataclass, field
from pathlib import Path
from typing import Dict, List, Optional, Sequence, Tuple

from .checks import TB_CHECKS, TcbFinding, run_checks
from .importgraph import GraphError, ImportGraph, build_graph
from .policy import DEFAULT_POLICY, TrustPolicy

#: ``tcb: allow[TB001] reason`` after a hash (codes comma-separated; the
#: reason is everything after the closing bracket).
_ALLOW_RE = re.compile(
    r"#\s*tcb:\s*allow\[(?P<codes>[A-Z0-9, \t]*)\]\s*(?P<reason>.*)$"
)


@dataclass
class Suppression:
    """One ``# tcb: allow[...]`` marker found in an analyzed file."""

    path: str
    line: int
    codes: Tuple[str, ...]
    reason: str
    matched: bool = False

    @property
    def well_formed(self) -> bool:
        return bool(self.codes) and bool(self.reason.strip())

    def to_dict(self) -> dict:
        return {
            "path": self.path,
            "line": self.line,
            "codes": list(self.codes),
            "reason": self.reason,
        }


def scan_suppressions(path: Path, text: Optional[str] = None) -> List[Suppression]:
    """Every ``tcb: allow`` marker in one source file.

    Only real ``#`` comment tokens count — a marker quoted inside a
    docstring (this module documents the syntax, after all) is prose,
    not an exemption."""
    if text is None:
        text = path.read_text()
    result: List[Suppression] = []
    try:
        tokens = tokenize.generate_tokens(io.StringIO(text).readline)
        comments = [
            (token.start[0], token.string)
            for token in tokens
            if token.type == tokenize.COMMENT
        ]
    except (tokenize.TokenError, SyntaxError):  # pragma: no cover - build_graph
        return []                               # already rejected the file
    for number, comment in comments:
        match = _ALLOW_RE.search(comment)
        if match is None:
            continue
        codes = tuple(
            code.strip().upper()
            for code in match.group("codes").split(",")
            if code.strip()
        )
        result.append(Suppression(
            path=str(path),
            line=number,
            codes=codes,
            reason=match.group("reason").strip(),
        ))
    return result


def apply_suppressions(
    findings: Sequence[TcbFinding],
    suppressions: Sequence[Suppression],
) -> Tuple[List[TcbFinding], List[TcbFinding], int]:
    """Apply markers and judge their hygiene.

    Returns ``(kept, hygiene_findings, suppressed_count)``.  A finding
    is suppressed when a *well-formed* marker on the same file and line
    lists its code; TB006 findings are exempt by construction (they are
    produced here, after matching)."""
    index: Dict[Tuple[str, int], List[Suppression]] = {}
    for suppression in suppressions:
        index.setdefault((suppression.path, suppression.line), []).append(
            suppression
        )
    kept: List[TcbFinding] = []
    suppressed = 0
    for finding in findings:
        matching = [
            s for s in index.get((finding.path, finding.line), [])
            if s.well_formed and finding.code in s.codes
        ]
        if matching:
            for s in matching:
                s.matched = True
            suppressed += 1
            continue
        kept.append(finding)
    hygiene: List[TcbFinding] = []
    for suppression in suppressions:
        if not suppression.well_formed:
            what = ("no check code" if not suppression.codes
                    else "no reason")
            hygiene.append(TcbFinding(
                code="TB006",
                message=f"tcb: allow marker carries {what} — every "
                        f"exemption must name its code and justify "
                        f"itself",
                severity=TB_CHECKS["TB006"].severity,
                path=suppression.path,
                line=suppression.line,
            ))
        elif not suppression.matched:
            hygiene.append(TcbFinding(
                code="TB006",
                message=f"stale suppression: tcb: allow"
                        f"[{', '.join(suppression.codes)}] matches no "
                        f"finding on this line — delete it",
                severity=TB_CHECKS["TB006"].severity,
                path=suppression.path,
                line=suppression.line,
            ))
    return kept, hygiene, suppressed


@dataclass
class TcbResult:
    """The outcome of checking one source tree.

    ``findings`` are post-suppression (including TB006 hygiene
    findings); ``suppressed`` counts exemptions that fired; ``error`` is
    set when the tree could not be analyzed (exit code 2)."""

    findings: List[TcbFinding] = field(default_factory=list)
    suppressions: List[Suppression] = field(default_factory=list)
    suppressed: int = 0
    modules_checked: int = 0
    error: Optional[str] = None

    @property
    def exit_code(self) -> int:
        if self.error is not None:
            return 2
        return 1 if self.findings else 0

    def to_dict(self) -> dict:
        payload: dict = {
            "findings": [f.to_dict() for f in self.findings],
            "suppressed": self.suppressed,
            "suppressions": [
                s.to_dict() for s in self.suppressions if s.matched
            ],
            "modules_checked": self.modules_checked,
            "exit_code": self.exit_code,
        }
        if self.error is not None:
            payload["error"] = self.error
        return payload

    def render(self) -> str:
        if self.error is not None:
            return f"tcb: {self.error}"
        lines = [finding.render() for finding in self.findings]
        noun = "finding" if len(self.findings) == 1 else "findings"
        tail = f", {self.suppressed} suppressed" if self.suppressed else ""
        lines.append(
            f"{len(self.findings)} {noun} across {self.modules_checked} "
            f"modules{tail}"
        )
        return "\n".join(lines)


def default_src_root() -> Path:
    """The source tree containing the installed ``repro`` package —
    ``repro tcb check`` analyzes its own source by default, so the
    command works from any working directory (including the docs-exec
    sandbox)."""
    import repro

    return Path(repro.__file__).resolve().parent.parent


def default_doc_path(src_root: Optional[Path] = None) -> Optional[Path]:
    """``docs/TRUSTED_BASE.md`` of the checkout owning ``src_root``, or
    ``None`` when this is an installed package without docs (TB008 is
    then skipped)."""
    root = Path(src_root) if src_root is not None else default_src_root()
    candidate = root.parent / "docs" / "TRUSTED_BASE.md"
    return candidate if candidate.is_file() else None


def check_tree(
    src_root: Optional[Path] = None,
    *,
    policy: Optional[TrustPolicy] = None,
    doc_path: Optional[Path] = None,
    use_default_doc: bool = True,
) -> TcbResult:
    """Analyze a source tree against a trust policy.

    Defaults analyze the installed ``repro`` package against
    :data:`~repro.tcb.policy.DEFAULT_POLICY` and the checkout's
    TRUSTED_BASE.md.  Pass an explicit ``doc_path`` (or
    ``use_default_doc=False``) to override."""
    root = Path(src_root) if src_root is not None else default_src_root()
    active_policy = policy if policy is not None else DEFAULT_POLICY
    if doc_path is None and use_default_doc:
        doc_path = default_doc_path(root)
    if not root.is_dir():
        return TcbResult(error=f"source root {root} is not a directory")
    try:
        graph = build_graph(root, nondet_modules=active_policy.nondet_modules)
    except GraphError as error:
        return TcbResult(error=str(error))
    if not graph.modules:
        return TcbResult(error=f"no Python modules under {root}")
    doc_text: Optional[str] = None
    if doc_path is not None:
        doc_path = Path(doc_path)
        if not doc_path.is_file():
            return TcbResult(error=f"inventory document {doc_path} not found")
        doc_text = doc_path.read_text()
    findings = run_checks(
        graph, active_policy, doc_text=doc_text, doc_path=doc_path
    )
    suppressions: List[Suppression] = []
    for name in sorted(graph.modules):
        suppressions.extend(scan_suppressions(graph.modules[name].path))
    kept, hygiene, suppressed = apply_suppressions(findings, suppressions)
    kept.extend(hygiene)
    kept.sort(key=lambda f: (f.path, f.line, f.code, f.message))
    return TcbResult(
        findings=kept,
        suppressions=suppressions,
        suppressed=suppressed,
        modules_checked=len(graph.modules),
    )
