"""Module-level import graph over a Python source tree (stdlib ``ast``).

Trust: **advisory** — the graph describes the reproduction's source for
the TCB checker; nothing on a verdict path consults it.

The graph is *static*: one node per module (a ``.py`` file; a package's
``__init__.py`` is the node named by the package itself), one edge per
explicit ``import``/``from`` statement, resolved against the analyzed
tree.  ``from pkg import name`` resolves to the submodule ``pkg.name``
when that is a module of the tree, else to ``pkg`` — mirroring what the
statement actually binds.  Edges record the source line, whether the
import is *lazy* (nested inside a function or class body rather than at
module top level), and whether it is *dynamic*
(``importlib.import_module("literal")``).

Dynamic imports whose target is not a string literal cannot be resolved
statically; they are recorded on the module as ``dynamic_code`` entries
(alongside ``eval``/``exec``/``__import__`` calls) so the TB004 check
can fail loudly instead of silently missing an edge.  The scan also
records the nondeterminism observations TB005 consumes: imports of the
policy's banned modules, ``os.environ`` / ``os.getenv`` access, and
``time.*()`` calls appearing inside a branch condition.
"""

from __future__ import annotations

import ast
from dataclasses import dataclass, field
from pathlib import Path
from typing import Dict, FrozenSet, Iterator, List, Optional, Set, Tuple


@dataclass(frozen=True)
class ImportEdge:
    """One resolved import statement."""

    target: str
    line: int
    lazy: bool = False
    dynamic: bool = False


@dataclass(frozen=True)
class DynamicCode:
    """One dynamic-code-loading occurrence (``eval``/``exec``/
    ``__import__``/``importlib.import_module``)."""

    kind: str
    line: int


@dataclass(frozen=True)
class NondetUse:
    """One nondeterminism observation for TB005.

    ``kind`` is ``import:<module>`` (e.g. ``import:random``),
    ``os.environ``, ``os.getenv``, or ``time-in-branch:<attr>``."""

    kind: str
    line: int


@dataclass
class Module:
    """One analyzed module: name, source location, docstring metadata,
    and everything the checks consume."""

    name: str
    path: Path
    is_package: bool
    docstring: Optional[str]
    docstring_line: int
    imports: List[ImportEdge] = field(default_factory=list)
    dynamic_code: List[DynamicCode] = field(default_factory=list)
    nondet_uses: List[NondetUse] = field(default_factory=list)

    def import_targets(self) -> List[str]:
        return [edge.target for edge in self.imports]


class GraphError(Exception):
    """A source file could not be parsed (exit code 2 territory)."""

    def __init__(self, path: Path, message: str):
        self.path = path
        super().__init__(f"{path}: {message}")


class ImportGraph:
    """The import graph plus its closure queries."""

    def __init__(self, modules: Dict[str, Module]):
        self.modules = modules
        self._closure: Dict[str, FrozenSet[str]] = {}

    def __contains__(self, name: str) -> bool:
        return name in self.modules

    def edges_of(self, name: str) -> List[ImportEdge]:
        return self.modules[name].imports if name in self.modules else []

    def direct_imports(self, name: str) -> FrozenSet[str]:
        """In-tree modules this module explicitly imports."""
        return frozenset(
            e.target for e in self.edges_of(name) if e.target in self.modules
        )

    def transitive_imports(self, name: str) -> FrozenSet[str]:
        """Every in-tree module reachable from ``name`` (excluding it,
        unless it imports itself through a cycle)."""
        if name in self._closure:
            return self._closure[name]
        seen: Set[str] = set()
        stack = list(self.direct_imports(name))
        while stack:
            current = stack.pop()
            if current in seen:
                continue
            seen.add(current)
            stack.extend(self.direct_imports(current) - seen)
        closure = frozenset(seen)
        self._closure[name] = closure
        return closure

    def importers_of(self, name: str) -> FrozenSet[str]:
        """Modules with a direct edge to ``name``."""
        return frozenset(
            mod for mod in self.modules
            if name in self.direct_imports(mod)
        )

    def import_chain(self, source: str, target: str) -> List[str]:
        """A shortest ``source → … → target`` module chain (BFS), or
        ``[]`` when unreachable.  Used to render TB002/TB003 messages."""
        if target in self.direct_imports(source):
            return [source, target]
        frontier = [[source]]
        seen = {source}
        while frontier:
            next_frontier: List[List[str]] = []
            for chain in frontier:
                for succ in sorted(self.direct_imports(chain[-1])):
                    if succ in seen:
                        continue
                    seen.add(succ)
                    extended = chain + [succ]
                    if succ == target:
                        return extended
                    next_frontier.append(extended)
            frontier = next_frontier
        return []


# ---------------------------------------------------------------------------
# Construction
# ---------------------------------------------------------------------------


def _module_name(src_root: Path, path: Path) -> str:
    rel = path.relative_to(src_root)
    parts = list(rel.parts)
    if parts[-1] == "__init__.py":
        parts = parts[:-1]
    else:
        parts[-1] = parts[-1][: -len(".py")]
    return ".".join(parts)


def discover_modules(src_root: Path) -> Iterator[Path]:
    """Every ``.py`` file under ``src_root``, sorted for determinism."""
    yield from sorted(src_root.rglob("*.py"))


class _Scanner(ast.NodeVisitor):
    """One pass over a module's AST collecting imports, dynamic code,
    and nondeterminism observations."""

    def __init__(self, module: Module, known: Set[str],
                 nondet_modules: FrozenSet[str]):
        self.module = module
        self.known = known
        self.nondet_modules = nondet_modules
        self._depth = 0        # function/class nesting → lazy imports
        self._branch_depth = 0  # inside an if/while/assert test expression

    # -- helpers -----------------------------------------------------------

    def _resolve_relative(self, node: ast.ImportFrom) -> Optional[str]:
        base_parts = self.module.name.split(".")
        if not self.module.is_package:
            base_parts = base_parts[:-1]
        # level 1 = the current package, each extra level one package up.
        cut = len(base_parts) - (node.level - 1)
        if cut < 0:
            return None
        base = base_parts[:cut]
        if node.module:
            base = base + node.module.split(".")
        return ".".join(base) if base else None

    def _add_edge(self, target: str, line: int, dynamic: bool = False) -> None:
        self.module.imports.append(
            ImportEdge(target=target, line=line, lazy=self._depth > 0,
                       dynamic=dynamic)
        )
        root = target.split(".")[0]
        if root in self.nondet_modules:
            self.module.nondet_uses.append(
                NondetUse(kind=f"import:{root}", line=line)
            )

    # -- imports -----------------------------------------------------------

    def visit_Import(self, node: ast.Import) -> None:
        for alias in node.names:
            self._add_edge(alias.name, node.lineno)
        self.generic_visit(node)

    def visit_ImportFrom(self, node: ast.ImportFrom) -> None:
        if node.level:
            base = self._resolve_relative(node)
        else:
            base = node.module
        if base is not None:
            for alias in node.names:
                candidate = f"{base}.{alias.name}"
                target = candidate if candidate in self.known else base
                self._add_edge(target, node.lineno)
        self.generic_visit(node)

    # -- dynamic code ------------------------------------------------------

    def visit_Call(self, node: ast.Call) -> None:
        kind: Optional[str] = None
        func = node.func
        if isinstance(func, ast.Name) and func.id in ("eval", "exec",
                                                      "__import__"):
            kind = func.id
        elif (
            isinstance(func, ast.Attribute)
            and isinstance(func.value, ast.Name)
            and func.value.id == "importlib"
            and func.attr in ("import_module", "__import__")
        ):
            kind = f"importlib.{func.attr}"
        if kind is not None:
            self.module.dynamic_code.append(
                DynamicCode(kind=kind, line=node.lineno)
            )
            # A literal import_module target still yields a graph edge.
            if kind == "importlib.import_module" and node.args:
                head = node.args[0]
                if isinstance(head, ast.Constant) and isinstance(head.value, str):
                    self._add_edge(head.value, node.lineno, dynamic=True)
        if self._branch_depth and isinstance(func, ast.Attribute):
            value = func.value
            if isinstance(value, ast.Name) and value.id == "time":
                self.module.nondet_uses.append(
                    NondetUse(kind=f"time-in-branch:{func.attr}",
                              line=node.lineno)
                )
        if (
            isinstance(func, ast.Attribute)
            and isinstance(func.value, ast.Name)
            and func.value.id == "os"
            and func.attr == "getenv"
        ):
            self.module.nondet_uses.append(
                NondetUse(kind="os.getenv", line=node.lineno)
            )
        self.generic_visit(node)

    def visit_Attribute(self, node: ast.Attribute) -> None:
        if (
            isinstance(node.value, ast.Name)
            and node.value.id == "os"
            and node.attr == "environ"
        ):
            self.module.nondet_uses.append(
                NondetUse(kind="os.environ", line=node.lineno)
            )
        self.generic_visit(node)

    # -- scope / branch tracking ------------------------------------------

    def _visit_scoped(self, node) -> None:
        self._depth += 1
        self.generic_visit(node)
        self._depth -= 1

    visit_FunctionDef = _visit_scoped
    visit_AsyncFunctionDef = _visit_scoped
    visit_ClassDef = _visit_scoped

    def _visit_test(self, test: ast.expr) -> None:
        self._branch_depth += 1
        self.visit(test)
        self._branch_depth -= 1

    def visit_If(self, node: ast.If) -> None:
        self._visit_test(node.test)
        for child in node.body + node.orelse:
            self.visit(child)

    def visit_While(self, node: ast.While) -> None:
        self._visit_test(node.test)
        for child in node.body + node.orelse:
            self.visit(child)

    def visit_IfExp(self, node: ast.IfExp) -> None:
        self._visit_test(node.test)
        self.visit(node.body)
        self.visit(node.orelse)

    def visit_Assert(self, node: ast.Assert) -> None:
        self._visit_test(node.test)
        if node.msg is not None:
            self.visit(node.msg)


def build_graph(
    src_root: Path,
    *,
    nondet_modules: FrozenSet[str] = frozenset({"random"}),
) -> ImportGraph:
    """Parse every module under ``src_root`` into an :class:`ImportGraph`.

    Raises :class:`GraphError` on the first unparsable file — an
    unanalyzable tree must fail loudly (exit code 2), not partially."""
    src_root = Path(src_root)
    paths = list(discover_modules(src_root))
    names = {_module_name(src_root, p) for p in paths}
    modules: Dict[str, Module] = {}
    for path in paths:
        name = _module_name(src_root, path)
        try:
            tree = ast.parse(path.read_text(), filename=str(path))
        except SyntaxError as error:
            raise GraphError(path, f"syntax error: {error.msg} "
                                   f"(line {error.lineno})") from error
        docstring = ast.get_docstring(tree)
        docstring_line = 1
        if (
            tree.body
            and isinstance(tree.body[0], ast.Expr)
            and isinstance(tree.body[0].value, ast.Constant)
            and isinstance(tree.body[0].value.value, str)
        ):
            docstring_line = tree.body[0].lineno
        module = Module(
            name=name,
            path=path,
            is_package=path.name == "__init__.py",
            docstring=docstring,
            docstring_line=docstring_line,
        )
        _Scanner(module, names, nondet_modules).visit(tree)
        modules[name] = module
    return ImportGraph(modules)
