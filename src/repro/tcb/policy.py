"""The machine-readable trust policy: module patterns → trust status.

Trust: **advisory** — the policy *describes* the boundary for the checker
and the docs; the boundary's soundness rests on the kernel re-judging
every artifact, not on this table being right.

Three statuses partition the tree (docs/TRUSTED_BASE.md):

``trusted``
    Inside the TCB: must be correct for the final theorem to mean
    anything.  The TB checks constrain these modules — they may only
    import other trusted modules (TB001), may never reach the caching /
    disk-tier / unit-routing machinery (TB002) or any advisory module
    (TB003), and may not contain dynamic code loading (TB004) or
    nondeterminism sources (TB005).
``untrusted-but-checked``
    May be arbitrarily wrong; the trusted reparse+check path re-judges
    whatever it produces, so the worst failure is a spurious rejection.
``advisory``
    Observability, measurement, and defence-in-depth tooling whose
    output is never consulted by any verdict path.

A pattern is either an exact module name (``repro.viper.parser``) or a
subtree wildcard (``repro.viper.*`` — strict descendants only, not the
package module itself).  The most specific match wins: exact beats
wildcard, deeper wildcard beats shallower.  Docstring ``Trust:`` lines
may spell ``untrusted`` for ``untrusted-but-checked`` (the prose reads
better); :func:`normalize_status` folds the alias.
"""

from __future__ import annotations

import re
from dataclasses import dataclass
from typing import Dict, FrozenSet, Iterable, List, Optional, Tuple

#: The canonical statuses, in decreasing order of obligation.
TRUST_STATUSES: Tuple[str, ...] = ("trusted", "untrusted-but-checked", "advisory")

#: Docstring spellings folded onto canonical statuses.
_STATUS_ALIASES: Dict[str, str] = {
    "trusted": "trusted",
    "untrusted-but-checked": "untrusted-but-checked",
    "untrusted": "untrusted-but-checked",
    "advisory": "advisory",
}

#: ``Trust: **<status>**`` (the status may carry a trailing qualifier word
#: such as "infrastructure" or "front door" after the closing ``**``).
_TRUST_LINE_RE = re.compile(
    r"^Trust:\s*\*\*(?P<status>[a-z-]+)\*\*", re.MULTILINE
)


def normalize_status(status: str) -> Optional[str]:
    """Fold docstring spellings onto the canonical status, else ``None``."""
    return _STATUS_ALIASES.get(status.strip().lower())


def parse_trust_line(docstring: Optional[str]) -> Optional[str]:
    """Extract the raw status token from a module docstring, if any.

    Returns the token as written (``untrusted`` stays ``untrusted``);
    callers normalize.  ``None`` means no ``Trust:`` line at all."""
    if not docstring:
        return None
    match = _TRUST_LINE_RE.search(docstring)
    return match.group("status") if match else None


@dataclass(frozen=True)
class PolicyRule:
    """One pattern → status entry."""

    pattern: str
    status: str

    def __post_init__(self) -> None:
        if self.status not in TRUST_STATUSES:
            raise ValueError(
                f"bad status {self.status!r} for {self.pattern!r} "
                f"(expected one of {TRUST_STATUSES})"
            )

    @property
    def is_wildcard(self) -> bool:
        return self.pattern.endswith(".*")

    @property
    def specificity(self) -> Tuple[int, int]:
        """Exact (1) beats wildcard (0); deeper beats shallower."""
        base = self.pattern[:-2] if self.is_wildcard else self.pattern
        return (0 if self.is_wildcard else 1, base.count(".") + 1)

    def matches(self, module: str) -> bool:
        if self.is_wildcard:
            return module.startswith(self.pattern[:-2] + ".")
        return module == self.pattern


@dataclass(frozen=True)
class TrustPolicy:
    """An ordered rule set with most-specific-wins lookup.

    ``forbidden_for_trusted`` names the caching / disk-tier /
    unit-routing modules that no trusted module may reach even
    transitively (TB002): reaching them would quietly move the cache
    into the TCB, which is exactly the drift this checker exists to
    stop.  ``nondet_modules`` are the stdlib nondeterminism sources
    banned from trusted modules (TB005)."""

    rules: Tuple[PolicyRule, ...]
    forbidden_for_trusted: FrozenSet[str] = frozenset()
    nondet_modules: FrozenSet[str] = frozenset({"random"})

    def status_of(self, module: str) -> Optional[str]:
        """The most specific matching rule's status, or ``None``."""
        best: Optional[PolicyRule] = None
        for rule in self.rules:
            if not rule.matches(module):
                continue
            if best is None or rule.specificity > best.specificity:
                best = rule
        return best.status if best else None

    def modules_with_status(
        self, modules: Iterable[str], status: str
    ) -> List[str]:
        return sorted(m for m in modules if self.status_of(m) == status)

    def unmatched(self, modules: Iterable[str]) -> List[str]:
        """Modules no rule covers — policy drift, surfaced by TB007."""
        return sorted(m for m in modules if self.status_of(m) is None)

    def dead_patterns(self, modules: Iterable[str]) -> List[str]:
        """Rules matching no module — stale policy entries."""
        modules = list(modules)
        return sorted(
            rule.pattern
            for rule in self.rules
            if not any(rule.matches(m) for m in modules)
        )


def _rules(*pairs: Tuple[str, str]) -> Tuple[PolicyRule, ...]:
    return tuple(PolicyRule(pattern, status) for pattern, status in pairs)


#: The reproduction's own trust boundary, mirroring docs/TRUSTED_BASE.md.
#:
#: The trusted set is the TCB inventory: the Viper and Boogie substrates
#: that *define* the obligation, the certificate parser, the proof
#: kernel, the theorem assembler, the bounded back-end, and the two
#: frontend modules whose *definitions* (not data) the kernel consumes —
#: translation records and the background theory.  Re-export hubs
#: (package ``__init__`` modules) are untrusted-but-checked because they
#: pull in untrusted siblings; trusted code imports its dependencies
#: directly.
DEFAULT_POLICY = TrustPolicy(
    rules=_rules(
        # -- top level ----------------------------------------------------
        ("repro", "untrusted-but-checked"),
        ("repro.cli", "untrusted-but-checked"),
        ("repro.choice", "trusted"),
        # -- Viper substrate ----------------------------------------------
        ("repro.viper", "untrusted-but-checked"),
        ("repro.viper.*", "trusted"),
        ("repro.viper.pretty", "untrusted-but-checked"),
        # -- Boogie substrate ---------------------------------------------
        ("repro.boogie", "untrusted-but-checked"),
        ("repro.boogie.*", "trusted"),
        ("repro.boogie.pretty", "untrusted-but-checked"),
        ("repro.boogie.polymaps", "untrusted-but-checked"),
        # -- certification ------------------------------------------------
        ("repro.certification", "untrusted-but-checked"),
        ("repro.certification.*", "trusted"),
        ("repro.certification.tactic", "untrusted-but-checked"),
        ("repro.certification.oracle", "advisory"),
        ("repro.certification.simulation", "advisory"),
        # -- frontend (the translation being validated) --------------------
        ("repro.frontend", "untrusted-but-checked"),
        ("repro.frontend.*", "untrusted-but-checked"),
        ("repro.frontend.records", "trusted"),
        ("repro.frontend.background", "trusted"),
        # -- pipeline -----------------------------------------------------
        ("repro.pipeline", "untrusted-but-checked"),
        ("repro.pipeline.*", "untrusted-but-checked"),
        ("repro.pipeline.diagnostics", "advisory"),
        ("repro.pipeline.instrumentation", "advisory"),
        # -- serving ------------------------------------------------------
        ("repro.service", "untrusted-but-checked"),
        ("repro.service.*", "untrusted-but-checked"),
        ("repro.service.admission", "advisory"),
        ("repro.service.client", "advisory"),
        ("repro.service.loadgen", "advisory"),
        ("repro.service.metrics", "advisory"),
        # -- clustering ---------------------------------------------------
        ("repro.cluster", "untrusted-but-checked"),
        ("repro.cluster.*", "untrusted-but-checked"),
        ("repro.cluster.ring", "advisory"),
        ("repro.cluster.health", "advisory"),
        ("repro.cluster.nodes", "advisory"),
        ("repro.cluster.chaos", "advisory"),
        # -- observability / analysis / defence-in-depth -------------------
        ("repro.trace", "advisory"),
        ("repro.trace.*", "advisory"),
        ("repro.perf", "advisory"),
        ("repro.perf.*", "advisory"),
        ("repro.analysis", "advisory"),
        ("repro.analysis.*", "advisory"),
        ("repro.fuzz", "advisory"),
        ("repro.fuzz.*", "advisory"),
        ("repro.harness", "advisory"),
        ("repro.harness.*", "advisory"),
        ("repro.tcb", "advisory"),
        ("repro.tcb.*", "advisory"),
    ),
    forbidden_for_trusted=frozenset({
        "repro.pipeline.cache",
        "repro.service.diskcache",
        "repro.pipeline.units",
    }),
)
