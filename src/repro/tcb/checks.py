"""The TB001–TB008 catalog: trust-boundary checks over the import graph.

Trust: **advisory** — findings gate CI and review, never a verdict; the
kernel's re-derivation discipline holds whether or not this catalog runs.

Every check reports only provable facts about the source tree — the same
zero-false-positive discipline as :mod:`repro.analysis` — because a TB
finding fails the tier-1 suite: a speculative finding would block
legitimate changes.

``TB001`` **trusted-imports-outside-tcb** — a trusted module directly
    imports a module the policy does not mark trusted.  Closure
    containment follows by induction: if every trusted module passes
    TB001, the trusted set is import-closed.
``TB002`` **trusted-reaches-cache** — a trusted module transitively
    reaches one of the policy's forbidden modules (the artifact cache,
    the disk tier, the unit-routing machinery).  Reaching them would
    silently move the cache into the TCB — the exact drift
    docs/TRUSTED_BASE.md rule 1 ("the trusted path is never cached")
    forbids.  The closure follows *all* edges, including suppressed
    ones: a justified TB001 exemption must not open a hidden path to
    the cache.
``TB003`` **advisory-reachable-from-kernel** — an advisory module
    (tracing, analysis, metrics, …) is reachable from a trusted module.
    Advisory code observes; the kernel must not even be able to call it.
``TB004`` **dynamic-code-in-tcb** — ``eval`` / ``exec`` /
    ``__import__`` / ``importlib.import_module`` in a trusted module.
    Dynamic loading makes the import graph unsound and the TCB
    unauditable.
``TB005`` **nondeterminism-in-tcb** — a trusted module imports
    ``random``, touches ``os.environ`` / ``os.getenv``, or calls
    ``time.*()`` inside a branch condition.  The kernel must be a pure
    function of its inputs; wall-clock *measurement* (timing an already
    -made judgement) is deliberately not flagged.
``TB006`` **suppression-hygiene** — a ``# tcb: allow[CODE]`` marker
    without a justification, or a stale marker that suppresses nothing.
    Reported by the suppression layer in :mod:`repro.tcb.report`;
    TB006 findings are themselves never suppressible.
``TB007`` **trust-line** — a module with no ``Trust:`` docstring line,
    an unparsable status, a status inconsistent with the policy, or a
    module the policy does not cover at all.  This is the code ↔ policy
    half of the drift guarantee.
``TB008`` **doc-drift** — the TRUSTED_BASE.md inventory disagrees with
    the policy: a module is listed under the wrong section, or is not
    inventoried at all.  This is the docs ↔ policy half.
"""

from __future__ import annotations

import re
from dataclasses import dataclass
from pathlib import Path
from typing import Dict, List, Optional, Sequence, Tuple

from .importgraph import ImportGraph, Module
from .policy import TrustPolicy, normalize_status, parse_trust_line

# ---------------------------------------------------------------------------
# Catalog
# ---------------------------------------------------------------------------


@dataclass(frozen=True)
class TcbCheckInfo:
    """One catalog entry: stable ID, human name, severity, and hint."""

    code: str
    name: str
    summary: str
    severity: str
    hint: str


TB_CHECKS: Dict[str, TcbCheckInfo] = {
    info.code: info
    for info in (
        TcbCheckInfo(
            "TB001", "trusted-imports-outside-tcb",
            "a trusted module directly imports a module outside the "
            "trusted set",
            "error",
            "move the dependency into the TCB deliberately (policy + "
            "TRUSTED_BASE.md + Trust: line) or invert the dependency; a "
            "justified exception needs `# tcb: allow[TB001] <reason>`",
        ),
        TcbCheckInfo(
            "TB002", "trusted-reaches-cache",
            "a trusted module transitively reaches the cache / disk-tier "
            "/ unit-routing machinery",
            "error",
            "the trusted path is never cached (docs/TRUSTED_BASE.md rule "
            "1); break the import chain",
        ),
        TcbCheckInfo(
            "TB003", "advisory-reachable-from-kernel",
            "an advisory module (trace/analysis/metrics) is reachable "
            "from a trusted module",
            "error",
            "advisory code observes the kernel, never the reverse; break "
            "the import chain",
        ),
        TcbCheckInfo(
            "TB004", "dynamic-code-in-tcb",
            "eval/exec/__import__/importlib in a trusted module",
            "error",
            "the TCB must be statically auditable; replace the dynamic "
            "load with an explicit import",
        ),
        TcbCheckInfo(
            "TB005", "nondeterminism-in-tcb",
            "random / os.environ / time-derived branching in a trusted "
            "module",
            "error",
            "the kernel must be a pure function of its inputs; timing "
            "measurement is fine, branching on it is not",
        ),
        TcbCheckInfo(
            "TB006", "suppression-hygiene",
            "a `# tcb: allow[...]` marker without a reason, or one that "
            "suppresses nothing",
            "warning",
            "every exemption carries its justification inline and is "
            "deleted when the finding it excused goes away",
        ),
        TcbCheckInfo(
            "TB007", "trust-line",
            "a module whose Trust: docstring line is missing, "
            "unparsable, or inconsistent with the policy",
            "error",
            "every src/repro module carries `Trust: **trusted | "
            "untrusted-but-checked | advisory**` matching "
            "repro.tcb.policy.DEFAULT_POLICY",
        ),
        TcbCheckInfo(
            "TB008", "doc-drift",
            "the TRUSTED_BASE.md inventory disagrees with the policy",
            "error",
            "regenerate the inventory tables so every module is listed "
            "under the section matching its policy status",
        ),
    )
}

ALL_TCB_CHECK_IDS: Tuple[str, ...] = tuple(sorted(TB_CHECKS))


@dataclass(frozen=True)
class TcbFinding:
    """One trust-boundary finding, pinned to an exact file and line."""

    code: str
    message: str
    severity: str
    path: str
    line: int
    module: Optional[str] = None

    def to_dict(self) -> dict:
        payload = {
            "code": self.code,
            "message": self.message,
            "severity": self.severity,
            "path": self.path,
            "line": self.line,
        }
        if self.module is not None:
            payload["module"] = self.module
        return payload

    def render(self) -> str:
        scope = f" [{self.module}]" if self.module else ""
        return (f"{self.path}:{self.line}: {self.severity} "
                f"{self.code}{scope}: {self.message}")


def _finding(code: str, message: str, module: Optional[Module],
             path: Path, line: int) -> TcbFinding:
    return TcbFinding(
        code=code,
        message=message,
        severity=TB_CHECKS[code].severity,
        path=str(path),
        line=line,
        module=module.name if module is not None else None,
    )


# ---------------------------------------------------------------------------
# TB001–TB005: graph checks
# ---------------------------------------------------------------------------


def _first_hop_line(graph: ImportGraph, module: Module, chain: Sequence[str]) -> int:
    """The line of the import statement that begins ``chain``."""
    if len(chain) < 2:
        return 1
    for edge in module.imports:
        if edge.target == chain[1]:
            return edge.line
    return 1


def _check_import_containment(
    graph: ImportGraph, policy: TrustPolicy, trusted: Sequence[str]
) -> List[TcbFinding]:
    findings: List[TcbFinding] = []
    for name in trusted:
        module = graph.modules[name]
        for edge in module.imports:
            if edge.target not in graph.modules:
                continue  # stdlib / external: TB005 covers the banned ones
            status = policy.status_of(edge.target)
            if status == "trusted":
                continue
            findings.append(_finding(
                "TB001",
                f"trusted module imports {edge.target} "
                f"({status or 'not covered by the policy'})",
                module, module.path, edge.line,
            ))
    return findings


def _check_closure(
    graph: ImportGraph, policy: TrustPolicy, trusted: Sequence[str]
) -> List[TcbFinding]:
    findings: List[TcbFinding] = []
    advisory = {
        name for name in graph.modules
        if policy.status_of(name) == "advisory"
    }
    for name in trusted:
        module = graph.modules[name]
        closure = graph.transitive_imports(name)
        for target in sorted(closure & policy.forbidden_for_trusted):
            chain = graph.import_chain(name, target)
            findings.append(_finding(
                "TB002",
                f"trusted module reaches {target} via "
                f"{' -> '.join(chain)}",
                module, module.path, _first_hop_line(graph, module, chain),
            ))
        for target in sorted(closure & advisory):
            chain = graph.import_chain(name, target)
            findings.append(_finding(
                "TB003",
                f"advisory module {target} is reachable from the kernel "
                f"via {' -> '.join(chain)}",
                module, module.path, _first_hop_line(graph, module, chain),
            ))
    return findings


def _check_dynamic_code(
    graph: ImportGraph, trusted: Sequence[str]
) -> List[TcbFinding]:
    findings: List[TcbFinding] = []
    for name in trusted:
        module = graph.modules[name]
        for occurrence in module.dynamic_code:
            findings.append(_finding(
                "TB004",
                f"dynamic code loading ({occurrence.kind}) in a trusted "
                f"module",
                module, module.path, occurrence.line,
            ))
    return findings


def _check_nondeterminism(
    graph: ImportGraph, trusted: Sequence[str]
) -> List[TcbFinding]:
    findings: List[TcbFinding] = []
    for name in trusted:
        module = graph.modules[name]
        for use in module.nondet_uses:
            findings.append(_finding(
                "TB005",
                f"nondeterminism source ({use.kind}) in a trusted module",
                module, module.path, use.line,
            ))
    return findings


# ---------------------------------------------------------------------------
# TB007: Trust: docstring lines ↔ policy
# ---------------------------------------------------------------------------


def _check_trust_lines(
    graph: ImportGraph, policy: TrustPolicy
) -> List[TcbFinding]:
    findings: List[TcbFinding] = []
    for name in sorted(graph.modules):
        module = graph.modules[name]
        expected = policy.status_of(name)
        raw = parse_trust_line(module.docstring)
        if expected is None:
            findings.append(_finding(
                "TB007",
                "module is not covered by any policy rule",
                module, module.path, module.docstring_line,
            ))
            continue
        if raw is None:
            findings.append(_finding(
                "TB007",
                f"module docstring carries no Trust: line (policy says "
                f"{expected})",
                module, module.path, module.docstring_line,
            ))
            continue
        actual = normalize_status(raw)
        if actual is None:
            findings.append(_finding(
                "TB007",
                f"unparsable Trust: status {raw!r}",
                module, module.path, module.docstring_line,
            ))
        elif actual != expected:
            findings.append(_finding(
                "TB007",
                f"Trust: line says {actual} but the policy says "
                f"{expected}",
                module, module.path, module.docstring_line,
            ))
    return findings


# ---------------------------------------------------------------------------
# TB008: TRUSTED_BASE.md inventory ↔ policy
# ---------------------------------------------------------------------------

#: A module token inside backticks, e.g. `repro.viper.ast`.  Single-segment
#: tokens are allowed so the root package itself can be inventoried; ones
#: that name no known package root (`var`, `accept`, …) cover nothing.
_DOC_TOKEN_RE = re.compile(r"`(?P<name>[A-Za-z_][\w]*(?:\.[\w]+)*)`")

#: Inventory section headings.  The match is on the heading's first word
#: so "## Trusted (must be correct …)" classifies as trusted.
_SECTION_STATUS = (
    ("advisory", "advisory"),
    ("untrusted", "untrusted-but-checked"),
    ("trusted", "trusted"),
)


def _doc_sections(doc_text: str) -> List[Tuple[str, int, str]]:
    """``(status, line, token)`` for every module token in an inventory
    table row, tagged with its enclosing section's status."""
    tokens: List[Tuple[str, int, str]] = []
    status: Optional[str] = None
    for number, line in enumerate(doc_text.splitlines(), start=1):
        stripped = line.strip()
        if stripped.startswith("#"):
            heading = stripped.lstrip("#").strip().lower()
            status = None
            for keyword, section_status in _SECTION_STATUS:
                if heading.startswith(keyword):
                    status = section_status
                    break
            continue
        if status is None or not stripped.startswith("|"):
            continue
        for match in _DOC_TOKEN_RE.finditer(stripped):
            tokens.append((status, number, match.group("name")))
    return tokens


def _covering_token(
    name: str, tokens: Sequence[Tuple[str, int, str]]
) -> Optional[Tuple[str, int, str]]:
    """The most specific doc token mentioning ``name`` (exact match or
    package prefix), or ``None``."""
    best: Optional[Tuple[str, int, str]] = None
    for status, line, token in tokens:
        if name == token or name.startswith(token + "."):
            if best is None or len(token) > len(best[2]):
                best = (status, line, token)
    return best


def _check_doc(
    graph: ImportGraph, policy: TrustPolicy, doc_text: str, doc_path: Path
) -> List[TcbFinding]:
    findings: List[TcbFinding] = []
    tokens = _doc_sections(doc_text)
    known_roots = {name.split(".")[0] for name in graph.modules}
    # Docs ↔ tree: every in-tree token must sit in the right section.
    for status, line, token in tokens:
        if token.split(".")[0] not in known_roots:
            continue  # e.g. a stdlib or doc-only reference
        if token not in graph.modules and not any(
            name.startswith(token + ".") for name in graph.modules
        ):
            findings.append(_finding(
                "TB008",
                f"inventory lists {token}, which is not a module of the "
                f"analyzed tree",
                None, doc_path, line,
            ))
    # Tree ↔ docs: every module covered, under the right section.
    for name in sorted(graph.modules):
        expected = policy.status_of(name)
        if expected is None:
            continue  # TB007 already reports uncovered modules
        covering = _covering_token(name, tokens)
        if covering is None:
            findings.append(_finding(
                "TB008",
                f"module {name} ({expected}) is not inventoried in "
                f"{doc_path.name}",
                graph.modules[name], doc_path, 1,
            ))
        elif covering[0] != expected:
            findings.append(_finding(
                "TB008",
                f"module {name} is listed under the "
                f"{covering[0]} section (token `{covering[2]}`) but the "
                f"policy says {expected}",
                graph.modules[name], doc_path, covering[1],
            ))
    return findings


# ---------------------------------------------------------------------------
# Entry point
# ---------------------------------------------------------------------------


def run_checks(
    graph: ImportGraph,
    policy: TrustPolicy,
    *,
    doc_text: Optional[str] = None,
    doc_path: Optional[Path] = None,
) -> List[TcbFinding]:
    """Run TB001–TB005, TB007, and (when a doc is supplied) TB008.

    TB006 lives in :mod:`repro.tcb.report`: suppression hygiene can only
    be judged after suppressions have been applied to these findings.
    Results are ordered by path, then line, then code — stable for the
    corpus tests' exact-match assertions."""
    trusted = policy.modules_with_status(graph.modules, "trusted")
    findings: List[TcbFinding] = []
    findings += _check_import_containment(graph, policy, trusted)
    findings += _check_closure(graph, policy, trusted)
    findings += _check_dynamic_code(graph, trusted)
    findings += _check_nondeterminism(graph, trusted)
    findings += _check_trust_lines(graph, policy)
    if doc_text is not None and doc_path is not None:
        findings += _check_doc(graph, policy, doc_text, doc_path)
    findings.sort(key=lambda f: (f.path, f.line, f.code, f.message))
    return findings
