"""Nondeterminism plumbing shared by the Viper and Boogie semantics.

Trust: **trusted** — the oracle protocol threads through the trusted
executable semantics; all_executions bounds the kernel's quantifiers.

Both semantics contain nondeterministic steps (Viper: scoped-variable
declarations, call-target havoc, and the heap havoc of ``exhale``; Boogie:
``havoc`` and nondeterministic branching ``if (*)``).  The executable
semantics thread a :class:`ChoiceOracle` through execution; every
nondeterministic step asks the oracle to pick from a candidate list.

Three oracle families cover all uses:

* :class:`DefaultOracle` — deterministic, always picks the first candidate
  (typed default values).  Used for quick smoke execution.
* :class:`SeededOracle` — pseudo-random but reproducible.  Used by the
  differential-testing oracle of the certification package.
* :func:`all_executions` — exhaustively enumerates every path through the
  choice tree (bounded by the candidate lists), turning the relational
  semantics into a checkable finite set of outcomes.  This is what the test
  suite uses to validate the once-and-for-all simulation lemmas.
"""

from __future__ import annotations

import random  # tcb: allow[TB005] seeded, reproducible: the trusted path uses DefaultOracle; SeededOracle exists for the untrusted differential oracle
from typing import Callable, Iterator, List, Sequence, TypeVar

T = TypeVar("T")
R = TypeVar("R")


class ChoiceOracle:
    """Resolves nondeterministic choices during execution."""

    def choose(self, candidates: Sequence[T], label: str = "") -> T:
        raise NotImplementedError


class DefaultOracle(ChoiceOracle):
    """Always selects the first candidate (deterministic execution)."""

    def choose(self, candidates: Sequence[T], label: str = "") -> T:
        if not candidates:
            raise ValueError(f"no candidates for choice {label!r}")
        return candidates[0]


class SeededOracle(ChoiceOracle):
    """Selects pseudo-randomly with a reproducible seed."""

    def __init__(self, seed: int):
        self._rng = random.Random(seed)

    def choose(self, candidates: Sequence[T], label: str = "") -> T:
        if not candidates:
            raise ValueError(f"no candidates for choice {label!r}")
        return candidates[self._rng.randrange(len(candidates))]


class _TrailOracle(ChoiceOracle):
    """Replays a fixed prefix of choices, then extends it with first picks.

    Used by :func:`all_executions` to walk the full choice tree without the
    executed code being aware of the enumeration.
    """

    def __init__(self, trail: List[int]):
        self._trail = trail
        self._position = 0
        self.arities: List[int] = []

    def choose(self, candidates: Sequence[T], label: str = "") -> T:
        if not candidates:
            raise ValueError(f"no candidates for choice {label!r}")
        self.arities.append(len(candidates))
        if self._position < len(self._trail):
            index = self._trail[self._position]
        else:
            index = 0
            self._trail.append(0)
        self._position += 1
        return candidates[index]


class ExplosionLimit(Exception):
    """Raised when exhaustive enumeration exceeds its path budget."""


def all_executions(
    run: Callable[[ChoiceOracle], R], max_paths: int = 200_000
) -> Iterator[R]:
    """Enumerate the results of ``run`` over every resolution of its choices.

    ``run`` must be deterministic apart from the oracle it is given.  The
    enumeration is depth-first over the choice tree; ``max_paths`` bounds the
    number of complete paths to protect against state-space blow-ups.
    """
    trail: List[int] = []
    paths = 0
    while True:
        oracle = _TrailOracle(trail)
        yield run(oracle)
        paths += 1
        if paths >= max_paths:
            raise ExplosionLimit(f"exceeded {max_paths} execution paths")
        # Advance the trail to the next unexplored branch (odometer-style).
        while trail and trail[-1] + 1 >= oracle.arities[len(trail) - 1]:
            trail.pop()
            oracle.arities.pop()
        if not trail:
            return
        trail[-1] += 1
