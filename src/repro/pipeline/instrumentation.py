"""Per-stage instrumentation: timings, artifact sizes, counters, observers.

The paper's evaluation (Tab. 1–6) — like its predecessor on validating
Boogie's VC generation (CAV 2021) — reports *per-stage* costs: translation
time, certificate generation time, and the independent check time, next to
artifact sizes (Viper LoC, Boogie LoC, certificate LoC).  This module makes
those measurements first-class: every pipeline stage runs under a
:class:`PipelineInstrumentation` that records a :class:`StageRecord` per
execution, maintains counters (cache hits/misses, skipped stages), and
notifies registered observers.  The whole record set exports as JSON for
the ``BENCH_*.json`` performance trajectory.

``FileMetrics`` in :mod:`repro.harness.runner` is *derived* from these
records instead of sprinkling ``perf_counter`` calls through the harness,
and so are the per-request trace spans of :mod:`repro.trace` — records
carry monotonic start offsets plus a wall-clock anchor so one timing
source feeds both the paper tables and the trace exporters.

Two timing fields per record keep the accounting honest: ``seconds`` is
the stage's own work, and ``cache_lookup_seconds`` is wall-time spent
probing caches while the stage ran (per-unit key lookups, disk-envelope
loads).  Earlier versions folded lookups into ``seconds``, so a
fully-warm run reported pure lookup time as translate "work"; the split
makes ``bench --json`` per-stage numbers and trace spans agree.

Trust: **advisory** — instrumentation observes the pipeline; nothing in
the trusted reparse+check path reads it (docs/TRUSTED_BASE.md).
"""

from __future__ import annotations

import json
import time
from contextlib import contextmanager
from dataclasses import dataclass, field
from typing import Callable, Dict, Iterator, List, Optional


@dataclass
class StageRecord:
    """One execution (or skip) of one pipeline stage.

    ``seconds`` is the stage's own work; ``cache_lookup_seconds`` is the
    wall-time spent probing caches during the stage (kept separate so a
    warm run does not report lookup latency as stage work).  ``started``
    is a ``perf_counter`` offset convertible to wall-clock through the
    owning instrumentation's :meth:`PipelineInstrumentation.to_unix`.
    """

    stage: str
    seconds: float = 0.0
    skipped: bool = False
    cached: bool = False
    #: Artifact sizes attributed to this stage (e.g. ``boogie_loc``).
    artifacts: Dict[str, int] = field(default_factory=dict)
    #: Wall-time spent in cache probes while this stage ran.
    cache_lookup_seconds: float = 0.0
    #: ``perf_counter`` at stage start (None for synthesised records).
    started: Optional[float] = None

    def to_dict(self) -> Dict[str, object]:
        record: Dict[str, object] = {"stage": self.stage, "seconds": self.seconds}
        if self.skipped:
            record["skipped"] = True
        if self.cached:
            record["cached"] = True
        if self.artifacts:
            record["artifacts"] = dict(self.artifacts)
        if self.cache_lookup_seconds:
            record["cache_lookup_seconds"] = self.cache_lookup_seconds
        return record


@dataclass
class UnitRecord:
    """One method unit's outcome in one untrusted stage.

    ``reused`` units were served from the cache (``tier`` says which
    tier); rebuilt units carry the wall-time their stage actually spent.
    The trusted reparse/check stages never produce unit records — they
    run fresh per method on every invocation and are accounted as whole
    stages.
    """

    method: str
    stage: str
    seconds: float = 0.0
    reused: bool = False
    #: Which cache tier served a reused unit ("memory"/"disk"); "fresh"
    #: for rebuilt units.
    tier: str = "fresh"
    #: ``perf_counter`` when the unit's work began.  Recorded as
    #: ``now - seconds`` at record time, which is exact for serial unit
    #: execution and an honest approximation under ``--unit-jobs``
    #: fan-out (child processes report only their own duration).
    started: Optional[float] = None

    def to_dict(self) -> Dict[str, object]:
        record: Dict[str, object] = {
            "method": self.method,
            "stage": self.stage,
            "seconds": self.seconds,
        }
        if self.reused:
            record["reused"] = True
            record["tier"] = self.tier
        return record


#: An observer receives each StageRecord as it is finalised.
Observer = Callable[[StageRecord], None]


class PipelineInstrumentation:
    """Collects stage records, counters, and artifact sizes for one run.

    The object is cheap; create one per pipeline invocation (the harness
    creates one per corpus file).  Observers registered via
    :meth:`add_observer` are called synchronously after every stage.
    """

    def __init__(self) -> None:
        self.records: List[StageRecord] = []
        self.unit_records: List[UnitRecord] = []
        self.counters: Dict[str, int] = {}
        self._observers: List[Observer] = []
        # Wall-clock anchor: pairs one time.time() reading with one
        # perf_counter() reading so monotonic start offsets convert to
        # epoch seconds (to_unix) — cross-process trace alignment needs
        # a shared clock, and perf_counter epochs differ per process.
        self._epoch_unix = time.time()
        self._epoch_perf = time.perf_counter()
        # Stack of records for stages currently executing, so nested
        # cache probes attribute their wall-time to the right stage.
        self._active: List[StageRecord] = []

    # -- recording ---------------------------------------------------------

    @contextmanager
    def stage(self, name: str) -> Iterator[StageRecord]:
        """Time one stage execution; use as ``with inst.stage('translate'):``."""
        record = StageRecord(stage=name)
        start = time.perf_counter()
        record.started = start
        self._active.append(record)
        try:
            yield record
        finally:
            self._active.pop()
            elapsed = time.perf_counter() - start
            # Stage work excludes cache-probe wall-time: lookups made
            # during the stage accrue to cache_lookup_seconds instead, so
            # a warm run does not report lookup latency as stage work.
            record.seconds = max(0.0, elapsed - record.cache_lookup_seconds)
            self._finalise(record)
            self.increment(f"stage.{name}.runs")

    def record_skip(self, name: str, cached: bool = False) -> StageRecord:
        """Record that a stage was skipped (e.g. served from the cache)."""
        record = StageRecord(
            stage=name, skipped=True, cached=cached, started=time.perf_counter()
        )
        self._finalise(record)
        self.increment(f"stage.{name}.skipped")
        return record

    @contextmanager
    def cache_lookup(self) -> Iterator[None]:
        """Time a cache probe, attributing it to the enclosing stage.

        Outside any stage (e.g. the service worker's disk-envelope loads
        that run before the first stage), the time lands on a synthetic
        ``cache_lookup`` record so it still shows up in totals and traces.
        """
        start = time.perf_counter()
        try:
            yield
        finally:
            self.record_cache_lookup(time.perf_counter() - start, started=start)

    def record_cache_lookup(
        self, seconds: float, started: Optional[float] = None
    ) -> None:
        """Attribute cache-probe wall-time (see :meth:`cache_lookup`)."""
        if self._active:
            self._active[-1].cache_lookup_seconds += seconds
        else:
            record = StageRecord(
                stage="cache_lookup",
                skipped=True,
                cache_lookup_seconds=seconds,
                started=started if started is not None else time.perf_counter(),
            )
            self._finalise(record)
        self.increment("cache_lookup.probes")

    def record_unit(
        self,
        method: str,
        stage: str,
        seconds: float = 0.0,
        reused: bool = False,
        tier: str = "fresh",
    ) -> UnitRecord:
        """Record one method unit's outcome in one untrusted stage."""
        record = UnitRecord(
            method=method, stage=stage, seconds=seconds, reused=reused, tier=tier,
            started=time.perf_counter() - seconds,
        )
        self.unit_records.append(record)
        self.increment(f"unit.{stage}.{'reused' if reused else 'rebuilt'}")
        return record

    def artifact(self, stage: str, name: str, value: int) -> None:
        """Attach an artifact size to the most recent record of ``stage``."""
        for record in reversed(self.records):
            if record.stage == stage:
                record.artifacts[name] = value
                return
        # No record yet (artifact measured outside a stage): synthesise one.
        record = StageRecord(stage=stage, skipped=True)
        record.artifacts[name] = value
        self.records.append(record)

    def increment(self, counter: str, amount: int = 1) -> int:
        """Bump a named counter and return its new value."""
        value = self.counters.get(counter, 0) + amount
        self.counters[counter] = value
        return value

    def add_observer(self, observer: Observer) -> None:
        self._observers.append(observer)

    def _finalise(self, record: StageRecord) -> None:
        self.records.append(record)
        for observer in self._observers:
            observer(record)

    # -- queries -----------------------------------------------------------

    def stage_seconds(self, *names: str) -> float:
        """Total wall-time spent in the named stage(s) (0.0 if never run)."""
        wanted = set(names)
        return sum(r.seconds for r in self.records if r.stage in wanted)

    def stage_ran(self, name: str) -> bool:
        """Whether the stage actually executed (not just skipped)."""
        return self.counters.get(f"stage.{name}.runs", 0) > 0

    def stage_skipped(self, name: str) -> bool:
        return self.counters.get(f"stage.{name}.skipped", 0) > 0

    def artifact_sizes(self) -> Dict[str, int]:
        """All recorded artifact sizes, flattened (later stages win ties)."""
        sizes: Dict[str, int] = {}
        for record in self.records:
            sizes.update(record.artifacts)
        return sizes

    def total_seconds(self) -> float:
        """Wall-clock across all stages, cache probes included."""
        return sum(r.seconds + r.cache_lookup_seconds for r in self.records)

    def cache_lookup_seconds(self, *names: str) -> float:
        """Cache-probe wall-time, optionally restricted to named stages."""
        wanted = set(names)
        return sum(
            r.cache_lookup_seconds
            for r in self.records
            if not wanted or r.stage in wanted
        )

    def to_unix(self, perf_time: float) -> float:
        """Convert a ``perf_counter`` offset to epoch seconds."""
        return self._epoch_unix + (perf_time - self._epoch_perf)

    def unit_cache_summary(self) -> Dict[str, object]:
        """Per-method reuse accounting across the untrusted stages.

        A method counts as *reused* only when every recorded untrusted
        stage served it from the cache; one fresh stage makes it
        *rebuilt*.  This is the summary the CLI prints, ``bench --json``
        embeds, and the CI incremental-smoke job asserts on.
        """
        per_method: Dict[str, Dict[str, object]] = {}
        for record in self.unit_records:
            entry = per_method.setdefault(
                record.method, {"stages": {}, "reused": True, "tier": record.tier}
            )
            entry["stages"][record.stage] = {
                "seconds": record.seconds,
                "reused": record.reused,
                "tier": record.tier,
            }
            if not record.reused:
                entry["reused"] = False
                entry["tier"] = "fresh"
        reused = sorted(m for m, e in per_method.items() if e["reused"])
        rebuilt = sorted(m for m, e in per_method.items() if not e["reused"])
        tiers: Dict[str, int] = {}
        for entry in per_method.values():
            tiers[entry["tier"]] = tiers.get(entry["tier"], 0) + 1
        return {
            "reused": len(reused),
            "rebuilt": len(rebuilt),
            "reused_methods": reused,
            "rebuilt_methods": rebuilt,
            "tiers": tiers,
            "methods": per_method,
        }

    # -- export ------------------------------------------------------------

    def to_dict(self) -> Dict[str, object]:
        payload: Dict[str, object] = {
            "stages": [r.to_dict() for r in self.records],
            "counters": dict(sorted(self.counters.items())),
            "artifacts": self.artifact_sizes(),
            "total_seconds": self.total_seconds(),
            "cache_lookup_seconds": self.cache_lookup_seconds(),
        }
        if self.unit_records:
            payload["units"] = [r.to_dict() for r in self.unit_records]
            payload["unit_cache"] = self.unit_cache_summary()
        return payload

    def to_json(self, indent: Optional[int] = 2) -> str:
        return json.dumps(self.to_dict(), indent=indent, sort_keys=False)
