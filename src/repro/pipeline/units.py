"""Method compilation units: the granularity of incremental certification.

Trust: **untrusted-but-checked** — unit digests and dependency maps only
*route* reuse of untrusted artifacts; every assembled program is
reparsed against the current source and kernel-checked fresh.

The paper's proof generation is inherently per-method — the kernel checks
one forward-simulation certificate per Viper method, and the only
cross-method coupling is the C1/C2 split of Fig. 10: a call site omits
well-definedness checks because the *callee's spec* was independently
checked well-formed (Sec. 4.2).  The translation of a method body therefore
depends on exactly two things:

* the method's own text (signature, spec, body), and
* the **interfaces** of the methods it transitively calls — name,
  signature, pre, post — never their bodies.

This module makes that dependency structure explicit.  Each method becomes
a :class:`MethodUnit` carrying

* a **body digest** — SHA-256 of the canonical pretty-printed method
  (spec included, so a spec edit invalidates the unit itself), and
* an **interface digest** — SHA-256 of just the caller-visible surface,

plus the direct callee map.  :func:`unit_cache_key` folds a unit's body
digest together with the interface digests of its *transitive* callee
closure, the program's field declarations (the background theory), and the
translation options into one content-addressed key.  The consequences are
exactly the incremental-invalidation story:

* editing a callee's **body** leaves every caller's key unchanged — only
  the edited unit rebuilds;
* editing a callee's **pre/post** changes its interface digest, which
  appears in the key of the unit itself and of every transitive caller —
  all of them rebuild;
* **renaming** a method makes former callers' callees unresolvable; the
  key records a ``missing:`` marker in place of the vanished interface,
  so every former caller is invalidated too.

Digests are computed over the *desugared* AST (what the translator
consumes) via its canonical structural serialisation (``repr``; the
``pos`` fields are ``repr=False``), so whitespace- and position-only
edits invalidate nothing.  The serialisation is deliberately structural
rather than textual: the certificate's proof-tree shape follows the AST
shape (``SEQ-SIM`` mirrors ``Seq`` nesting, ``INH-SEP-SIM`` mirrors
``SepConj`` nesting), and the pretty-printer cannot distinguish
association — two methods can print identically yet need different
certificates, and keying on text would serve the wrong one.

Everything here is **untrusted**: unit keys route cache lookups, but the
trusted reparse+check path re-validates every certificate it is handed,
fresh, per method (docs/TRUSTED_BASE.md).
"""

from __future__ import annotations

import dataclasses
import hashlib
import json
from dataclasses import dataclass
from typing import Dict, FrozenSet, List, Optional, Set, Tuple, TYPE_CHECKING

from ..viper.ast import If, MethodCall, MethodDecl, Program, Seq, Stmt
from ..viper.pretty import pretty_assertion

if TYPE_CHECKING:  # pragma: no cover - typing-only import cycle guard
    from ..frontend import TranslationOptions


def _sha256(text: str) -> str:
    return hashlib.sha256(text.encode("utf-8")).hexdigest()


def method_interface_text(method: MethodDecl) -> str:
    """The canonical caller-visible surface of a method.

    Name, typed signature, pre, post — the exact slice of the callee that
    the translation of a call site consults (Sec. 4.2): the precondition is
    exhaled, the postcondition inhaled, both without wd checks *because*
    the callee's C1 component checked them well-formed.  The body is
    deliberately absent.
    """
    args = ", ".join(f"{name}: {typ}" for name, typ in method.args)
    rets = ", ".join(f"{name}: {typ}" for name, typ in method.returns)
    return "\n".join(
        [
            f"method {method.name}({args}) returns ({rets})",
            f"  requires {pretty_assertion(method.pre)}",
            f"  ensures {pretty_assertion(method.post)}",
        ]
    )


def interface_digest(method: MethodDecl) -> str:
    """SHA-256 of the structural caller-visible surface.

    Hashes the ``repr`` of (name, signature, pre, post) rather than
    :func:`method_interface_text`: assertion *tree shape* (``SepConj``
    association) determines the caller's ``INH-SEP-SIM``/``EXH`` proof
    structure at the call site, and pretty-printed text cannot tell
    ``(A && B) && C`` from ``A && (B && C)``.
    """
    return _sha256(
        repr((method.name, method.args, method.returns, method.pre, method.post))
    )


def body_digest(method: MethodDecl) -> str:
    """SHA-256 of the full structural method serialisation (spec *and* body).

    The spec is part of the body digest on purpose: a pre/post edit must
    invalidate the unit itself, not only its callers.  ``repr`` excludes
    the position fields (``repr=False``), so position- and
    whitespace-only edits leave the digest unchanged while any tree-shape
    change — even one the pretty-printer cannot render distinctly —
    produces a fresh digest.
    """
    return _sha256(repr(method))


def stmt_callees(stmt: Optional[Stmt]) -> FrozenSet[str]:
    """The method names called (directly) by a statement tree."""
    if stmt is None:
        return frozenset()
    if isinstance(stmt, MethodCall):
        return frozenset({stmt.method})
    if isinstance(stmt, Seq):
        return stmt_callees(stmt.first) | stmt_callees(stmt.second)
    if isinstance(stmt, If):
        return stmt_callees(stmt.then) | stmt_callees(stmt.otherwise)
    return frozenset()


@dataclass(frozen=True)
class MethodUnit:
    """One method as a compilation unit: digests plus direct dependencies."""

    name: str
    interface_digest: str
    body_digest: str
    #: Direct callee names, sorted (the dependency map's edges).
    callees: Tuple[str, ...]


#: The per-program unit map, in declaration order.
UnitMap = Dict[str, MethodUnit]


def extract_units(program: Program) -> UnitMap:
    """Build the unit map for a (desugared, typechecked) program."""
    units: UnitMap = {}
    for method in program.methods:
        units[method.name] = MethodUnit(
            name=method.name,
            interface_digest=interface_digest(method),
            body_digest=body_digest(method),
            callees=tuple(sorted(stmt_callees(method.body))),
        )
    return units


def transitive_callees(units: UnitMap, name: str) -> FrozenSet[str]:
    """All unit names reachable through calls from ``name`` (self excluded
    unless recursive); unresolvable callee names are included as-is so the
    caller can observe dangling edges."""
    seen: Set[str] = set()
    frontier: List[str] = list(units[name].callees)
    while frontier:
        callee = frontier.pop()
        if callee in seen:
            continue
        seen.add(callee)
        if callee in units:
            frontier.extend(units[callee].callees)
    return frozenset(seen)


def callers_of(units: UnitMap, name: str) -> FrozenSet[str]:
    """All units whose transitive callee closure contains ``name``."""
    return frozenset(
        caller
        for caller in units
        if name in transitive_callees(units, caller)
    )


def fields_digest(program: Program) -> str:
    """SHA-256 over the field declarations (the background theory input).

    Every unit's translation consults the program's fields — the heap/mask
    encoding declares one constant per field — so the field list is part
    of every unit key.
    """
    decls = sorted(f"{f.name}: {f.typ}" for f in program.fields)
    return _sha256("\n".join(decls))


def options_digest(options: Optional["TranslationOptions"]) -> str:
    """A stable hex digest of a :class:`TranslationOptions` value.

    The options dataclass is serialised to canonical JSON (sorted keys)
    before hashing, so the digest survives process restarts and field
    reordering — unlike Python's randomised ``hash()``.  Shared with the
    service's disk tier (:mod:`repro.service.diskcache`), so the two
    layers can never disagree about what "same options" means.
    """
    if options is None:
        from .cache import _default_options

        options = _default_options()
    payload = json.dumps(dataclasses.asdict(options), sort_keys=True)
    return _sha256(payload)


def unit_cache_key(
    unit: MethodUnit,
    units: UnitMap,
    program_fields_digest: str,
    opts_digest: str,
) -> str:
    """The content-addressed key of one unit's untrusted artifacts.

    Folds together, in a fixed order:

    * the unit's body digest,
    * the interface digest of every method in its transitive callee
      closure, sorted by name — with a ``missing:<name>`` marker when a
      callee does not resolve (so renames invalidate former callers),
    * the field-declaration digest (background theory), and
    * the options digest.
    """
    parts = ["unit-key-v1", unit.body_digest]
    for callee in sorted(transitive_callees(units, unit.name)):
        if callee in units:
            parts.append(f"{callee}={units[callee].interface_digest}")
        else:
            parts.append(f"missing:{callee}")
    parts.append(f"fields={program_fields_digest}")
    parts.append(f"options={opts_digest}")
    return _sha256("\n".join(parts))


def unit_keys(
    units: UnitMap,
    program: Program,
    options: "TranslationOptions",
) -> Dict[str, str]:
    """Compute the cache key of every unit in one pass."""
    fdigest = fields_digest(program)
    odigest = options_digest(options)
    return {
        name: unit_cache_key(unit, units, fdigest, odigest)
        for name, unit in units.items()
    }
