"""Structured diagnostics for the staged pipeline.

Trust: **advisory** — diagnostics shape error *messages*, never
verdicts; a wrong hint misleads a reader, not the kernel.

The substrate layers raise their own exception types (``ViperSyntaxError``,
``ViperTypeError``, ``TranslationError``, ``CertificateParseError``, …), and
library callers that use those layers directly keep seeing them unchanged.
When the *pipeline* drives the flow on behalf of a user-facing entry point
(the CLI, the harness), those bare exceptions are wrapped into a
:class:`PipelineError` carrying

* the **stage** that failed (``parse``, ``typecheck``, ``translate``, …),
* the **source location**, when the underlying error knows one,
* a **recovery hint** telling the user what to do about it.

The wrapped original exception is preserved as ``__cause__`` (and as
``.diagnostic.cause``), so nothing is lost — only organised.
"""

from __future__ import annotations

import re
from dataclasses import dataclass, field
from typing import Optional, Tuple, Type


@dataclass(frozen=True)
class SourceLocation:
    """A 1-based position in the Viper source text."""

    line: int
    column: int = 0

    def __str__(self) -> str:
        if self.column:
            return f"{self.line}:{self.column}"
        return str(self.line)


@dataclass
class Diagnostic:
    """One structured problem report emitted by a pipeline stage.

    ``code`` is a stable machine-readable identifier (e.g. the analyzer's
    ``VPR00x`` check IDs); empty for diagnostics that predate codes, so all
    existing constructor calls keep working unchanged.
    """

    stage: str
    message: str
    location: Optional[SourceLocation] = None
    hint: str = ""
    severity: str = "error"
    cause: Optional[BaseException] = field(default=None, repr=False)
    code: str = ""

    def render(self) -> str:
        """A human-readable, single-block rendering for the CLI."""
        where = f" at {self.location}" if self.location else ""
        code = f" {self.code}" if self.code else ""
        lines = [f"{self.severity}[{self.stage}]{code}{where}: {self.message}"]
        if self.hint:
            lines.append(f"  hint: {self.hint}")
        return "\n".join(lines)

    def to_dict(self) -> dict:
        """JSON-ready rendering (used by ``repro lint --json`` and the
        service's 422 payloads)."""
        payload = {
            "stage": self.stage,
            "severity": self.severity,
            "message": self.message,
        }
        if self.code:
            payload["code"] = self.code
        if self.location is not None:
            payload["line"] = self.location.line
            if self.location.column:
                payload["column"] = self.location.column
        if self.hint:
            payload["hint"] = self.hint
        return payload


class PipelineError(Exception):
    """A stage of the pipeline failed.

    Subclasses exist per failure category so callers can discriminate
    without string matching; all of them carry a :class:`Diagnostic`.
    """

    def __init__(self, diagnostic: Diagnostic):
        super().__init__(diagnostic.render())
        self.diagnostic = diagnostic

    @property
    def stage(self) -> str:
        return self.diagnostic.stage

    @property
    def location(self) -> Optional[SourceLocation]:
        return self.diagnostic.location

    @property
    def hint(self) -> str:
        return self.diagnostic.hint


class ParseError(PipelineError):
    """The Viper source (or a serialised artifact) did not parse."""


class TypecheckError(PipelineError):
    """The Viper program failed type or scope checking."""


class TranslateError(PipelineError):
    """The translation rejected the program (outside the supported subset)."""


class CertificationError(PipelineError):
    """Certificate generation or checking failed structurally."""


#: Recovery hints per pipeline stage — what a user should try next.
_STAGE_HINTS = {
    "parse": "fix the syntax near the reported location; see the supported "
             "grammar in README.md (Scope)",
    "desugar": "the loop/old/new desugaring rejected the program; check that "
               "loop invariants and old() expressions are well-formed",
    "typecheck": "declare every variable/field with a matching type; run "
                 "`repro translate FILE` for the full type report",
    "analyze": "the static analyzer found likely defects; run `repro lint "
               "FILE` for the full report, or pass --no-analyze to skip",
    "translate": "the program uses a construct outside the supported Viper "
                 "subset (see README.md, Scope)",
    "generate": "certificate generation failed — this indicates a translator/"
                "tactic bug; re-run with --oracle to localise it",
    "render": "the certificate could not be serialised; please report this",
    "reparse": "the certificate text is corrupt; regenerate it with "
               "`repro certify FILE -o FILE.cert`",
    "check": "the kernel rejected the certificate; the translation is not "
             "validated for this program",
}

#: Exception-class → PipelineError subclass, by stage category.
_STAGE_ERROR_CLASS = {
    "parse": ParseError,
    "desugar": TranslateError,
    "typecheck": TypecheckError,
    "analyze": TypecheckError,
    "translate": TranslateError,
    "generate": CertificationError,
    "render": CertificationError,
    "reparse": ParseError,
    "check": CertificationError,
}

_LINE_COL_RE = re.compile(r"^(\d+):(\d+):")


def _location_of(error: BaseException) -> Optional[SourceLocation]:
    """Extract a source location from a substrate exception, if it has one."""
    line = getattr(error, "line", None)
    column = getattr(error, "column", None)
    if isinstance(line, int):
        return SourceLocation(line, column if isinstance(column, int) else 0)
    match = _LINE_COL_RE.match(str(error))
    if match:
        return SourceLocation(int(match.group(1)), int(match.group(2)))
    return None


def wrap_exception(stage: str, error: BaseException) -> PipelineError:
    """Wrap a substrate exception into the matching :class:`PipelineError`.

    The resulting error carries the stage name, the extracted source
    location (when available), and the stage's recovery hint; the original
    exception is preserved for ``raise ... from``.
    """
    code = ""
    findings = getattr(error, "findings", None)
    if findings:
        errors = [f for f in findings if getattr(f, "severity", "") == "error"]
        head = errors[0] if errors else findings[0]
        code = getattr(head, "code", "") or ""
    diagnostic = Diagnostic(
        stage=stage,
        message=str(error) or error.__class__.__name__,
        location=_location_of(error),
        hint=_STAGE_HINTS.get(stage, ""),
        cause=error,
        code=code,
    )
    error_class: Type[PipelineError] = _STAGE_ERROR_CLASS.get(stage, PipelineError)
    return error_class(diagnostic)


def wrappable_exceptions() -> Tuple[Type[BaseException], ...]:
    """The substrate exception types the pipeline knows how to wrap.

    Deliberately excludes programming errors (``AttributeError`` & co.),
    which should surface as tracebacks, not diagnostics.
    """
    from ..analysis.report import AnalysisError
    from ..certification import CertificateParseError, CheckError, ProofGenError
    from ..certification.exprcorr import CorrespondenceError
    from ..frontend import TranslationError
    from ..viper import OldExprError, ViperSyntaxError, ViperTypeError

    return (
        ViperSyntaxError,
        ViperTypeError,
        OldExprError,
        TranslationError,
        AnalysisError,
        ProofGenError,
        CertificateParseError,
        CheckError,
        CorrespondenceError,
        ValueError,
    )
