"""The staged pipeline: the single source of truth for the end-to-end flow.

``repro.pipeline`` owns the paper's workflow —

    parse → desugar → typecheck → translate → generate → render
          → reparse → check

— as an explicit stage graph (:mod:`~repro.pipeline.stages`) with

* structured diagnostics carrying stage, location, and recovery hint
  (:mod:`~repro.pipeline.diagnostics`),
* per-stage instrumentation: wall-time, artifact sizes, counters,
  JSON-exportable (:mod:`~repro.pipeline.instrumentation`),
* a content-addressed artifact cache keyed by ``(source digest, options)``
  for the untrusted translate/generate stages
  (:mod:`~repro.pipeline.cache`),
* a parallel corpus executor with deterministic ordering and serial
  fallback (:mod:`~repro.pipeline.executor`).

Every entry point — :func:`repro.translate_source`,
:func:`repro.certify_source`, ``repro.cli``, and ``repro.harness`` — is a
thin wrapper over :func:`run_pipeline`.
"""

from .cache import (  # noqa: F401
    ArtifactCache,
    CacheEntry,
    CacheKey,
    CacheStats,
    cache_key,
    default_cache,
    reset_default_cache,
    source_digest,
)
from .diagnostics import (  # noqa: F401
    CertificationError,
    Diagnostic,
    ParseError,
    PipelineError,
    SourceLocation,
    TranslateError,
    TypecheckError,
    wrap_exception,
)
from .executor import (  # noqa: F401
    default_jobs,
    parallel_map,
    resolve_jobs,
)
from .instrumentation import (  # noqa: F401
    PipelineInstrumentation,
    StageRecord,
)
from .stages import (  # noqa: F401
    certify_source,
    make_context,
    PipelineContext,
    resume_pipeline,
    run_pipeline,
    run_stage,
    Stage,
    stage_index,
    STAGE_NAMES,
    STAGES,
    translate_source,
)
