"""The staged pipeline: the single source of truth for the end-to-end flow.

Trust: **untrusted-but-checked** — the pipeline orchestrates untrusted
stages whose outputs the trusted ``reparse`` + ``check`` path re-judges
on every run; a routing or caching bug here wastes work or causes a
spurious rejection, never a false acceptance (docs/TRUSTED_BASE.md).

``repro.pipeline`` owns the paper's workflow —

    parse → desugar → typecheck → units → analyze → translate → generate
          → render → reparse → check

— as an explicit stage graph (:mod:`~repro.pipeline.stages`) with

* structured diagnostics carrying stage, location, and recovery hint
  (:mod:`~repro.pipeline.diagnostics`),
* per-stage *and per-method-unit* instrumentation: wall-time, artifact
  sizes, counters, JSON-exportable
  (:mod:`~repro.pipeline.instrumentation`),
* method compilation units — the granularity of incremental work: body
  and interface digests plus the callee-dependency map
  (:mod:`~repro.pipeline.units`),
* a content-addressed artifact cache with whole-program entries keyed by
  ``(source digest, options)`` and a per-unit tier keyed by
  ``(body digest, callee interface digests, options digest)`` for the
  untrusted translate/generate/render stages
  (:mod:`~repro.pipeline.cache`),
* a parallel executor with deterministic ordering and serial fallback,
  used both across corpus files and across method units within one file
  (:mod:`~repro.pipeline.executor`).

Every entry point — :func:`repro.translate_source`,
:func:`repro.certify_source`, ``repro.cli``, and ``repro.harness`` — is a
thin wrapper over :func:`run_pipeline`.
"""

from .cache import (  # noqa: F401
    ArtifactCache,
    CacheEntry,
    CacheKey,
    CacheStats,
    cache_key,
    default_cache,
    reset_default_cache,
    source_digest,
    UnitEntry,
    UnitKey,
)
from .diagnostics import (  # noqa: F401
    CertificationError,
    Diagnostic,
    ParseError,
    PipelineError,
    SourceLocation,
    TranslateError,
    TypecheckError,
    wrap_exception,
)
from .executor import (  # noqa: F401
    default_jobs,
    parallel_map,
    resolve_jobs,
)
from .instrumentation import (  # noqa: F401
    PipelineInstrumentation,
    StageRecord,
    UnitRecord,
)
from .stages import (  # noqa: F401
    certify_source,
    make_context,
    PipelineContext,
    resume_pipeline,
    run_pipeline,
    run_stage,
    Stage,
    stage_index,
    STAGE_NAMES,
    STAGES,
    translate_source,
)
from .units import (  # noqa: F401
    body_digest,
    callers_of,
    extract_units,
    fields_digest,
    interface_digest,
    method_interface_text,
    MethodUnit,
    options_digest,
    stmt_callees,
    transitive_callees,
    unit_cache_key,
    unit_keys,
)
