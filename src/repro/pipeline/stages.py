"""The staged pipeline: the single source of truth for the end-to-end flow.

Trust: **untrusted-but-checked** — the graph may cache, skip, or misroute
the untrusted stages; ``reparse`` and ``check`` are never cached and
never skipped, so every verdict is the kernel's fresh judgement.

The paper's workflow is a fixed sequence::

    parse → desugar → typecheck → units → analyze → translate → generate
          → render → reparse → check

* ``parse``      — Viper source text → Viper AST,
* ``desugar``    — loops / ``old()`` / ``new`` / complex call arguments are
  lowered into the core subset (no-ops when the features are absent),
* ``typecheck``  — scope and type analysis (:class:`ProgramTypeInfo`),
* ``units``      — the program is split into per-method *compilation
  units* with content-addressed cache keys (:mod:`repro.pipeline.units`),
* ``analyze``    — the advisory static-analysis pass (:mod:`repro.analysis`)
  over the *pre-desugaring* AST snapshot; skippable (``ctx.analyze``),
  never cached, and only rejecting in strict mode (``ctx.analysis_strict``,
  used by the service's admission fast path),
* ``translate``  — the instrumented Viper-to-Boogie translation
  (**untrusted**, cacheable *per unit*; independent methods can fan out
  through :mod:`repro.pipeline.executor` via ``unit_jobs``),
* ``generate``   — the tactic builds each method's certificate from hints
  (**untrusted**, cacheable *per unit*),
* ``render``     — per-method certificate blocks (cached or fresh) are
  assembled into the certificate document,
* ``reparse``    — the text is parsed back (first step of the trusted path),
* ``check``      — the independent kernel validates every method's
  certificate and assembles the final theorem (**trusted**, never cached:
  the kernel re-checks every unit on every run, however it was served).

Every stage is a named, individually-invokable unit that reads and writes
typed artifacts on a shared :class:`PipelineContext`, runs under
:class:`~repro.pipeline.instrumentation.PipelineInstrumentation` timing,
and may be served from the content-addressed
:class:`~repro.pipeline.cache.ArtifactCache`.  All entry points —
:func:`repro.translate_source`, :func:`repro.certify_source`, the CLI, and
the evaluation harness — are thin wrappers over :func:`run_pipeline`; no
other module spells out the stage sequence.
"""

from __future__ import annotations

import os
import time
from dataclasses import dataclass, field
from typing import Callable, Dict, Optional, Set, Tuple

from ..certification import (
    assemble_certificate_text,
    check_program_certificate,
    generate_method_certificate,
    parse_program_certificate,
    render_method_certificate,
)
from ..certification.prooftree import ProgramCertificate
from ..frontend import (
    assemble_translation,
    translate_method,
    TranslationOptions,
    TranslationResult,
)
from ..viper import (
    check_program,
    desugar_loops,
    desugar_new,
    desugar_old,
    hoist_call_args,
    parse_program,
    program_has_complex_call_args,
    program_has_loops,
    program_has_new,
    program_has_old,
)
from ..viper.pretty import count_loc
from .cache import ArtifactCache, cache_key, UnitEntry
from .diagnostics import wrap_exception, wrappable_exceptions
from .executor import parallel_map
from .instrumentation import PipelineInstrumentation
from .units import extract_units, unit_keys as compute_unit_keys


@dataclass
class PipelineContext:
    """The shared state threaded through the stage graph.

    Inputs (``source``, ``options``, configuration) are set up-front; each
    stage fills in the artifact it *provides* (see :data:`STAGES`).
    """

    # inputs / configuration
    source: str
    options: TranslationOptions
    instrumentation: PipelineInstrumentation
    cache: Optional[ArtifactCache] = None
    #: Wrap substrate exceptions into PipelineError diagnostics?
    wrap_errors: bool = False
    #: Check background axioms during the final theorem assembly.
    check_axioms: bool = True
    #: Run the advisory static-analysis stage?  (Gates the stage; when
    #: False it is recorded as skipped, like a cache hit.)
    analyze: bool = True
    #: Reject on error-severity findings (the service's admission mode)?
    #: The default keeps library/CLI behaviour advisory: findings are
    #: collected but never block certification — the kernel's verdict,
    #: not the linter's, is the trusted one.
    analysis_strict: bool = False
    #: Fan independent method units out across processes in the untrusted
    #: translate/generate stages (None/1 = serial, 0 = one per CPU; see
    #: :func:`repro.pipeline.executor.resolve_jobs`).
    unit_jobs: Optional[int] = None

    # artifacts, in stage order
    program: object = None              # parse / desugar → viper Program
    parsed_program: object = None       # parse → pre-desugaring snapshot
    findings: object = None             # analyze → List[analysis.Finding]
    type_info: object = None            # typecheck → ProgramTypeInfo
    units: object = None                # units → Dict[str, MethodUnit]
    unit_keys: object = None            # units → Dict[str, UnitKey]
    translation: Optional[TranslationResult] = None   # translate
    boogie_text: Optional[str] = None   # translate (pretty-printed .bpl)
    certificate: object = None          # generate → ProgramCertificate
    certificate_text: Optional[str] = None            # render (.cert)
    reparsed_certificate: object = None               # reparse
    report: object = None               # check → TheoremReport

    completed: Set[str] = field(default_factory=set)
    #: Unit cache entries probed once per run (memoised by
    #: :func:`_probe_units` so hit/miss counters fire exactly once).
    _unit_entries: object = None

    @property
    def key(self):
        """The content-addressed cache key of this invocation."""
        return cache_key(self.source, self.options)


# ---------------------------------------------------------------------------
# Stage implementations.  Each takes the context, reads its inputs, and
# stores the artifact it provides.  Timing wraps the body only; artifact
# *size* accounting happens outside the timed section so stage seconds stay
# comparable with the paper's measurements.
# ---------------------------------------------------------------------------


def _stage_parse(ctx: PipelineContext) -> None:
    ctx.program = parse_program(ctx.source)
    # Keep the pre-desugaring AST for the analyze stage: findings must
    # cite the source the programmer wrote, not the lowered core forms.
    ctx.parsed_program = ctx.program


def _stage_desugar(ctx: PipelineContext) -> None:
    program = ctx.program
    if program_has_loops(program):
        program = desugar_loops(program)
    if program_has_new(program):
        program = desugar_new(program)
    if program_has_old(program):
        program = desugar_old(program)
    if program_has_complex_call_args(program):
        program = hoist_call_args(program)
    ctx.program = program


def _stage_typecheck(ctx: PipelineContext) -> None:
    ctx.type_info = check_program(ctx.program)


def _stage_analyze(ctx: PipelineContext) -> None:
    # Imported lazily: the analysis package is an optional, advisory layer
    # on top of the pipeline, never a load-bearing dependency of it.
    from ..analysis.checks import analyze_program
    from ..analysis.report import AnalysisError, apply_suppressions

    program = ctx.parsed_program if ctx.parsed_program is not None else ctx.program
    findings = analyze_program(program)
    findings, _ = apply_suppressions(findings, ctx.source)
    ctx.findings = findings
    if ctx.analysis_strict and any(f.severity == "error" for f in findings):
        raise AnalysisError(findings)


def _stage_units(ctx: PipelineContext) -> None:
    ctx.units = extract_units(ctx.program)
    ctx.unit_keys = compute_unit_keys(ctx.units, ctx.program, ctx.options)


def _probe_units(ctx: PipelineContext) -> Dict[str, Optional[UnitEntry]]:
    """Look every unit up in the cache, once per run (memoised).

    The probe is shared by the translate/generate/render stages so the
    ``unit_cache.hit``/``unit_cache.miss`` counters fire exactly once per
    unit per pipeline invocation.
    """
    if ctx._unit_entries is not None:
        return ctx._unit_entries
    entries: Dict[str, Optional[UnitEntry]] = {}
    inst = ctx.instrumentation
    # The probe's wall-time is cache *lookup*, not stage work: it accrues
    # to the enclosing stage record's cache_lookup_seconds so a warm run
    # does not report lookup latency as translate time (the split that
    # keeps `bench --json` stage numbers and trace spans in agreement).
    with inst.cache_lookup():
        for name, key in (ctx.unit_keys or {}).items():
            entry = ctx.cache.get_unit(key) if ctx.cache is not None else None
            entries[name] = entry
            if ctx.cache is not None:
                inst.increment(
                    "unit_cache.hit" if entry is not None else "unit_cache.miss"
                )
    ctx._unit_entries = entries
    return entries


def _translate_unit_worker(item) -> Tuple[str, object, float]:
    """Translate one method unit (module-level: must pickle for fan-out)."""
    program, type_info, options, method_name = item
    start = time.perf_counter()
    translated = translate_method(
        program, type_info, program.method(method_name), options
    )
    return (method_name, translated, time.perf_counter() - start)


def _generate_unit_worker(item) -> Tuple[str, object, float]:
    """Generate one method's certificate (module-level: must pickle)."""
    translated = item
    start = time.perf_counter()
    certificate = generate_method_certificate(translated)
    return (translated.method_name, certificate, time.perf_counter() - start)


def _stage_translate(ctx: PipelineContext) -> None:
    """Translate method-by-method, serving unchanged units from the cache.

    A unit is served when its content-addressed key — body digest plus the
    interface digests of its transitive callees plus options — is present;
    a body-only edit of a callee therefore re-translates exactly the
    edited unit, while a spec edit re-keys the unit and all its callers.
    Missing units fan out through the process-pool executor when
    ``ctx.unit_jobs`` asks for parallelism.
    """
    inst = ctx.instrumentation
    entries = _probe_units(ctx)
    methods: Dict[str, object] = {}
    missing = []
    for method in ctx.program.methods:
        entry = entries.get(method.name)
        if entry is not None and entry.translated is not None:
            methods[method.name] = entry.translated
            inst.record_unit(method.name, "translate", reused=True, tier="memory")
        else:
            missing.append(method.name)
    if missing:
        items = [(ctx.program, ctx.type_info, ctx.options, name) for name in missing]
        for name, translated, seconds in parallel_map(
            _translate_unit_worker, items, jobs=ctx.unit_jobs
        ):
            methods[name] = translated
            inst.record_unit(name, "translate", seconds=seconds)
            if ctx.cache is not None and ctx.unit_keys:
                ctx.cache.put_unit(ctx.unit_keys[name], name, translated=translated)
    ctx.translation = assemble_translation(
        ctx.program, ctx.type_info, methods, ctx.options
    )


def _stage_generate(ctx: PipelineContext) -> None:
    """Generate per-method certificates, reusing cached units."""
    inst = ctx.instrumentation
    entries = _probe_units(ctx)
    result = ctx.translation
    certificates: Dict[str, object] = {}
    missing = []
    for method in result.viper_program.methods:
        entry = entries.get(method.name)
        if entry is not None and entry.certificate is not None:
            certificates[method.name] = entry.certificate
            inst.record_unit(method.name, "generate", reused=True, tier="memory")
        else:
            missing.append(result.methods[method.name])
    if missing:
        for name, certificate, seconds in parallel_map(
            _generate_unit_worker, missing, jobs=ctx.unit_jobs
        ):
            certificates[name] = certificate
            inst.record_unit(name, "generate", seconds=seconds)
            if ctx.cache is not None and ctx.unit_keys:
                ctx.cache.put_unit(ctx.unit_keys[name], name, certificate=certificate)
    ctx.certificate = ProgramCertificate(
        methods=tuple(
            certificates[m.name] for m in result.viper_program.methods
        )
    )


def _stage_render(ctx: PipelineContext) -> None:
    """Assemble the certificate document from per-method blocks."""
    entries = _probe_units(ctx)
    blocks = []
    for method_cert in ctx.certificate.methods:
        entry = entries.get(method_cert.method)
        if entry is not None and entry.certificate_block is not None:
            blocks.append(entry.certificate_block)
            continue
        block = render_method_certificate(method_cert)
        blocks.append(block)
        if ctx.cache is not None and ctx.unit_keys:
            ctx.cache.put_unit(
                ctx.unit_keys[method_cert.method],
                method_cert.method,
                certificate_block=block,
            )
    ctx.certificate_text = assemble_certificate_text(blocks)


def _stage_reparse(ctx: PipelineContext) -> None:
    ctx.reparsed_certificate = parse_program_certificate(ctx.certificate_text)


def _stage_check(ctx: PipelineContext) -> None:
    certificate = (
        ctx.reparsed_certificate
        if ctx.reparsed_certificate is not None
        else ctx.certificate
    )
    ctx.report = check_program_certificate(
        ctx.translation, certificate, check_axioms=ctx.check_axioms
    )


@dataclass(frozen=True)
class Stage:
    """A named, timed, individually-invokable pipeline unit."""

    name: str
    #: The PipelineContext attribute this stage fills in.
    provides: str
    run: Callable[[PipelineContext], None]
    #: Can this stage's artifact be served from the ArtifactCache?
    cacheable: bool = False
    #: Name of a boolean PipelineContext attribute gating the stage; when
    #: it is False the stage is recorded as skipped instead of run.
    gate: Optional[str] = None


#: The stage graph, in execution order — the one place it is spelled out.
STAGES: Tuple[Stage, ...] = (
    Stage("parse", "program", _stage_parse),
    Stage("desugar", "program", _stage_desugar),
    Stage("typecheck", "type_info", _stage_typecheck),
    Stage("units", "units", _stage_units),
    Stage("analyze", "findings", _stage_analyze, gate="analyze"),
    Stage("translate", "translation", _stage_translate, cacheable=True),
    Stage("generate", "certificate", _stage_generate, cacheable=True),
    Stage("render", "certificate_text", _stage_render, cacheable=True),
    Stage("reparse", "reparsed_certificate", _stage_reparse),
    Stage("check", "report", _stage_check),
)

STAGE_NAMES: Tuple[str, ...] = tuple(stage.name for stage in STAGES)

_STAGE_BY_NAME = {stage.name: stage for stage in STAGES}

#: Built once: stage_index is on the cache-probe hot path, and a
#: tuple.index() scan per probe is O(stages) for no benefit.
_STAGE_INDEX: Dict[str, int] = {name: i for i, name in enumerate(STAGE_NAMES)}


def stage_index(name: str) -> int:
    """The position of a stage in the graph (raises on unknown names)."""
    try:
        return _STAGE_INDEX[name]
    except KeyError:
        raise KeyError(
            f"unknown pipeline stage {name!r}; expected one of {STAGE_NAMES}"
        ) from None


# ---------------------------------------------------------------------------
# Cache integration.  Translation and generation are pure functions of
# (source, options); their artifacts are stored/served content-addressed.
# The trusted reparse/check path is never cached (see cache.py).
# ---------------------------------------------------------------------------


def _try_cached(ctx: PipelineContext, stage: Stage) -> bool:
    """Serve a cacheable stage from the cache; returns True on a hit."""
    if ctx.cache is None or not stage.cacheable:
        return False
    inst = ctx.instrumentation
    if stage.name == "translate":
        cached = ctx.cache.get_translation(ctx.key)
        if cached is None:
            inst.increment("cache.miss")
            return False
        ctx.translation = cached
        inst.increment("cache.hit")
        inst.record_skip("translate", cached=True)
        # A whole-program hit is every unit reused at once.
        for name in ctx.unit_keys or {}:
            inst.record_unit(name, "translate", reused=True, tier="memory")
        return True
    if stage.name == "generate":
        cached = ctx.cache.get_certificate_text(ctx.key)
        if cached is None:
            inst.increment("cache.miss")
            return False
        # The rendered text subsumes both generate and render.
        ctx.certificate_text = cached
        inst.increment("cache.hit")
        inst.record_skip("generate", cached=True)
        for name in ctx.unit_keys or {}:
            inst.record_unit(name, "generate", reused=True, tier="memory")
        return True
    if stage.name == "render":
        if ctx.certificate_text is not None and ctx.certificate is None:
            # generate was served from the cache; nothing left to render.
            inst.record_skip("render", cached=True)
            return True
        return False
    return False


def _store_cached(ctx: PipelineContext, stage: Stage) -> None:
    if ctx.cache is None:
        return
    if stage.name == "translate" and ctx.translation is not None:
        ctx.cache.put_translation(ctx.key, ctx.translation)
    elif stage.name == "render" and ctx.certificate_text is not None:
        ctx.cache.put_certificate_text(ctx.key, ctx.certificate_text)


# ---------------------------------------------------------------------------
# Artifact-size accounting (Viper LoC, Boogie LoC, certificate LoC) — the
# sizes the paper's tables report, attributed to the producing stage.
# ---------------------------------------------------------------------------


def _record_artifacts(ctx: PipelineContext, stage: Stage) -> None:
    inst = ctx.instrumentation
    if stage.name == "parse":
        inst.artifact("parse", "viper_loc", count_loc(ctx.source))
        inst.artifact("parse", "methods", len(ctx.program.methods))
    elif stage.name == "translate" and ctx.translation is not None:
        if ctx.boogie_text is None:
            from ..boogie.pretty import pretty_boogie_program

            ctx.boogie_text = pretty_boogie_program(ctx.translation.boogie_program)
        inst.artifact("translate", "boogie_loc", count_loc(ctx.boogie_text))
    elif stage.name in ("render", "generate") and ctx.certificate_text is not None:
        cert_loc = len([l for l in ctx.certificate_text.splitlines() if l.strip()])
        inst.artifact(stage.name, "cert_loc", cert_loc)


# ---------------------------------------------------------------------------
# Execution.
# ---------------------------------------------------------------------------

#: Parsed ``REPRO_STAGE_DELAY`` cache, keyed by the raw env value so tests
#: that monkeypatch the variable mid-process are picked up.
_STAGE_DELAY_CACHE: Tuple[Optional[str], Dict[str, float]] = (None, {})


def _stage_delays() -> Dict[str, float]:
    """The ``REPRO_STAGE_DELAY`` fault-injection map (``stage=seconds,…``).

    A test/CI shim, not a feature: the perf-gate CI job sets e.g.
    ``REPRO_STAGE_DELAY=translate=0.05`` to prove that ``repro bench
    diff`` detects and attributes a seeded single-stage slowdown.  The
    sleep happens *inside* the instrumentation context so the delay is
    booked to the named stage, exactly like a real regression.
    Malformed entries are ignored — a typo must not break the pipeline.
    """
    global _STAGE_DELAY_CACHE
    raw = os.environ.get("REPRO_STAGE_DELAY")
    if raw == _STAGE_DELAY_CACHE[0]:
        return _STAGE_DELAY_CACHE[1]
    delays: Dict[str, float] = {}
    for part in (raw or "").split(","):
        stage, _, seconds = part.partition("=")
        try:
            value = float(seconds)
        except ValueError:
            continue
        if stage.strip() and value > 0:
            delays[stage.strip()] = value
    _STAGE_DELAY_CACHE = (raw, delays)
    return delays


def run_stage(ctx: PipelineContext, name: str) -> PipelineContext:
    """Run (or skip, on a gate / cache hit) one named stage."""
    stage = _STAGE_BY_NAME[name]
    delay = _stage_delays().get(stage.name, 0.0)
    if stage.gate is not None and not getattr(ctx, stage.gate):
        ctx.instrumentation.record_skip(stage.name)
        ctx.completed.add(stage.name)
        return ctx
    if _try_cached(ctx, stage):
        _record_artifacts(ctx, stage)
        ctx.completed.add(stage.name)
        return ctx
    if ctx.wrap_errors:
        try:
            with ctx.instrumentation.stage(stage.name):
                if delay:
                    time.sleep(delay)
                stage.run(ctx)
        except wrappable_exceptions() as error:
            raise wrap_exception(stage.name, error) from error
    else:
        with ctx.instrumentation.stage(stage.name):
            if delay:
                time.sleep(delay)
            stage.run(ctx)
    _store_cached(ctx, stage)
    _record_artifacts(ctx, stage)
    ctx.completed.add(stage.name)
    return ctx


def make_context(
    source: str,
    options: Optional[TranslationOptions] = None,
    *,
    instrumentation: Optional[PipelineInstrumentation] = None,
    cache: Optional[ArtifactCache] = None,
    wrap_errors: bool = False,
    check_axioms: bool = True,
    analyze: bool = True,
    analysis_strict: bool = False,
    unit_jobs: Optional[int] = None,
) -> PipelineContext:
    """Prepare a fresh context without running anything."""
    return PipelineContext(
        source=source,
        options=options if options is not None else TranslationOptions(),
        instrumentation=instrumentation or PipelineInstrumentation(),
        cache=cache,
        wrap_errors=wrap_errors,
        check_axioms=check_axioms,
        analyze=analyze,
        analysis_strict=analysis_strict,
        unit_jobs=unit_jobs,
    )


def run_pipeline(
    source: str,
    options: Optional[TranslationOptions] = None,
    *,
    upto: str = "check",
    instrumentation: Optional[PipelineInstrumentation] = None,
    cache: Optional[ArtifactCache] = None,
    wrap_errors: bool = False,
    check_axioms: bool = True,
    analyze: bool = True,
    analysis_strict: bool = False,
    unit_jobs: Optional[int] = None,
) -> PipelineContext:
    """Run the pipeline from the start through stage ``upto`` (inclusive).

    Returns the populated :class:`PipelineContext`; inspect
    ``ctx.instrumentation`` for per-stage timings, sizes, and counters.
    """
    last = stage_index(upto)
    ctx = make_context(
        source,
        options,
        instrumentation=instrumentation,
        cache=cache,
        wrap_errors=wrap_errors,
        check_axioms=check_axioms,
        analyze=analyze,
        analysis_strict=analysis_strict,
        unit_jobs=unit_jobs,
    )
    for stage in STAGES[: last + 1]:
        run_stage(ctx, stage.name)
    return ctx


def resume_pipeline(ctx: PipelineContext, upto: str = "check") -> PipelineContext:
    """Continue a partially-run context through stage ``upto`` (inclusive)."""
    last = stage_index(upto)
    for stage in STAGES[: last + 1]:
        if stage.name not in ctx.completed:
            run_stage(ctx, stage.name)
    return ctx


# ---------------------------------------------------------------------------
# Convenience entry points (what repro.__init__ and the CLI re-export).
# ---------------------------------------------------------------------------


def translate_source(
    source: str,
    options: Optional[TranslationOptions] = None,
    **kwargs,
) -> TranslationResult:
    """Parse, desugar, type-check, and translate Viper source text."""
    return run_pipeline(source, options, upto="translate", **kwargs).translation


def certify_source(
    source: str,
    options: Optional[TranslationOptions] = None,
    **kwargs,
):
    """Run the full pipeline (through the independent kernel check) and
    return the :class:`~repro.certification.theorem.TheoremReport`."""
    return run_pipeline(source, options, upto="check", **kwargs).report
