"""Content-addressed artifact cache for the staged pipeline.

Trust: **untrusted-but-checked** — only untrusted artifact text is ever
cached, and the trusted reparse+check path re-judges whatever a cache
serves, so a wrong or stale entry cannot survive to a false acceptance.

Repeated certification of the same program is common: CLI re-runs during
development, benchmark warm-up rounds, and ablation sweeps that vary one
:class:`~repro.frontend.TranslationOptions` flag while everything else is
shared.  The expensive untrusted stages — translation and certificate
generation — are pure functions of ``(source text, options)``, so their
outputs are cached under a content-addressed key:

    key = (sha256(source), options)

``TranslationOptions`` is a frozen dataclass, hence hashable and part of
the key directly; two runs with different ablation flags never alias.

Below the whole-program entries sits a **per-unit tier**: one entry per
*method compilation unit* (see :mod:`repro.pipeline.units`), keyed by the
unit's content address — body digest, the interface digests of its
transitive callees, the field-declaration digest, and the options digest.
Editing one method's body leaves every other unit's key unchanged, so a
warm re-run re-translates exactly the edited unit; a spec edit changes
the callee's interface digest and therefore re-keys (invalidates) the
unit and all its transitive callers.

The *trusted* path (certificate re-parse + kernel check) is deliberately
**never** cached: caching the verdict would move the cache into the
trusted computing base.  A cache hit therefore skips ``translate`` and
``generate``/``render`` but still re-checks the certificate independently.
"""

from __future__ import annotations

import hashlib
import threading
from collections import OrderedDict
from dataclasses import dataclass
from typing import Dict, Optional, Tuple, TYPE_CHECKING

if TYPE_CHECKING:  # pragma: no cover - import cycle guard for typing only
    from ..certification import MethodCertificate
    from ..frontend import TranslatedMethod, TranslationOptions, TranslationResult

#: The content-addressed cache key: (source digest, translation options).
CacheKey = Tuple[str, "TranslationOptions"]

#: A per-unit cache key: the hex digest produced by
#: :func:`repro.pipeline.units.unit_cache_key` — (body digest, sorted
#: callee interface digests, fields digest, options digest) folded into
#: one content address.
UnitKey = str


def source_digest(source: str) -> str:
    """SHA-256 of the source text (newline-normalised)."""
    normalised = "\n".join(source.splitlines())
    return hashlib.sha256(normalised.encode("utf-8")).hexdigest()


#: Lazily-created shared default options (the frontend import must stay
#: deferred to break the cache ↔ frontend import cycle).  Hoisted out of
#: :func:`cache_key` so the hot path does not allocate a fresh
#: ``TranslationOptions`` per call; the dataclass is frozen, so sharing
#: one instance is safe.
_DEFAULT_OPTIONS: Optional["TranslationOptions"] = None


def _default_options() -> "TranslationOptions":
    global _DEFAULT_OPTIONS
    if _DEFAULT_OPTIONS is None:
        from ..frontend import TranslationOptions

        _DEFAULT_OPTIONS = TranslationOptions()
    return _DEFAULT_OPTIONS


def cache_key(source: str, options: Optional["TranslationOptions"]) -> CacheKey:
    """The cache key for one (source, options) pipeline invocation."""
    return (source_digest(source), options if options is not None else _default_options())


@dataclass
class CacheEntry:
    """The cacheable artifacts of one pipeline run."""

    translation: Optional["TranslationResult"] = None
    certificate_text: Optional[str] = None


@dataclass
class UnitEntry:
    """The cacheable artifacts of one *method unit* (untrusted only).

    ``translated`` is the method's procedure/record/hints, ``certificate``
    the generated per-method proof, ``certificate_block`` its rendered
    text block.  Slots fill independently as stages run; the trusted
    kernel verdict is never stored (see module docstring).
    """

    method: str = ""
    translated: Optional["TranslatedMethod"] = None
    certificate: Optional["MethodCertificate"] = None
    certificate_block: Optional[str] = None


@dataclass
class CacheStats:
    hits: int = 0
    misses: int = 0
    evictions: int = 0
    unit_hits: int = 0
    unit_misses: int = 0
    unit_evictions: int = 0

    def to_dict(self) -> Dict[str, int]:
        return {
            "hits": self.hits,
            "misses": self.misses,
            "evictions": self.evictions,
            "unit_hits": self.unit_hits,
            "unit_misses": self.unit_misses,
            "unit_evictions": self.unit_evictions,
        }


class ArtifactCache:
    """A bounded, thread-safe LRU cache of pipeline artifacts.

    Entries hold the translation result and the rendered certificate text;
    both slots fill independently (a ``translate``-only run caches only the
    translation).  Reads refresh recency; the least-recently-used entry is
    evicted once ``maxsize`` distinct keys are held.
    """

    def __init__(self, maxsize: int = 128, unit_maxsize: int = 4096):
        if maxsize < 1:
            raise ValueError("maxsize must be >= 1")
        if unit_maxsize < 1:
            raise ValueError("unit_maxsize must be >= 1")
        self.maxsize = maxsize
        self.unit_maxsize = unit_maxsize
        self.stats = CacheStats()
        self._entries: "OrderedDict[CacheKey, CacheEntry]" = OrderedDict()
        self._units: "OrderedDict[UnitKey, UnitEntry]" = OrderedDict()
        self._lock = threading.Lock()

    def __len__(self) -> int:
        return len(self._entries)

    def unit_count(self) -> int:
        return len(self._units)

    def _entry(self, key: CacheKey, create: bool) -> Optional[CacheEntry]:
        entry = self._entries.get(key)
        if entry is not None:
            self._entries.move_to_end(key)
            return entry
        if not create:
            return None
        entry = CacheEntry()
        self._entries[key] = entry
        while len(self._entries) > self.maxsize:
            self._entries.popitem(last=False)
            self.stats.evictions += 1
        return entry

    # -- translation artifact ---------------------------------------------

    def get_translation(self, key: CacheKey) -> Optional["TranslationResult"]:
        with self._lock:
            entry = self._entry(key, create=False)
            found = entry.translation if entry is not None else None
            if found is not None:
                self.stats.hits += 1
            else:
                self.stats.misses += 1
            return found

    def put_translation(self, key: CacheKey, translation: "TranslationResult") -> None:
        with self._lock:
            self._entry(key, create=True).translation = translation

    # -- certificate artifact ---------------------------------------------

    def get_certificate_text(self, key: CacheKey) -> Optional[str]:
        with self._lock:
            entry = self._entry(key, create=False)
            found = entry.certificate_text if entry is not None else None
            if found is not None:
                self.stats.hits += 1
            else:
                self.stats.misses += 1
            return found

    def put_certificate_text(self, key: CacheKey, text: str) -> None:
        with self._lock:
            self._entry(key, create=True).certificate_text = text

    # -- per-unit artifacts ------------------------------------------------

    def _unit_entry(self, key: UnitKey, create: bool) -> Optional[UnitEntry]:
        entry = self._units.get(key)
        if entry is not None:
            self._units.move_to_end(key)
            return entry
        if not create:
            return None
        entry = UnitEntry()
        self._units[key] = entry
        while len(self._units) > self.unit_maxsize:
            self._units.popitem(last=False)
            self.stats.unit_evictions += 1
        return entry

    def get_unit(self, key: UnitKey) -> Optional[UnitEntry]:
        """Look up one method unit; counts a hit iff the translation slot
        is filled (the minimum needed to skip per-unit work)."""
        with self._lock:
            entry = self._unit_entry(key, create=False)
            if entry is not None and entry.translated is not None:
                self.stats.unit_hits += 1
                return entry
            self.stats.unit_misses += 1
            return None

    def put_unit(
        self,
        key: UnitKey,
        method: str,
        translated: Optional["TranslatedMethod"] = None,
        certificate: Optional["MethodCertificate"] = None,
        certificate_block: Optional[str] = None,
    ) -> None:
        """Fill (part of) a unit entry; ``None`` slots are left untouched."""
        with self._lock:
            entry = self._unit_entry(key, create=True)
            entry.method = method
            if translated is not None:
                entry.translated = translated
            if certificate is not None:
                entry.certificate = certificate
            if certificate_block is not None:
                entry.certificate_block = certificate_block

    def clear(self) -> None:
        with self._lock:
            self._entries.clear()
            self._units.clear()
            self.stats = CacheStats()


_default_cache: Optional[ArtifactCache] = None
_default_lock = threading.Lock()


def default_cache() -> ArtifactCache:
    """The process-wide shared cache (created on first use)."""
    global _default_cache
    with _default_lock:
        if _default_cache is None:
            _default_cache = ArtifactCache()
        return _default_cache


def reset_default_cache() -> None:
    """Drop the process-wide cache (tests, benchmarks between rounds)."""
    global _default_cache
    with _default_lock:
        _default_cache = None
