"""Parallel corpus executor with deterministic ordering and serial fallback.

The evaluation harness, ``repro.cli bench``, and the ``benchmarks/``
scripts all fan the pipeline out over corpus files.  This module is the
one place that owns the fan-out:

* results come back **in input order**, regardless of completion order, so
  parallel runs render byte-identical tables (timings aside) to serial
  runs;
* ``jobs=None``/``jobs=1`` runs serially in-process (the default — the
  pipeline is deterministic, and serial runs keep per-file timings
  comparable with the paper's single-threaded measurements);
* ``jobs=0`` ("auto") uses one worker per CPU;
* when process pools are unavailable (restricted sandboxes, non-picklable
  workers), execution **falls back to serial** instead of failing.

Workers must be module-level callables (picklable); the harness exposes
:func:`repro.harness.runner.run_file` for exactly this purpose.

When the dispatching task runs under an ambient trace context
(:mod:`repro.trace`), the fan-out re-establishes it inside each worker
process via a picklable traceparent-carrying wrapper, so per-unit spans
recorded in children share the request's ``trace_id``.  Without a
context the wrapper is never constructed — tracing-off adds one
contextvar read per ``parallel_map`` call.

Trust: **untrusted-but-checked** — the executor only schedules untrusted
stages; whatever it produces passes through the trusted reparse+check
path downstream.
"""

from __future__ import annotations

import os
import pickle
from concurrent.futures import ProcessPoolExecutor
from typing import Callable, Iterable, List, Optional, Sequence, TypeVar

from ..trace.spans import current_traceparent, parse_traceparent, use_context

try:  # pragma: no cover - availability depends on the platform
    from concurrent.futures.process import BrokenProcessPool
except ImportError:  # pragma: no cover
    class BrokenProcessPool(RuntimeError):  # type: ignore[no-redef]
        pass

ItemT = TypeVar("ItemT")
ResultT = TypeVar("ResultT")

#: Infrastructure failures that trigger the serial fallback.  Exceptions
#: raised by the *worker itself* are generally not in this set — they
#: propagate.  ``AttributeError`` is included because CPython reports
#: unpicklable callables (lambdas, closures) that way; a genuine worker
#: AttributeError re-raises identically from the serial fallback.
_FALLBACK_ERRORS = (OSError, BrokenProcessPool, pickle.PicklingError, AttributeError)


def default_jobs() -> int:
    """The 'auto' worker count: one per CPU (at least 1)."""
    return max(1, os.cpu_count() or 1)


def resolve_jobs(jobs: Optional[int]) -> int:
    """Normalise a ``--jobs`` value: None/1 → serial, 0 → auto.

    Negative values are rejected with a :class:`ValueError` (previously
    they silently fell through to "auto", masking caller bugs).
    """
    if jobs is None:
        return 1
    if jobs < 0:
        raise ValueError(f"jobs must be >= 0 (0 = one worker per CPU); got {jobs}")
    if jobs == 0:
        return default_jobs()
    return jobs


def _serial_map(
    worker: Callable[[ItemT], ResultT], items: Sequence[ItemT]
) -> List[ResultT]:
    return [worker(item) for item in items]


class _TracedWorker:
    """A picklable wrapper restoring the trace context in pool workers.

    The traceparent header string (not the context object) crosses the
    pickling boundary; each call re-parses it and installs the resulting
    context for the worker's dynamic extent, so ``current_trace_id()``
    inside the worker matches the dispatching request — across fresh
    worker processes and respawns alike.
    """

    def __init__(self, worker: Callable[[ItemT], ResultT], traceparent: str):
        self.worker = worker
        self.traceparent = traceparent

    def __call__(self, item: ItemT) -> ResultT:
        with use_context(parse_traceparent(self.traceparent)):
            return self.worker(item)


def parallel_map(
    worker: Callable[[ItemT], ResultT],
    items: Iterable[ItemT],
    jobs: Optional[int] = None,
) -> List[ResultT]:
    """Map ``worker`` over ``items``, preserving input order.

    With ``jobs`` resolving to 1 (the default) this is a plain list
    comprehension.  Otherwise items are dispatched to a
    :class:`~concurrent.futures.ProcessPoolExecutor` and results are
    collected in submission order, so the output is deterministic given a
    deterministic worker.  Pool-infrastructure failures (fork refused,
    worker crash, unpicklable worker) fall back to serial execution;
    exceptions raised *by the worker* propagate unchanged.
    """
    materialised = list(items)
    workers = min(resolve_jobs(jobs), max(1, len(materialised)))
    if workers <= 1 or len(materialised) <= 1:
        return _serial_map(worker, materialised)
    # Carry the ambient trace context (if any) into the pool: the serial
    # path inherits it natively; child processes need the header.
    header = current_traceparent()
    pool_worker = _TracedWorker(worker, header) if header else worker
    try:
        with ProcessPoolExecutor(max_workers=workers) as pool:
            futures = [pool.submit(pool_worker, item) for item in materialised]
            return [future.result() for future in futures]
    except _FALLBACK_ERRORS:
        return _serial_map(worker, materialised)


def parallel_map_batches(
    worker: Callable[[ItemT], ResultT],
    items: Iterable[ItemT],
    jobs: Optional[int] = None,
    batch_size: Optional[int] = None,
    should_stop: Optional[Callable[[], bool]] = None,
) -> List[ResultT]:
    """Like :func:`parallel_map`, but in bounded batches with a stop check.

    Long-running producers (``repro fuzz --time-budget``) cannot submit
    their whole workload up front: a budget check must run between
    dispatches.  This helper cuts ``items`` into deterministic, input-order
    batches of ``batch_size`` (default: ``4 × workers``), maps each batch
    with :func:`parallel_map`, and consults ``should_stop()`` between
    batches — already-dispatched work always completes, so the result list
    is a deterministic *prefix* of the full-run result list.
    """
    materialised = list(items)
    workers = resolve_jobs(jobs)
    size = batch_size if batch_size and batch_size > 0 else max(1, 4 * workers)
    results: List[ResultT] = []
    for start in range(0, len(materialised), size):
        if should_stop is not None and should_stop() and results:
            break
        results.extend(parallel_map(worker, materialised[start:start + size], jobs))
    return results
