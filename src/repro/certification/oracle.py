"""Semantic re-validation of certified translations (differential oracle).

Trust: **advisory** — differential testing raises confidence in the
semantics; acceptance still comes only from the kernel.

A checked certificate establishes, through the kernel's lemma schemas, that
the Boogie procedure forward-simulates the Viper method obligation.  This
module provides an *independent semantic cross-check*: it co-executes both
semantics over sampled initial states and verifies the failure direction of
the simulation directly —

    if ``inhale pre; body; exhale post`` has a failing Viper execution from
    a zero-mask initial state σ_v, then the translated procedure has a
    failing Boogie execution from the canonically-related initial state.

This is the property the final theorem needs (Sec. 4.5): contrapositively,
a correct Boogie procedure yields a correct Viper method.  The oracle is
used by the test suite on every corpus program and is available to users as
``validate_method_semantically`` for defence in depth.

Boogie-side executions are enumerated exhaustively; heap havocs use the
state-aware candidate hook from :mod:`repro.certification.simulation`, so
the enumeration covers exactly the idOnPositive-compatible heaps.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Optional, Tuple

from ..boogie.cursor import Cursor
from ..boogie.semantics import BoogieContext, procedure_context
from ..boogie.state import BoogieState
from ..choice import all_executions, ExplosionLimit
from ..frontend.background import constant_valuation, standard_interpretation
from ..frontend.translator import procedure_name, TranslationResult
from ..viper.semantics import (
    Failure,
    run_method,
    ViperContext,
)
from ..viper.state import zero_mask_state
from ..viper.wellformed import enumerate_heaps, enumerate_stores
from .relations import boogie_state_for
from .simulation import default_boogie_value, heap_havoc_hook, run_boogie_region


@dataclass
class OracleVerdict:
    """Result of the differential failure-direction check."""

    ok: bool
    method: str = ""
    detail: str = ""
    states_checked: int = 0
    viper_failures: int = 0


def _initial_boogie_state(
    result: TranslationResult, method_name: str, viper_state
) -> BoogieState:
    """The canonical σ_b related to σ_v, with locals at typed defaults."""
    translated = result.methods[method_name]
    consts = constant_valuation(result.background)
    extra: Dict[str, object] = {}
    mapped = set(translated.record.var_map.values())
    for name, typ in translated.procedure.locals:
        if name not in mapped:
            extra[name] = default_boogie_value(typ)
    # Variables of the method that are not in the Viper store yet (locals
    # declared later) still need Boogie values.
    for viper_var, boogie_var in translated.record.var_map.items():
        if not viper_state.has_var(viper_var):
            viper_type = result.type_info.methods[method_name].var_types[viper_var]
            from ..frontend.records import boogie_type_of

            extra[boogie_var] = default_boogie_value(boogie_type_of(viper_type))
    return boogie_state_for(viper_state, translated.record, consts, extra)


def validate_method_semantically(
    result: TranslationResult,
    method_name: str,
    max_states: int = 40,
    max_viper_paths: int = 4_000,
    max_boogie_paths: int = 60_000,
) -> OracleVerdict:
    """Differentially validate the failure direction of the simulation."""
    method = result.viper_program.method(method_name)
    if method.body is None:
        return OracleVerdict(True, method_name, "abstract method: nothing to run")
    ctx_v = ViperContext(result.viper_program, result.type_info, method_name)
    interp = standard_interpretation(result.type_info.field_types)
    proc = result.boogie_program.procedure(procedure_name(method_name))
    ctx_b = procedure_context(result.boogie_program, proc, interp)
    ctx_b.havoc_hook = heap_havoc_hook(result.type_info.field_types)
    init_vars = list(method.args) + list(method.returns)
    checked = 0
    viper_failures = 0
    # Spread the state budget across the whole enumeration (a contiguous
    # prefix would be dominated by the first variable's first value, e.g.
    # null receivers only).
    all_states = [
        zero_mask_state(store, result.type_info.field_types, heap)
        for store in enumerate_stores(init_vars)
        for heap in enumerate_heaps(result.type_info.field_types)
    ]
    stride = max(1, len(all_states) // max_states)
    for sigma_v in all_states[::stride][:max_states]:
        checked += 1
        viper_fails = False
        try:
            for outcome in all_executions(
                lambda oracle: run_method(method, sigma_v, ctx_v, oracle),
                max_paths=max_viper_paths,
            ):
                if isinstance(outcome, Failure):
                    viper_fails = True
                    break
        except ExplosionLimit:
            # Path budget exhausted without a failure found: this
            # initial state is inconclusive for the oracle; skip it.
            continue
        if not viper_fails:
            continue
        viper_failures += 1
        sigma_b = _initial_boogie_state(result, method_name, sigma_v)
        try:
            region = run_boogie_region(
                Cursor.from_stmt(proc.body),
                None,
                sigma_b,
                ctx_b,
                max_paths=max_boogie_paths,
            )
        except ExplosionLimit:
            return OracleVerdict(
                True,
                method_name,
                "Boogie path budget exhausted before finding a failing "
                "execution (inconclusive)",
                checked,
                viper_failures,
            )
        if not any(r.kind == "failed" for r in region):
            return OracleVerdict(
                False,
                method_name,
                f"Viper fails from {sigma_v!r} but no Boogie execution fails",
                checked,
                viper_failures,
            )
    return OracleVerdict(True, method_name, "", checked, viper_failures)


def validate_program_semantically(
    result: TranslationResult,
    max_states_per_method: int = 25,
    max_viper_paths: int = 4_000,
    max_boogie_paths: int = 60_000,
) -> List[OracleVerdict]:
    """Run the oracle over every method of a translation.

    The path budgets are passed through to
    :func:`validate_method_semantically`; callers that trade completeness
    for throughput (``repro fuzz`` runs the oracle on every iteration)
    lower them — exhausting a budget yields an *inconclusive* (ok)
    verdict, never a spurious disagreement.
    """
    verdicts = []
    for method in result.viper_program.methods:
        verdicts.append(
            validate_method_semantically(
                result,
                method.name,
                max_states=max_states_per_method,
                max_viper_paths=max_viper_paths,
                max_boogie_paths=max_boogie_paths,
            )
        )
    return verdicts
