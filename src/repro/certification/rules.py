"""The rule catalog: every judgement form the kernel accepts.

Trust: **trusted** — the rule catalog is the kernel's axiom schema
inventory.

A manifest of the proof system implemented by the checker — the
simulation rules of Sec. 3 (Figs. 2, 5–8) plus the procedure-structure
and inhale rules of Sec. 4 / App. A (Figs. 9–11) — with the paper's
provenance for each rule.  It serves three purposes:

* documentation — ``python -m repro.cli rules`` prints it;
* a consistency contract — the test suite checks that the tactic emits
  only catalogued rules and that the checker implements all of them;
* per-rule pointers to where each schema's *semantic* soundness is
  validated (the once-and-for-all analog of the Isabelle lemma proofs).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Tuple


@dataclass(frozen=True)
class RuleInfo:
    """One rule of the certification proof system."""

    name: str
    #: "structure" (procedure-level), "statement", "inhale", or "remcheck".
    kind: str
    #: Whether the rule is an atomic lemma schema (a leaf — Fig. 8's 𝒫ᵢ).
    atomic: bool
    #: Parameters supplied by hints (kind-2 hints of Sec. 4.3).
    params: Tuple[str, ...]
    #: Where the paper introduces the idea.
    paper_ref: str
    summary: str


RULES: Tuple[RuleInfo, ...] = (
    # -- procedure structure (Fig. 10) -------------------------------------
    RuleInfo(
        "SPEC-WF-SIM", "structure", False, (),
        "Fig. 10 (C1)",
        "Spec well-formedness section: inhale pre; havoc returns; inhale "
        "post; assume false — inside the nondeterministic branch.",
    ),
    RuleInfo(
        "METHOD-BODY-SIM", "structure", False, (),
        "Fig. 9/10 (C2)",
        "The method obligation: inhale pre; body; exhale post.",
    ),
    # -- statements ----------------------------------------------------------
    RuleInfo("SKIP-SIM", "statement", True, (), "—", "Empty statement: no Boogie code."),
    RuleInfo(
        "SEQ-SIM", "statement", False, (),
        "Fig. 5 (derived from COMP)",
        "Sequential composition: chain the program points of both parts.",
    ),
    RuleInfo(
        "ASSIGN-SIM", "statement", True, (),
        "Sec. 3.3 (atomic schema)",
        "Local assignment: wd checks then the corresponding Boogie assign.",
    ),
    RuleInfo(
        "FIELD-ASSIGN-SIM", "statement", True, (),
        "Sec. 2.4",
        "Field write: wd checks, full-permission assert, updHeap assign.",
    ),
    RuleInfo(
        "VAR-DECL-SIM", "statement", True, (),
        "Sec. 5 (adjustment 4)",
        "Scoped variable declaration: a havoc at the declaration point.",
    ),
    RuleInfo(
        "INHALE-STMT-SIM", "statement", False, ("with_wd",),
        "App. A",
        "Wrapper choosing whether wd checks are present (omitted only "
        "under a non-local hypothesis).",
    ),
    RuleInfo(
        "EXH-SIM", "statement", False, ("wm", "havoc", "with_wd"),
        "Fig. 6",
        "Exhale: WM snapshot (paired relation), remcheck premise, then the "
        "havoc/idOnPositive nondeterministic heap assignment — omitted "
        "only when the assertion holds no permission (Sec. 3.4).",
    ),
    RuleInfo(
        "ASSERT-SIM", "statement", False, ("wm", "am"),
        "Sec. 2.3",
        "Assert: remcheck against a scratch mask; M is untouched.",
    ),
    RuleInfo(
        "IF-SIM", "statement", False, (),
        "Fig. 1 / Sec. 4.3",
        "Conditional: wd check of the guard, branch premises joining at "
        "the same program point.",
    ),
    RuleInfo(
        "CALL-SIM", "statement", False, ("callee",),
        "Sec. 4.2",
        "Method call: exhale pre (wd omitted under Q_pre), havoc targets, "
        "inhale post (wd omitted under Q_post); records the dependency on "
        "the callee's C1 section.",
    ),
    # -- inhale (App. A) -------------------------------------------------------
    RuleInfo(
        "INH-PURE-ATOM", "inhale", True, (),
        "Fig. 11",
        "Pure constraint: wd checks then assume R(e).",
    ),
    RuleInfo(
        "INH-ACC-ATOM", "inhale", True, ("perm_temp",),
        "Fig. 11 (INH-ACC)",
        "Accessibility predicate: nonnegativity assert, null-guard assume, "
        "updMask, GoodMask assume; fast path for positive literals "
        "(perm_temp = none).",
    ),
    RuleInfo("INH-SEP-SIM", "inhale", False, (), "Fig. 11 (INH-SEP)", "Separating conjunction, left to right."),
    RuleInfo("INH-IMP-SIM", "inhale", False, (), "Fig. 11", "Implication: guarded Boogie if with empty else."),
    RuleInfo("INH-COND-SIM", "inhale", False, (), "Fig. 1", "Conditional assertion: Boogie if over both branches."),
    # -- remcheck (Fig. 2) -------------------------------------------------------
    RuleInfo(
        "RC-PURE-ATOM", "remcheck", True, (),
        "Fig. 2 (RC-PURE)",
        "Pure constraint: wd checks against WM, then assert R(e).",
    ),
    RuleInfo(
        "RC-ACC-ATOM", "remcheck", True, ("perm_temp",),
        "Fig. 2 (RC-ACC) / App. B (RACC-SIM)",
        "Permission removal: nonnegativity, sufficiency, updMask subtract; "
        "guarded by if (tmp != 0) in the general path, fast path for "
        "positive literals.",
    ),
    RuleInfo(
        "RC-SEP-SIM", "remcheck", False, (),
        "Fig. 2 (RC-SEP) / Fig. 7 (RSEP-SIM)",
        "Separating conjunction; the Q hypothesis (wd omission) propagates "
        "identically to both conjuncts.",
    ),
    RuleInfo("RC-IMP-SIM", "remcheck", False, (), "Fig. 2", "Implication: guarded Boogie if with empty else."),
    RuleInfo("RC-COND-SIM", "remcheck", False, (), "Fig. 2", "Conditional assertion over both branches."),
)

RULE_NAMES = frozenset(rule.name for rule in RULES)


def rule_info(name: str) -> RuleInfo:
    for rule in RULES:
        if rule.name == name:
            return rule
    raise KeyError(f"unknown rule {name!r}")


def render_catalog() -> str:
    """A human-readable listing of the proof system."""
    lines = ["The certification proof system (kernel rules)", ""]
    for kind in ("structure", "statement", "inhale", "remcheck"):
        lines.append(f"## {kind} rules")
        for rule in RULES:
            if rule.kind != kind:
                continue
            marker = "atomic " if rule.atomic else ""
            params = f" params: {', '.join(rule.params)}" if rule.params else ""
            lines.append(f"  {rule.name:<18} [{marker}{rule.paper_ref}]{params}")
            lines.append(f"      {rule.summary}")
        lines.append("")
    return "\n".join(lines)
