"""Final theorem assembly (Sec. 4.5, Fig. 10).

Trust: **trusted** — composes per-method results into the final soundness
statement (Fig. 10).

Combines the per-method relational proofs into the program-level soundness
statement: *if every Boogie procedure of the translated program is correct,
then every Viper method of the input program is correct*.

Three ingredients are checked:

1. **Background validity** — the Boogie program type-checks (including the
   syntactic guard that axioms mention no global variables), and the
   standard interpretation of Sec. 4.4 satisfies every emitted axiom
   (bounded AxiomSat over the sampled carriers).
2. **Per-method simulation** — each method certificate checks against the
   kernel (:class:`~repro.certification.checker.ProofChecker`).
3. **Dependency closure** — every non-local dependency (a callee whose
   well-definedness checks were omitted at a call site, Sec. 4.2) is a
   method of the program, whose C1 (spec well-formedness) section is part
   of its own checked certificate.  This is exactly the composition step of
   Fig. 10: correctness of all procedures gives all C1s, which discharge
   the hypotheses of all C2s.
"""

from __future__ import annotations

import time
from dataclasses import dataclass, field
from typing import Dict, List, Optional, Tuple

from ..boogie.interp import check_axioms_bounded
from ..boogie.typechecker import BoogieTypeError, check_boogie_program
from ..frontend.background import constant_valuation, standard_interpretation
from ..frontend.translator import TranslationResult  # tcb: allow[TB001] type-only: the theorem's API names the untrusted translator's result dataclass; no translator code runs while checking
from .checker import CheckReport, ProofChecker
from .prooftree import MethodCertificate, ProgramCertificate


@dataclass
class TheoremReport:
    """The outcome of checking a program certificate."""

    ok: bool
    method_reports: Dict[str, CheckReport] = field(default_factory=dict)
    axioms_ok: bool = False
    boogie_typechecks: bool = False
    unresolved_dependencies: Tuple[str, ...] = ()
    error: str = ""
    check_seconds: float = 0.0

    def statement(self) -> str:
        """A rendering of the established theorem (or the failure)."""
        if not self.ok:
            return f"CERTIFICATE REJECTED: {self.error}"
        methods = ", ".join(sorted(self.method_reports))
        return (
            "THEOREM (front-end soundness). If every procedure of the "
            "translated Boogie program is correct (w.r.t. any well-formed "
            "interpretation satisfying its axioms, witnessed here by the "
            "standard partial-map interpretation), then every method of "
            f"the input Viper program is correct: {methods}."
        )


def check_program_certificate(
    result: TranslationResult,
    certificate: ProgramCertificate,
    check_axioms: bool = True,
) -> TheoremReport:
    """Check a full program certificate and assemble the final theorem."""
    start = time.perf_counter()
    report = TheoremReport(ok=False)
    # 1. Background validity.
    try:
        check_boogie_program(result.boogie_program)
        report.boogie_typechecks = True
    except BoogieTypeError as error:
        report.error = f"Boogie program ill-typed: {error}"
        report.check_seconds = time.perf_counter() - start
        return report
    if check_axioms:
        interp = standard_interpretation(result.type_info.field_types)
        consts = constant_valuation(result.background)
        axiom_result = check_axioms_bounded(result.boogie_program, interp, consts)
        report.axioms_ok = axiom_result.ok
        if not axiom_result.ok:
            report.error = f"axiom not satisfied by the model: {axiom_result.detail}"
            report.check_seconds = time.perf_counter() - start
            return report
    else:
        report.axioms_ok = True
    # 2. Per-method simulation proofs.
    checker = ProofChecker(
        result.viper_program, result.type_info, result.boogie_program
    )
    certified_methods = set()
    all_dependencies: Dict[str, Tuple[str, ...]] = {}
    for cert in certificate.methods:
        method_report = checker.check_method_certificate(cert)
        report.method_reports[cert.method] = method_report
        if not method_report.ok:
            report.error = (
                f"method {cert.method!r} failed certification: {method_report.error}"
            )
            report.check_seconds = time.perf_counter() - start
            return report
        certified_methods.add(cert.method)
        all_dependencies[cert.method] = method_report.dependencies
    # Every program method needs a certificate (the theorem quantifies over
    # the whole program).
    missing = [
        m.name for m in result.viper_program.methods if m.name not in certified_methods
    ]
    if missing:
        report.error = f"methods without certificates: {missing}"
        report.check_seconds = time.perf_counter() - start
        return report
    # 3. Dependency closure (Fig. 10): each dependency must be a certified
    # method — its C1 section provides the spec well-formedness fact.
    unresolved: List[str] = []
    for method, dependencies in all_dependencies.items():
        for dep in dependencies:
            if dep not in certified_methods:
                unresolved.append(f"{method} -> {dep}")
    if unresolved:
        report.unresolved_dependencies = tuple(unresolved)
        report.error = f"unresolved non-local dependencies: {unresolved}"
        report.check_seconds = time.perf_counter() - start
        return report
    report.ok = True
    report.check_seconds = time.perf_counter() - start
    return report


