"""State relations between Viper and Boogie states (Sec. 4.1).

Trust: **trusted** — defines the simulation relations the kernel checks; a
wrong relation proves the wrong theorem.

The simulation judgements are parameterised by relations between Viper and
Boogie states.  Following the paper's stylised form, our relations are
determined by a *translation record* (plus, implicitly, the standard
interpretation): :class:`SimRel` wraps a record and knows whether the
related Viper "state" is a single state or the (evaluation state, reduction
state) *pair* used by remcheck.

``rel_holds`` gives the relation its semantic meaning — the executable
counterpart of SR in Sec. 4.1:

* both Viper states are consistent,
* field constants are correctly represented (fieldRel),
* the store corresponds through the record's variable map (stRel),
* the Boogie heap/mask variables represent the reduction state's heap and
  mask (hmRel) — heap agreement is required on *permissioned* locations
  (unpermissioned Boogie heap contents are junk by design, Sec. 2.4),
* when paired, the wd-mask variable represents the evaluation state's mask
  and both states share store and heap (a remcheck never changes them).

The oracle and the rule-validation tests quantify over sampled state pairs
satisfying this definition.
"""

from __future__ import annotations

from dataclasses import dataclass
from fractions import Fraction
from typing import Mapping, Optional

from ..boogie.state import BoogieState
from ..boogie.values import BValue, FrozenMap, UValue
from ..frontend.background import (
    NULL_ADDRESS,
    to_boogie_value,
    values_correspond,
)
from ..frontend.records import TranslationRecord
from ..viper.ast import Type
from ..viper.state import ViperState


@dataclass(frozen=True)
class SimRel:
    """A state relation SR^{Tr} (auxiliary-variable facts are tracked by the
    checker's schemas locally and do not appear in the semantic relation)."""

    record: TranslationRecord

    @property
    def paired(self) -> bool:
        """Whether the relation relates ((σ⁰, σ), σ_b) rather than (σ, σ_b)."""
        return self.record.wd_mask_var is not None


def _mask_payload(value: BValue) -> Optional[FrozenMap]:
    if isinstance(value, UValue) and value.type_name == "MaskType":
        payload = value.payload
        if isinstance(payload, FrozenMap):
            return payload
    return None


def _heap_payload(value: BValue) -> Optional[FrozenMap]:
    if isinstance(value, UValue) and value.type_name == "HeapType":
        payload = value.payload
        if isinstance(payload, FrozenMap):
            return payload
    return None


def store_corresponds(
    state: ViperState, boogie_state: BoogieState, record: TranslationRecord
) -> bool:
    """stRel: every Viper variable's value is mirrored in the Boogie store."""
    for name, value in state.store.items():
        if name not in record.var_map:
            return False
        boogie_name = record.var_map[name]
        if boogie_name not in boogie_state:
            return False
        if not values_correspond(value, boogie_state.lookup(boogie_name)):
            return False
    return True


def mask_corresponds(
    state: ViperState,
    boogie_state: BoogieState,
    mask_var: str,
) -> bool:
    """The Boogie mask variable represents the Viper permission mask.

    Agreement is required at *every* location: stored Boogie entries must
    match the Viper mask (with absent entries meaning zero on both sides),
    and locations at the null reference must carry no permission.
    """
    if mask_var not in boogie_state:
        return False
    payload = _mask_payload(boogie_state.lookup(mask_var))
    if payload is None:
        return False
    keys = {key for key in payload.keys()}
    keys |= set(state.mask.keys())
    for key in keys:
        address, field_name = key
        boogie_amount = payload.get(key, Fraction(0))
        if address == NULL_ADDRESS:
            if boogie_amount != 0:
                return False
            continue
        if state.perm((address, field_name)) != boogie_amount:
            return False
    return True


def heap_corresponds(
    state: ViperState,
    boogie_state: BoogieState,
    heap_var: str,
    field_types: Mapping[str, Type],
) -> bool:
    """hmRel (heap part): agreement on all locations with positive permission."""
    if heap_var not in boogie_state:
        return False
    payload = _heap_payload(boogie_state.lookup(heap_var))
    if payload is None:
        return False
    for loc, amount in state.mask.items():
        if amount <= 0:
            continue
        address, field_name = loc
        expected = to_boogie_value(state.heap_value(loc))
        if field_name in field_types:
            from ..viper.state import default_value

            default = to_boogie_value(default_value(field_types[field_name]))
        else:
            default = expected
        actual = payload.get((address, field_name), default)
        if actual != expected:
            return False
    return True


def fields_correspond(
    boogie_state: BoogieState, record: TranslationRecord
) -> bool:
    """fieldRel: the field constants carry their canonical carrier values."""
    for field_name, const_name in record.field_consts.items():
        if const_name not in boogie_state:
            return False
        if boogie_state.lookup(const_name) != UValue("Field", field_name):
            return False
    return True


def rel_holds(
    rel: SimRel,
    eval_state: ViperState,
    state: ViperState,
    boogie_state: BoogieState,
    field_types: Mapping[str, Type],
) -> bool:
    """SR^{Tr}((σ⁰, σ), σ_b): the full state relation of Sec. 4.1.

    For unpaired relations pass ``eval_state is state``.
    """
    record = rel.record
    if not eval_state.is_consistent() or not state.is_consistent():
        return False
    if not fields_correspond(boogie_state, record):
        return False
    if not store_corresponds(state, boogie_state, record):
        return False
    if not mask_corresponds(state, boogie_state, record.mask_var):
        return False
    if not heap_corresponds(state, boogie_state, record.heap_var, field_types):
        return False
    if rel.paired:
        # The evaluation state shares store and heap with the reduction
        # state; its mask lives in the wd-mask variable.
        if not eval_state.same_store_and_heap(state):
            return False
        if not mask_corresponds(eval_state, boogie_state, record.wd_mask_var):
            return False
        # Heap agreement for the evaluation state (its permissions may
        # exceed the reduction state's).
        if not heap_corresponds(
            eval_state, boogie_state, record.heap_var, field_types
        ):
            return False
    return True


def boogie_state_for(
    state: ViperState,
    record: TranslationRecord,
    const_values: Mapping[str, BValue],
    extra: Optional[Mapping[str, BValue]] = None,
) -> BoogieState:
    """Construct a canonical Boogie state related to a Viper state.

    Used by the oracle and the final theorem to *choose* the initial Boogie
    state σ_b with R₀(σ_v, σ_b) (Sec. 4.5).
    """
    from ..frontend.background import heap_to_boogie, mask_to_boogie

    values = dict(const_values)
    for name, value in state.store.items():
        values[record.var_map[name]] = to_boogie_value(value)
    values[record.heap_var] = heap_to_boogie(state)
    values[record.mask_var] = mask_to_boogie(state)
    if record.wd_mask_var is not None:
        values[record.wd_mask_var] = mask_to_boogie(state)
    if extra:
        values.update(extra)
    return BoogieState(values)
