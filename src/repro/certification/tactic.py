"""The hint-driven proof-generation tactic (untrusted, Sec. 4.3).

Trust: **untrusted-but-checked** — the tactic may emit any certificate it
likes; only the kernel's acceptance counts.

The tactic turns the hint stream emitted by the instrumented translator
into a certificate: it selects, per translated construct, which simulation
rule to apply and instantiates the rule's parameters (auxiliary variable
names, translation variants) from the hints — exactly the two hint kinds
the paper describes.

The tactic is deliberately *not* trusted: it never inspects the Boogie
program, so it cannot compensate for a broken translation; it can only
produce a proof tree that the kernel will subsequently accept or reject.
A lying hint stream yields a certificate the kernel rejects.
"""

from __future__ import annotations

from typing import List, Tuple

from ..frontend.hints import (
    AccHint,
    AssertHint,
    AssertionHint,
    AssignHint,
    CallHint,
    CondHint,
    ExhaleHint,
    FieldAssignHint,
    IfHint,
    ImpliesHint,
    InhaleHint,
    MethodHint,
    PureHint,
    SeqHint,
    SepHint,
    SkipHint,
    StmtHint,
    VarDeclHint,
)
from ..frontend.translator import TranslatedMethod, TranslationResult
from .prooftree import (
    MethodCertificate,
    node,
    ProgramCertificate,
    ProofNode,
)


class ProofGenError(Exception):
    """Raised when the hint stream is internally inconsistent."""


def _inhale_proof(hint: AssertionHint) -> ProofNode:
    if isinstance(hint, PureHint):
        return node("INH-PURE-ATOM")
    if isinstance(hint, AccHint):
        return node("INH-ACC-ATOM", perm_temp=hint.perm_temp_var)
    if isinstance(hint, SepHint):
        return node("INH-SEP-SIM", (_inhale_proof(hint.left), _inhale_proof(hint.right)))
    if isinstance(hint, ImpliesHint):
        return node("INH-IMP-SIM", (_inhale_proof(hint.body),))
    if isinstance(hint, CondHint):
        return node(
            "INH-COND-SIM", (_inhale_proof(hint.then), _inhale_proof(hint.otherwise))
        )
    raise ProofGenError(f"unknown assertion hint {hint!r}")


def _remcheck_proof(hint: AssertionHint) -> ProofNode:
    if isinstance(hint, PureHint):
        return node("RC-PURE-ATOM")
    if isinstance(hint, AccHint):
        return node("RC-ACC-ATOM", perm_temp=hint.perm_temp_var)
    if isinstance(hint, SepHint):
        return node(
            "RC-SEP-SIM", (_remcheck_proof(hint.left), _remcheck_proof(hint.right))
        )
    if isinstance(hint, ImpliesHint):
        return node("RC-IMP-SIM", (_remcheck_proof(hint.body),))
    if isinstance(hint, CondHint):
        return node(
            "RC-COND-SIM", (_remcheck_proof(hint.then), _remcheck_proof(hint.otherwise))
        )
    raise ProofGenError(f"unknown assertion hint {hint!r}")


def _exhale_proof(hint: ExhaleHint) -> ProofNode:
    return node(
        "EXH-SIM",
        (_remcheck_proof(hint.assertion),),
        wm=hint.wd_mask_var,
        havoc=hint.havoc_heap_var,
        with_wd=hint.with_wd_checks,
    )


def _inhale_stmt_proof(hint: InhaleHint) -> ProofNode:
    return node(
        "INHALE-STMT-SIM", (_inhale_proof(hint.assertion),), with_wd=hint.with_wd_checks
    )


def _stmt_proof(hint: StmtHint, dependencies: List[str]) -> ProofNode:
    if isinstance(hint, SkipHint):
        return node("SKIP-SIM")
    if isinstance(hint, SeqHint):
        return node(
            "SEQ-SIM",
            (_stmt_proof(hint.first, dependencies), _stmt_proof(hint.second, dependencies)),
        )
    if isinstance(hint, AssignHint):
        return node("ASSIGN-SIM")
    if isinstance(hint, FieldAssignHint):
        return node("FIELD-ASSIGN-SIM")
    if isinstance(hint, VarDeclHint):
        return node("VAR-DECL-SIM")
    if isinstance(hint, InhaleHint):
        return _inhale_stmt_proof(hint)
    if isinstance(hint, ExhaleHint):
        return _exhale_proof(hint)
    if isinstance(hint, AssertHint):
        return node(
            "ASSERT-SIM",
            (_remcheck_proof(hint.assertion),),
            wm=hint.wd_mask_var,
            am=hint.scratch_mask_var,
        )
    if isinstance(hint, IfHint):
        return node(
            "IF-SIM",
            (_stmt_proof(hint.then, dependencies), _stmt_proof(hint.otherwise, dependencies)),
        )
    if isinstance(hint, CallHint):
        dependencies.append(hint.callee)
        return node(
            "CALL-SIM",
            (_exhale_proof(hint.exhale_pre), _inhale_stmt_proof(hint.inhale_post)),
            callee=hint.callee,
        )
    raise ProofGenError(f"unknown statement hint {hint!r}")


def generate_method_certificate(translated: TranslatedMethod) -> MethodCertificate:
    """Assemble the per-method certificate from the method's hints."""
    hint: MethodHint = translated.hint
    wf_proof = node(
        "SPEC-WF-SIM",
        (
            _inhale_proof(hint.wellformedness.inhale_pre.assertion),
            _inhale_proof(hint.wellformedness.inhale_post.assertion),
        ),
    )
    dependencies: List[str] = []
    body_proof = None
    if hint.body is not None:
        if hint.body_inhale_pre is None or hint.body_exhale_post is None:
            raise ProofGenError(f"method {hint.method!r}: incomplete body hints")
        body_proof = node(
            "METHOD-BODY-SIM",
            (
                _inhale_stmt_proof(hint.body_inhale_pre),
                _stmt_proof(hint.body, dependencies),
                _exhale_proof(hint.body_exhale_post),
            ),
        )
    return MethodCertificate(
        method=hint.method,
        procedure=translated.procedure.name,
        record=translated.record,
        wf_proof=wf_proof,
        body_proof=body_proof,
        dependencies=tuple(sorted(set(dependencies))),
    )


def generate_program_certificate(result: TranslationResult) -> ProgramCertificate:
    """Generate the certificate for every method of a translation run."""
    certs = tuple(
        generate_method_certificate(result.methods[m.name])
        for m in result.viper_program.methods
    )
    return ProgramCertificate(certs)


def certify_translation(result: TranslationResult):
    """Generate and immediately check a certificate (the full Fig. 10 flow).

    Returns ``(certificate, report)``.  This convenience wrapper lives on
    the *untrusted* side of the boundary on purpose: generate-then-check
    is the untrusted generator handing its work to the trusted kernel,
    and hosting it in :mod:`repro.certification.theorem` would drag the
    tactic into the kernel's import closure (the TB001 check of
    :mod:`repro.tcb` now forbids exactly that).
    """
    from .theorem import check_program_certificate

    certificate = generate_program_certificate(result)
    return certificate, check_program_certificate(result, certificate)
