"""Kernel-side expression correspondence (trusted).

Trust: **trusted** — re-derives expression correspondence inside the kernel
instead of believing the tactic.

The certification kernel must know, independently of the (untrusted)
front-end, which Boogie expression *represents* a Viper expression under a
translation record (the ``readHeap``/``readMask`` encoding of Fig. 3), and
which assert commands constitute that expression's well-definedness checks
(Sec. 3.3's partial-evaluation semantics).  In the paper this knowledge is
a set of Isabelle lemmas about the expression translation, proved once and
for all (Sec. 4.1's expression-relation instantiation); here it is a
small, self-contained re-implementation that the checker compares against
the translator's output — a translator bug that changes an expression's
encoding makes the comparison (and hence certification) fail.

This module is intentionally independent from ``repro.frontend.translator``
(no imports from it): it is part of the trusted base, and its agreement
with the Viper semantics is validated semantically by the test suite
(``tests/certification/test_exprcorr_semantics.py``).
"""

from __future__ import annotations

from typing import List, Mapping

from ..boogie.ast import (
    band,
    BAssert,
    BBinOp,
    BBinOpKind,
    BBoolLit,
    BExpr,
    bimplies,
    BIntLit,
    bnot,
    BRealLit,
    BUnOp,
    BUnOpKind,
    BVar,
    CondB,
    FuncApp,
    TRUE,
)
from ..viper.ast import (
    BinOp,
    BinOpKind,
    BoolLit,
    CondExp,
    Expr,
    FieldAcc,
    IntLit,
    NullLit,
    PermLit,
    Type,
    UnOp,
    UnOpKind,
    Var,
)
from ..frontend.background import NULL_CONST, READ_HEAP, READ_MASK
from ..frontend.records import boogie_type_of, TranslationRecord

ZERO_REAL_K = BRealLit(0)


class CorrespondenceError(Exception):
    """Raised when the kernel cannot build a correspondence."""


_BINOP_MAP = {
    BinOpKind.ADD: BBinOpKind.ADD,
    BinOpKind.SUB: BBinOpKind.SUB,
    BinOpKind.MUL: BBinOpKind.MUL,
    BinOpKind.DIV: BBinOpKind.DIV,
    BinOpKind.MOD: BBinOpKind.MOD,
    BinOpKind.PERM_DIV: BBinOpKind.REAL_DIV,
    BinOpKind.LT: BBinOpKind.LT,
    BinOpKind.LE: BBinOpKind.LE,
    BinOpKind.GT: BBinOpKind.GT,
    BinOpKind.GE: BBinOpKind.GE,
    BinOpKind.EQ: BBinOpKind.EQ,
    BinOpKind.NE: BBinOpKind.NE,
    BinOpKind.AND: BBinOpKind.AND,
    BinOpKind.OR: BBinOpKind.OR,
    BinOpKind.IMPLIES: BBinOpKind.IMPLIES,
}


def kernel_translate_expr(
    expr: Expr, record: TranslationRecord, field_types: Mapping[str, Type]
) -> BExpr:
    """The kernel's definition of R(e) under a translation record."""
    if isinstance(expr, Var):
        return BVar(record.boogie_var(expr.name))
    if isinstance(expr, IntLit):
        return BIntLit(expr.value)
    if isinstance(expr, BoolLit):
        return BBoolLit(expr.value)
    if isinstance(expr, NullLit):
        return BVar(NULL_CONST)
    if isinstance(expr, PermLit):
        return BRealLit(expr.amount)
    if isinstance(expr, FieldAcc):
        if expr.field not in field_types:
            raise CorrespondenceError(f"unknown field {expr.field!r}")
        value_type = boogie_type_of(field_types[expr.field])
        return FuncApp(
            READ_HEAP,
            (value_type,),
            (
                BVar(record.heap_var),
                kernel_translate_expr(expr.receiver, record, field_types),
                BVar(record.field_const(expr.field)),
            ),
        )
    if isinstance(expr, UnOp):
        op = BUnOpKind.NEG if expr.op is UnOpKind.NEG else BUnOpKind.NOT
        return BUnOp(op, kernel_translate_expr(expr.operand, record, field_types))
    if isinstance(expr, CondExp):
        return CondB(
            kernel_translate_expr(expr.cond, record, field_types),
            kernel_translate_expr(expr.then, record, field_types),
            kernel_translate_expr(expr.otherwise, record, field_types),
        )
    if isinstance(expr, BinOp):
        return BBinOp(
            _BINOP_MAP[expr.op],
            kernel_translate_expr(expr.left, record, field_types),
            kernel_translate_expr(expr.right, record, field_types),
        )
    raise CorrespondenceError(f"unsupported expression {expr!r}")


def kernel_perm_read(
    mask_var: str,
    receiver: BExpr,
    field_name: str,
    record: TranslationRecord,
    field_types: Mapping[str, Type],
) -> BExpr:
    """``readMask`` applied to a receiver and field under the record."""
    if field_name not in field_types:
        raise CorrespondenceError(f"unknown field {field_name!r}")
    value_type = boogie_type_of(field_types[field_name])
    return FuncApp(
        READ_MASK,
        (value_type,),
        (BVar(mask_var), receiver, BVar(record.field_const(field_name))),
    )


def kernel_wd_checks(
    expr: Expr,
    record: TranslationRecord,
    field_types: Mapping[str, Type],
    guard: BExpr = TRUE,
) -> List[BAssert]:
    """The kernel's definition of e's well-definedness check commands.

    Mirrors the Viper semantics' ill-definedness conditions: permission
    reads consult the record's effective wd mask; subexpressions under lazy
    operators are checked under the appropriate guard.  The soundness of
    this definition w.r.t. ``eval_expr``'s partiality is validated
    semantically in the test suite.
    """
    if isinstance(expr, (Var, IntLit, BoolLit, NullLit, PermLit)):
        return []
    if isinstance(expr, FieldAcc):
        checks = kernel_wd_checks(expr.receiver, record, field_types, guard)
        perm = kernel_perm_read(
            record.effective_wd_mask,
            kernel_translate_expr(expr.receiver, record, field_types),
            expr.field,
            record,
            field_types,
        )
        checks.append(
            BAssert(bimplies(guard, BBinOp(BBinOpKind.GT, perm, ZERO_REAL_K)))
        )
        return checks
    if isinstance(expr, UnOp):
        return kernel_wd_checks(expr.operand, record, field_types, guard)
    if isinstance(expr, CondExp):
        cond_b = kernel_translate_expr(expr.cond, record, field_types)
        checks = kernel_wd_checks(expr.cond, record, field_types, guard)
        checks += kernel_wd_checks(expr.then, record, field_types, band(guard, cond_b))
        checks += kernel_wd_checks(
            expr.otherwise, record, field_types, band(guard, bnot(cond_b))
        )
        return checks
    if isinstance(expr, BinOp):
        left_b = kernel_translate_expr(expr.left, record, field_types)
        checks = kernel_wd_checks(expr.left, record, field_types, guard)
        if expr.op is BinOpKind.AND:
            checks += kernel_wd_checks(expr.right, record, field_types, band(guard, left_b))
        elif expr.op is BinOpKind.OR:
            checks += kernel_wd_checks(
                expr.right, record, field_types, band(guard, bnot(left_b))
            )
        elif expr.op is BinOpKind.IMPLIES:
            checks += kernel_wd_checks(expr.right, record, field_types, band(guard, left_b))
        else:
            checks += kernel_wd_checks(expr.right, record, field_types, guard)
        if expr.op in (BinOpKind.DIV, BinOpKind.MOD, BinOpKind.PERM_DIV):
            right_b = kernel_translate_expr(expr.right, record, field_types)
            checks.append(
                BAssert(bimplies(guard, BBinOp(BBinOpKind.NE, right_b, BIntLit(0))))
            )
        return checks
    raise CorrespondenceError(f"unsupported expression {expr!r}")
