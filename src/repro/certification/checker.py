"""The independent proof-checking kernel (trusted).

Trust: **trusted** — the proof kernel itself; it alone decides whether a
certificate is accepted.

Given a Viper program, a Boogie program, and a certificate (proof tree plus
translation record), the kernel re-establishes the forward simulation of
Sec. 3 by *checking* every rule application:

* composite rules (SEQ, IF, SEP, the exhale decomposition of Fig. 6, the
  call rule with its ``Q_pre`` non-local hypothesis of Sec. 4.2) thread
  Boogie program points (cursors) and translation records through their
  premises, exactly like the instantiation-independent rules of Fig. 5;
* atomic rules (the leaves — Fig. 8's 𝒫ᵢ) are *lemma schemas*: the kernel
  matches the Boogie commands at the current cursor against the schema
  shape, with all Viper-derived expressions recomputed by the kernel's own
  expression correspondence (:mod:`repro.certification.exprcorr`), and
  checks the schema's side conditions (variant soundness conditions,
  freshness of auxiliary variables).

The kernel never trusts the translator or the tactic: a certificate checks
only if the Boogie code *actually* simulates the Viper statement according
to the schema lemmas, whose semantic soundness is validated once and for
all by the test suite (``tests/certification/test_rule_soundness.py``) —
the reproduction's counterpart of the paper's Isabelle lemma proofs.

Checking a method certificate also verifies the procedure's overall C1/C2
structure (Fig. 10) and returns the set of *dependencies* (callee
well-formedness obligations) for the final theorem to discharge.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from fractions import Fraction
from typing import Dict, List, Mapping, Optional, Set, Tuple

from ..boogie.ast import (
    Assign,
    Assume,
    BAssert,
    BBinOp,
    BBinOpKind,
    beq,
    BExpr,
    bimplies,
    BoogieProgram,
    BRealLit,
    BVar,
    FALSE,
    FuncApp,
    Havoc,
    Procedure,
    SimpleCmd,
    TRUE,
)
from ..boogie.cursor import Cursor
from ..frontend.background import (
    GOOD_MASK,
    ID_ON_POSITIVE,
    NULL_CONST,
    UPD_HEAP,
    UPD_MASK,
    ZERO_MASK_CONST,
)
from ..frontend.records import boogie_type_of, TranslationRecord
from ..viper.ast import (
    Acc,
    AExpr,
    AssertStmt,
    Assertion,
    assertion_has_acc,
    CondAssert,
    Expr,
    FieldAssign,
    If,
    Implies,
    Inhale,
    LocalAssign,
    MethodCall,
    MethodDecl,
    PermLit,
    Program,
    SepConj,
    Seq,
    Skip,
    Stmt,
    substitute_assertion,
    Var,
    VarDecl,
    Exhale,
)
from ..viper.typechecker import ProgramTypeInfo
from .exprcorr import kernel_perm_read, kernel_translate_expr, kernel_wd_checks
from .prooftree import MethodCertificate, ProofNode

ZERO_REAL = BRealLit(Fraction(0))
ONE_REAL = BRealLit(Fraction(1))


class CheckError(Exception):
    """Raised when a certificate fails to check."""

    def __init__(self, message: str, path: Tuple[str, ...] = ()):
        location = " > ".join(path) if path else "<root>"
        super().__init__(f"[{location}] {message}")
        self.path = path


@dataclass(frozen=True)
class QContext:
    """A non-local hypothesis Q injected into a simulation proof (Sec. 3.5).

    ``kind`` is ``"pre"`` or ``"post"``; ``callee`` names the method whose
    spec well-formedness check justifies omitting wd checks.  The kernel
    permits wd-omitted atomic rules only under a ``QContext``, and records
    the dependency so the final theorem can discharge it (Fig. 10).
    """

    kind: str
    callee: str


@dataclass
class CheckReport:
    """Result of checking one method certificate."""

    method: str
    procedure: str
    ok: bool
    dependencies: Tuple[str, ...] = ()
    rules_checked: int = 0
    error: str = ""


class ProofChecker:
    """Checks a :class:`MethodCertificate` against both programs."""

    def __init__(
        self,
        viper_program: Program,
        type_info: ProgramTypeInfo,
        boogie_program: BoogieProgram,
    ):
        self._viper_program = viper_program
        self._type_info = type_info
        self._boogie_program = boogie_program
        self._field_types = type_info.field_types
        self._rules_checked = 0
        self._dependencies: Set[str] = set()
        self._path: List[str] = []

    # -- public entry point --------------------------------------------------

    def check_method_certificate(self, cert: MethodCertificate) -> CheckReport:
        """Check one method certificate; never raises on bad input."""
        self._rules_checked = 0
        self._dependencies = set()
        self._path = [cert.method]
        try:
            method = self._viper_program.method(cert.method)
            proc = self._boogie_program.procedure(cert.procedure)
            self._check_record(cert.record, method, proc)
            self._check_procedure_structure(cert, method, proc)
        except CheckError as error:
            return CheckReport(
                method=cert.method,
                procedure=cert.procedure,
                ok=False,
                rules_checked=self._rules_checked,
                error=str(error),
            )
        except KeyError as error:
            return CheckReport(
                method=cert.method,
                procedure=cert.procedure,
                ok=False,
                rules_checked=self._rules_checked,
                error=f"missing declaration: {error}",
            )
        return CheckReport(
            method=cert.method,
            procedure=cert.procedure,
            ok=True,
            dependencies=tuple(sorted(self._dependencies)),
            rules_checked=self._rules_checked,
        )

    # -- bookkeeping ------------------------------------------------------------

    def _fail(self, message: str) -> CheckError:
        return CheckError(message, tuple(self._path))

    def _enter(self, label: str) -> None:
        self._path.append(label)
        self._rules_checked += 1

    def _leave(self) -> None:
        self._path.pop()

    # -- record and structure checks -----------------------------------------------

    def _check_record(
        self, record: TranslationRecord, method: MethodDecl, proc: Procedure
    ) -> None:
        """The record must map Viper variables to correctly-typed locals."""
        local_types = dict(proc.locals)
        var_types = self._type_info.methods[method.name].var_types
        for viper_var, viper_type in var_types.items():
            if viper_var not in record.var_map:
                raise self._fail(f"record misses Viper variable {viper_var!r}")
            boogie_var = record.var_map[viper_var]
            if boogie_var not in local_types:
                raise self._fail(
                    f"record maps {viper_var!r} to undeclared local {boogie_var!r}"
                )
            if local_types[boogie_var] != boogie_type_of(viper_type):
                raise self._fail(
                    f"record maps {viper_var!r} to {boogie_var!r} of wrong type"
                )
        boogie_targets = [record.var_map[v] for v in var_types]
        if len(set(boogie_targets)) != len(boogie_targets):
            raise self._fail("record maps two Viper variables to one Boogie local")
        global_types = self._boogie_program.global_types()
        if record.heap_var not in global_types:
            raise self._fail(f"heap variable {record.heap_var!r} is not declared")
        if record.mask_var not in global_types:
            raise self._fail(f"mask variable {record.mask_var!r} is not declared")
        for field_name in self._field_types:
            if field_name not in record.field_consts:
                raise self._fail(f"record misses field constant for {field_name!r}")
            if record.field_consts[field_name] not in global_types:
                raise self._fail(
                    f"field constant {record.field_consts[field_name]!r} undeclared"
                )

    def _ensure_aux(self, name: Optional[str], record: TranslationRecord, what: str) -> str:
        """An auxiliary variable must not alias any record-tracked variable."""
        if name is None:
            raise self._fail(f"{what}: missing auxiliary variable name")
        tracked = set(record.var_map.values())
        tracked.add(record.heap_var)
        tracked.add(record.mask_var)
        if record.wd_mask_var is not None:
            tracked.add(record.wd_mask_var)
        tracked |= set(record.field_consts.values())
        tracked.add(NULL_CONST)
        tracked.add(ZERO_MASK_CONST)
        if name in tracked:
            raise self._fail(f"{what}: auxiliary variable {name!r} aliases the record")
        return name

    # -- command matching ------------------------------------------------------------

    def _expect_cmd(self, cursor: Cursor, expected: SimpleCmd, what: str) -> Cursor:
        if cursor.is_done or not cursor.cmds:
            raise self._fail(f"{what}: expected `{expected!r}`, found {cursor.peek()}")
        actual = cursor.current_cmd
        if actual != expected:
            raise self._fail(
                f"{what}: Boogie command mismatch\n  expected: {expected!r}\n"
                f"  actual:   {actual!r}"
            )
        return cursor.after_cmd()

    def _expect_wd(
        self,
        cursor: Cursor,
        exprs: Tuple[Expr, ...],
        record: TranslationRecord,
        what: str,
    ) -> Cursor:
        """Match the well-definedness asserts the kernel expects for exprs."""
        for expr in exprs:
            for check in kernel_wd_checks(expr, record, self._field_types):
                cursor = self._expect_cmd(cursor, check, f"{what} (wd check)")
        return cursor

    def _k(self, expr: Expr, record: TranslationRecord) -> BExpr:
        return kernel_translate_expr(expr, record, self._field_types)

    def _mask_read(
        self, record: TranslationRecord, receiver: BExpr, field_name: str, mask_var: str
    ) -> BExpr:
        return kernel_perm_read(mask_var, receiver, field_name, record, self._field_types)

    def _mask_upd(
        self,
        record: TranslationRecord,
        receiver: BExpr,
        field_name: str,
        amount: BExpr,
        mask_var: str,
    ) -> BExpr:
        value_type = boogie_type_of(self._field_types[field_name])
        return FuncApp(
            UPD_MASK,
            (value_type,),
            (BVar(mask_var), receiver, BVar(record.field_const(field_name)), amount),
        )

    # -- procedure structure (Fig. 10) --------------------------------------------------

    def _check_procedure_structure(
        self, cert: MethodCertificate, method: MethodDecl, proc: Procedure
    ) -> None:
        record = cert.record
        cursor = Cursor.from_stmt(proc.body)
        # Init section: the mask starts empty and consistent.
        cursor = self._expect_cmd(
            cursor, Assign(record.mask_var, BVar(ZERO_MASK_CONST)), "init"
        )
        cursor = self._expect_cmd(
            cursor, Assume(FuncApp(GOOD_MASK, (), (BVar(record.mask_var),))), "init"
        )
        # C1: nondeterministic branch checking spec well-formedness.
        if not cursor.at_if or cursor.ifopt.cond is not None:
            raise self._fail("expected the nondeterministic well-formedness branch")
        if cursor.enter_branch(False) != cursor.after_if():
            raise self._fail("well-formedness branch must have an empty else")
        join = cursor.after_if()
        wf_cursor = cursor.enter_branch(True)
        wf_cursor = self._check_wf_section(cert.wf_proof, method, record, wf_cursor)
        if wf_cursor != join:
            raise self._fail("well-formedness branch does not end at the join point")
        # C2: inhale pre; body; exhale post.
        cursor = join
        if method.body is None:
            if cert.body_proof is not None:
                raise self._fail("abstract method must not carry a body proof")
            if not cursor.is_done:
                raise self._fail("abstract method's procedure has trailing code")
            return
        if cert.body_proof is None:
            raise self._fail("method with a body requires a body proof")
        if cert.body_proof.rule != "METHOD-BODY-SIM" or len(cert.body_proof.premises) != 3:
            raise self._fail("body proof must be METHOD-BODY-SIM with three premises")
        pre_node, body_node, post_node = cert.body_proof.premises
        self._enter("C2")
        cursor = self._check_inhale_stmt(pre_node, method.pre, record, cursor, None)
        cursor = self._check_stmt(body_node, method.body, record, cursor)
        cursor = self._check_exhale(post_node, method.post, record, cursor, True, None)
        self._leave()
        if not cursor.is_done:
            raise self._fail(f"trailing Boogie code after the obligation: {cursor.peek()}")

    def _check_wf_section(
        self,
        proof: ProofNode,
        method: MethodDecl,
        record: TranslationRecord,
        cursor: Cursor,
    ) -> Cursor:
        """C1: inhale pre; havoc returns; inhale post; assume false."""
        if proof.rule != "SPEC-WF-SIM" or len(proof.premises) != 2:
            raise self._fail("wf proof must be SPEC-WF-SIM with two premises")
        self._enter("C1")
        pre_node, post_node = proof.premises
        cursor = self._check_inhale(pre_node, method.pre, record, cursor, True, None)
        for return_name in method.return_names:
            cursor = self._expect_cmd(
                cursor, Havoc(record.boogie_var(return_name)), "wf return havoc"
            )
        cursor = self._check_inhale(post_node, method.post, record, cursor, True, None)
        cursor = self._expect_cmd(cursor, Assume(FALSE), "wf branch terminator")
        self._leave()
        return cursor

    # -- statements -----------------------------------------------------------------------

    def _check_stmt(
        self, proof: ProofNode, stmt: Stmt, record: TranslationRecord, cursor: Cursor
    ) -> Cursor:
        self._enter(proof.rule)
        try:
            if proof.rule == "SKIP-SIM":
                if not isinstance(stmt, Skip):
                    raise self._fail("SKIP-SIM applied to a non-skip statement")
                return cursor
            if proof.rule == "SEQ-SIM":
                if not isinstance(stmt, Seq) or len(proof.premises) != 2:
                    raise self._fail("SEQ-SIM expects a Seq and two premises")
                cursor = self._check_stmt(proof.premises[0], stmt.first, record, cursor)
                return self._check_stmt(proof.premises[1], stmt.second, record, cursor)
            if proof.rule == "ASSIGN-SIM":
                return self._check_assign(stmt, record, cursor)
            if proof.rule == "FIELD-ASSIGN-SIM":
                return self._check_field_assign(stmt, record, cursor)
            if proof.rule == "VAR-DECL-SIM":
                if not isinstance(stmt, VarDecl):
                    raise self._fail("VAR-DECL-SIM applied to a non-declaration")
                return self._expect_cmd(
                    cursor, Havoc(record.boogie_var(stmt.name)), "scoped variable havoc"
                )
            if proof.rule == "INHALE-STMT-SIM":
                if not isinstance(stmt, Inhale) or len(proof.premises) != 1:
                    raise self._fail("INHALE-STMT-SIM expects an inhale and one premise")
                return self._check_inhale(
                    proof.premises[0], stmt.assertion, record, cursor, True, None
                )
            if proof.rule == "EXH-SIM":
                if not isinstance(stmt, Exhale):
                    raise self._fail("EXH-SIM applied to a non-exhale statement")
                return self._check_exhale(proof, stmt.assertion, record, cursor, True, None)
            if proof.rule == "ASSERT-SIM":
                return self._check_assert(proof, stmt, record, cursor)
            if proof.rule == "IF-SIM":
                return self._check_if(proof, stmt, record, cursor)
            if proof.rule == "CALL-SIM":
                return self._check_call(proof, stmt, record, cursor)
            raise self._fail(f"unknown statement rule {proof.rule!r}")
        finally:
            self._leave()

    def _check_assign(self, stmt: Stmt, record: TranslationRecord, cursor: Cursor) -> Cursor:
        if not isinstance(stmt, LocalAssign):
            raise self._fail("ASSIGN-SIM applied to a non-assignment")
        cursor = self._expect_wd(cursor, (stmt.rhs,), record, "assignment")
        return self._expect_cmd(
            cursor,
            Assign(record.boogie_var(stmt.target), self._k(stmt.rhs, record)),
            "assignment",
        )

    def _check_field_assign(
        self, stmt: Stmt, record: TranslationRecord, cursor: Cursor
    ) -> Cursor:
        if not isinstance(stmt, FieldAssign):
            raise self._fail("FIELD-ASSIGN-SIM applied to a non-field-assignment")
        cursor = self._expect_wd(cursor, (stmt.receiver, stmt.rhs), record, "field write")
        receiver = self._k(stmt.receiver, record)
        cursor = self._expect_cmd(
            cursor,
            BAssert(
                beq(self._mask_read(record, receiver, stmt.field, record.mask_var), ONE_REAL)
            ),
            "field write permission",
        )
        value_type = boogie_type_of(self._field_types[stmt.field])
        heap_update = FuncApp(
            UPD_HEAP,
            (value_type,),
            (
                BVar(record.heap_var),
                receiver,
                BVar(record.field_const(stmt.field)),
                self._k(stmt.rhs, record),
            ),
        )
        return self._expect_cmd(
            cursor, Assign(record.heap_var, heap_update), "field write update"
        )

    def _check_if(
        self, proof: ProofNode, stmt: Stmt, record: TranslationRecord, cursor: Cursor
    ) -> Cursor:
        if not isinstance(stmt, If) or len(proof.premises) != 2:
            raise self._fail("IF-SIM expects an if-statement and two premises")
        cursor = self._expect_wd(cursor, (stmt.cond,), record, "branch condition")
        if not cursor.at_if:
            raise self._fail(f"expected an if-statement, found {cursor.peek()}")
        if cursor.ifopt.cond != self._k(stmt.cond, record):
            raise self._fail("if condition does not correspond to the Viper condition")
        join = cursor.after_if()
        then_cursor = self._check_stmt(
            proof.premises[0], stmt.then, record, cursor.enter_branch(True)
        )
        if then_cursor != join:
            raise self._fail("then branch does not end at the join point")
        else_cursor = self._check_stmt(
            proof.premises[1], stmt.otherwise, record, cursor.enter_branch(False)
        )
        if else_cursor != join:
            raise self._fail("else branch does not end at the join point")
        return join

    def _check_assert(
        self, proof: ProofNode, stmt: Stmt, record: TranslationRecord, cursor: Cursor
    ) -> Cursor:
        if not isinstance(stmt, AssertStmt) or len(proof.premises) != 1:
            raise self._fail("ASSERT-SIM expects an assert and one premise")
        wd_mask = self._ensure_aux(proof.param("wm"), record, "assert wd mask")
        scratch = self._ensure_aux(proof.param("am"), record, "assert scratch mask")
        if wd_mask == scratch:
            raise self._fail("assert: wd mask and scratch mask must differ")
        cursor = self._expect_cmd(
            cursor, Assign(wd_mask, BVar(record.mask_var)), "assert wd snapshot"
        )
        cursor = self._expect_cmd(
            cursor, Assign(scratch, BVar(record.mask_var)), "assert scratch snapshot"
        )
        scratch_record = record.with_mask_var(scratch).with_wd_mask(wd_mask)
        return self._check_remcheck(
            proof.premises[0], stmt.assertion, scratch_record, cursor, True, None
        )

    def _check_call(
        self, proof: ProofNode, stmt: Stmt, record: TranslationRecord, cursor: Cursor
    ) -> Cursor:
        if not isinstance(stmt, MethodCall) or len(proof.premises) != 2:
            raise self._fail("CALL-SIM expects a call and two premises")
        callee_name = proof.param("callee")
        if callee_name != stmt.method:
            raise self._fail("CALL-SIM callee parameter does not match the call")
        callee = self._viper_program.method(stmt.method)
        for arg in stmt.args:
            if not isinstance(arg, Var):
                raise self._fail("call arguments must be variables in this subset")
        arg_names = {arg.name for arg in stmt.args if isinstance(arg, Var)}
        if arg_names & set(stmt.targets):
            raise self._fail("call targets must not occur among the arguments")
        # The kernel performs the specification substitution itself.
        arg_map = {formal: arg for (formal, _), arg in zip(callee.args, stmt.args)}
        pre = substitute_assertion(callee.pre, arg_map)
        # The optimised translation omits wd checks here (justified by the
        # callee's C1 section — Sec. 4.2); the unoptimised variant keeps
        # them.  The node declares which variant was used; the kernel only
        # grants the non-local hypothesis when checks are actually omitted.
        exhale_node = proof.premises[0]
        pre_with_wd = bool(exhale_node.param("with_wd", False))
        q = None if pre_with_wd else QContext("pre", stmt.method)
        cursor = self._check_exhale(exhale_node, pre, record, cursor, pre_with_wd, q)
        for target in stmt.targets:
            cursor = self._expect_cmd(
                cursor, Havoc(record.boogie_var(target)), "call target havoc"
            )
        ret_map = dict(arg_map)
        for (ret_formal, _), target in zip(callee.returns, stmt.targets):
            ret_map[ret_formal] = Var(target)
        post = substitute_assertion(callee.post, ret_map)
        post_node = proof.premises[1]
        post_with_wd = bool(post_node.param("with_wd", False))
        cursor = self._check_inhale_stmt(
            proof.premises[1], post, record, cursor, QContext("post", stmt.method)
        )
        # The dependency on the callee's spec well-formedness only arises
        # when some wd check was actually omitted (Fig. 10's hypothesis).
        if not pre_with_wd or not post_with_wd:
            self._dependencies.add(stmt.method)
        return cursor

    def _check_inhale_stmt(
        self,
        proof: ProofNode,
        assertion: Assertion,
        record: TranslationRecord,
        cursor: Cursor,
        q: Optional[QContext],
    ) -> Cursor:
        """Unwrap an INHALE-STMT-SIM node into the assertion-level check."""
        if proof.rule != "INHALE-STMT-SIM" or len(proof.premises) != 1:
            raise self._fail("expected an INHALE-STMT-SIM node")
        with_wd = bool(proof.param("with_wd", False))
        return self._check_inhale(
            proof.premises[0], assertion, record, cursor, with_wd, None if with_wd else q
        )

    # -- inhale ---------------------------------------------------------------------------

    def _check_inhale(
        self,
        proof: ProofNode,
        assertion: Assertion,
        record: TranslationRecord,
        cursor: Cursor,
        with_wd: bool,
        q: Optional[QContext],
    ) -> Cursor:
        self._enter(proof.rule)
        try:
            if not with_wd and q is None:
                raise self._fail(
                    "well-definedness checks omitted without a non-local hypothesis"
                )
            if proof.rule == "INH-PURE-ATOM":
                if not isinstance(assertion, AExpr):
                    raise self._fail("INH-PURE-ATOM applied to a non-pure assertion")
                if with_wd:
                    cursor = self._expect_wd(cursor, (assertion.expr,), record, "inhale")
                return self._expect_cmd(
                    cursor, Assume(self._k(assertion.expr, record)), "inhale assume"
                )
            if proof.rule == "INH-ACC-ATOM":
                return self._check_inhale_acc(proof, assertion, record, cursor, with_wd)
            if proof.rule == "INH-SEP-SIM":
                if not isinstance(assertion, SepConj) or len(proof.premises) != 2:
                    raise self._fail("INH-SEP-SIM expects a SepConj and two premises")
                cursor = self._check_inhale(
                    proof.premises[0], assertion.left, record, cursor, with_wd, q
                )
                return self._check_inhale(
                    proof.premises[1], assertion.right, record, cursor, with_wd, q
                )
            if proof.rule == "INH-IMP-SIM":
                if not isinstance(assertion, Implies) or len(proof.premises) != 1:
                    raise self._fail("INH-IMP-SIM expects an implication and one premise")
                if with_wd:
                    cursor = self._expect_wd(cursor, (assertion.cond,), record, "inhale guard")
                cursor = self._at_guarded_if(cursor, assertion.cond, record)
                join = cursor.after_if()
                if cursor.enter_branch(False) != join:
                    raise self._fail("implication translation must have an empty else")
                inner = self._check_inhale(
                    proof.premises[0], assertion.body, record,
                    cursor.enter_branch(True), with_wd, q,
                )
                if inner != join:
                    raise self._fail("implication body does not end at the join point")
                return join
            if proof.rule == "INH-COND-SIM":
                if not isinstance(assertion, CondAssert) or len(proof.premises) != 2:
                    raise self._fail("INH-COND-SIM expects a conditional and two premises")
                if with_wd:
                    cursor = self._expect_wd(cursor, (assertion.cond,), record, "inhale guard")
                cursor = self._at_guarded_if(cursor, assertion.cond, record)
                join = cursor.after_if()
                then_cursor = self._check_inhale(
                    proof.premises[0], assertion.then, record,
                    cursor.enter_branch(True), with_wd, q,
                )
                if then_cursor != join:
                    raise self._fail("conditional then-branch does not reach the join")
                else_cursor = self._check_inhale(
                    proof.premises[1], assertion.otherwise, record,
                    cursor.enter_branch(False), with_wd, q,
                )
                if else_cursor != join:
                    raise self._fail("conditional else-branch does not reach the join")
                return join
            raise self._fail(f"unknown inhale rule {proof.rule!r}")
        finally:
            self._leave()

    def _at_guarded_if(
        self, cursor: Cursor, cond: Expr, record: TranslationRecord
    ) -> Cursor:
        if not cursor.at_if:
            raise self._fail(f"expected a guarded if, found {cursor.peek()}")
        if cursor.ifopt.cond != self._k(cond, record):
            raise self._fail("guard does not correspond to the Viper condition")
        return cursor

    def _check_inhale_acc(
        self,
        proof: ProofNode,
        assertion: Assertion,
        record: TranslationRecord,
        cursor: Cursor,
        with_wd: bool,
    ) -> Cursor:
        if not isinstance(assertion, Acc):
            raise self._fail("INH-ACC-ATOM applied to a non-acc assertion")
        if with_wd:
            cursor = self._expect_wd(
                cursor, (assertion.receiver, assertion.perm), record, "inhale acc"
            )
        receiver = self._k(assertion.receiver, record)
        mask_var = record.mask_var
        perm_temp = proof.param("perm_temp")
        if perm_temp is None:
            # Fast path: sound only for positive literal amounts.
            if not (isinstance(assertion.perm, PermLit) and assertion.perm.amount > 0):
                raise self._fail(
                    "literal fast path used for a non-literal or non-positive amount"
                )
            amount: BExpr = BRealLit(assertion.perm.amount)
            cursor = self._expect_cmd(
                cursor,
                Assume(BBinOp(BBinOpKind.NE, receiver, BVar(NULL_CONST))),
                "inhale acc non-null",
            )
        else:
            temp = self._ensure_aux(perm_temp, record, "inhale permission temp")
            cursor = self._expect_cmd(
                cursor, Assign(temp, self._k(assertion.perm, record)), "inhale acc temp"
            )
            amount = BVar(temp)
            cursor = self._expect_cmd(
                cursor,
                BAssert(BBinOp(BBinOpKind.GE, amount, ZERO_REAL)),
                "inhale acc nonnegativity",
            )
            cursor = self._expect_cmd(
                cursor,
                Assume(
                    bimplies(
                        BBinOp(BBinOpKind.GT, amount, ZERO_REAL),
                        BBinOp(BBinOpKind.NE, receiver, BVar(NULL_CONST)),
                    )
                ),
                "inhale acc non-null",
            )
        new_amount = BBinOp(
            BBinOpKind.ADD,
            self._mask_read(record, receiver, assertion.field, mask_var),
            amount,
        )
        cursor = self._expect_cmd(
            cursor,
            Assign(
                mask_var,
                self._mask_upd(record, receiver, assertion.field, new_amount, mask_var),
            ),
            "inhale acc mask update",
        )
        return self._expect_cmd(
            cursor,
            Assume(FuncApp(GOOD_MASK, (), (BVar(mask_var),))),
            "inhale acc consistency",
        )

    # -- remcheck / exhale ----------------------------------------------------------------

    def _check_exhale(
        self,
        proof: ProofNode,
        assertion: Assertion,
        record: TranslationRecord,
        cursor: Cursor,
        with_wd: bool,
        q: Optional[QContext],
    ) -> Cursor:
        self._enter("EXH-SIM")
        try:
            if proof.rule != "EXH-SIM" or len(proof.premises) != 1:
                raise self._fail("EXH-SIM expects exactly one remcheck premise")
            if not with_wd and q is None:
                raise self._fail(
                    "well-definedness checks omitted without a non-local hypothesis"
                )
            wd_mask = proof.param("wm")
            rc_record = record
            if with_wd:
                wd_mask = self._ensure_aux(wd_mask, record, "exhale wd mask")
                cursor = self._expect_cmd(
                    cursor, Assign(wd_mask, BVar(record.mask_var)), "exhale wd snapshot"
                )
                rc_record = record.with_wd_mask(wd_mask)
            elif wd_mask is not None:
                raise self._fail("exhale without wd checks must not snapshot a wd mask")
            cursor = self._check_remcheck(
                proof.premises[0], assertion, rc_record, cursor, with_wd, q
            )
            havoc_var = proof.param("havoc")
            if havoc_var is None:
                # Omitting the nondeterministic heap assignment is sound
                # only when the remcheck cannot remove permission (Sec. 3.4).
                if assertion_has_acc(assertion):
                    raise self._fail(
                        "heap havoc omitted although the assertion holds permissions"
                    )
                return cursor
            havoc_name = self._ensure_aux(havoc_var, record, "exhale havoc heap")
            cursor = self._expect_cmd(cursor, Havoc(havoc_name), "exhale heap havoc")
            cursor = self._expect_cmd(
                cursor,
                Assume(
                    FuncApp(
                        ID_ON_POSITIVE,
                        (),
                        (BVar(record.heap_var), BVar(havoc_name), BVar(record.mask_var)),
                    )
                ),
                "exhale havoc frame",
            )
            cursor = self._expect_cmd(
                cursor, Assign(record.heap_var, BVar(havoc_name)), "exhale heap install"
            )
            return self._expect_cmd(
                cursor,
                Assume(FuncApp(GOOD_MASK, (), (BVar(record.mask_var),))),
                "exhale consistency",
            )
        finally:
            self._leave()

    def _check_remcheck(
        self,
        proof: ProofNode,
        assertion: Assertion,
        record: TranslationRecord,
        cursor: Cursor,
        with_wd: bool,
        q: Optional[QContext],
    ) -> Cursor:
        self._enter(proof.rule)
        try:
            if not with_wd and q is None:
                raise self._fail(
                    "well-definedness checks omitted without a non-local hypothesis"
                )
            if proof.rule == "RC-PURE-ATOM":
                if not isinstance(assertion, AExpr):
                    raise self._fail("RC-PURE-ATOM applied to a non-pure assertion")
                if with_wd:
                    cursor = self._expect_wd(cursor, (assertion.expr,), record, "remcheck")
                return self._expect_cmd(
                    cursor, BAssert(self._k(assertion.expr, record)), "remcheck assert"
                )
            if proof.rule == "RC-ACC-ATOM":
                return self._check_remcheck_acc(proof, assertion, record, cursor, with_wd)
            if proof.rule == "RC-SEP-SIM":
                if not isinstance(assertion, SepConj) or len(proof.premises) != 2:
                    raise self._fail("RC-SEP-SIM expects a SepConj and two premises")
                cursor = self._check_remcheck(
                    proof.premises[0], assertion.left, record, cursor, with_wd, q
                )
                return self._check_remcheck(
                    proof.premises[1], assertion.right, record, cursor, with_wd, q
                )
            if proof.rule == "RC-IMP-SIM":
                if not isinstance(assertion, Implies) or len(proof.premises) != 1:
                    raise self._fail("RC-IMP-SIM expects an implication and one premise")
                if with_wd:
                    cursor = self._expect_wd(
                        cursor, (assertion.cond,), record, "remcheck guard"
                    )
                cursor = self._at_guarded_if(cursor, assertion.cond, record)
                join = cursor.after_if()
                if cursor.enter_branch(False) != join:
                    raise self._fail("implication translation must have an empty else")
                inner = self._check_remcheck(
                    proof.premises[0], assertion.body, record,
                    cursor.enter_branch(True), with_wd, q,
                )
                if inner != join:
                    raise self._fail("implication body does not end at the join point")
                return join
            if proof.rule == "RC-COND-SIM":
                if not isinstance(assertion, CondAssert) or len(proof.premises) != 2:
                    raise self._fail("RC-COND-SIM expects a conditional and two premises")
                if with_wd:
                    cursor = self._expect_wd(
                        cursor, (assertion.cond,), record, "remcheck guard"
                    )
                cursor = self._at_guarded_if(cursor, assertion.cond, record)
                join = cursor.after_if()
                then_cursor = self._check_remcheck(
                    proof.premises[0], assertion.then, record,
                    cursor.enter_branch(True), with_wd, q,
                )
                if then_cursor != join:
                    raise self._fail("conditional then-branch does not reach the join")
                else_cursor = self._check_remcheck(
                    proof.premises[1], assertion.otherwise, record,
                    cursor.enter_branch(False), with_wd, q,
                )
                if else_cursor != join:
                    raise self._fail("conditional else-branch does not reach the join")
                return join
            raise self._fail(f"unknown remcheck rule {proof.rule!r}")
        finally:
            self._leave()

    def _check_remcheck_acc(
        self,
        proof: ProofNode,
        assertion: Assertion,
        record: TranslationRecord,
        cursor: Cursor,
        with_wd: bool,
    ) -> Cursor:
        if not isinstance(assertion, Acc):
            raise self._fail("RC-ACC-ATOM applied to a non-acc assertion")
        if with_wd:
            cursor = self._expect_wd(
                cursor, (assertion.receiver, assertion.perm), record, "remcheck acc"
            )
        receiver = self._k(assertion.receiver, record)
        mask_var = record.mask_var
        current = self._mask_read(record, receiver, assertion.field, mask_var)
        perm_temp = proof.param("perm_temp")
        if perm_temp is None:
            if not (isinstance(assertion.perm, PermLit) and assertion.perm.amount > 0):
                raise self._fail(
                    "literal fast path used for a non-literal or non-positive amount"
                )
            amount: BExpr = BRealLit(assertion.perm.amount)
            cursor = self._expect_cmd(
                cursor,
                BAssert(BBinOp(BBinOpKind.GE, current, amount)),
                "remcheck acc sufficiency",
            )
            return self._expect_cmd(
                cursor,
                Assign(
                    mask_var,
                    self._mask_upd(
                        record,
                        receiver,
                        assertion.field,
                        BBinOp(BBinOpKind.SUB, current, amount),
                        mask_var,
                    ),
                ),
                "remcheck acc removal",
            )
        temp = self._ensure_aux(perm_temp, record, "remcheck permission temp")
        cursor = self._expect_cmd(
            cursor, Assign(temp, self._k(assertion.perm, record)), "remcheck acc temp"
        )
        amount = BVar(temp)
        cursor = self._expect_cmd(
            cursor,
            BAssert(BBinOp(BBinOpKind.GE, amount, ZERO_REAL)),
            "remcheck acc nonnegativity",
        )
        if not cursor.at_if:
            raise self._fail(f"expected the guarded removal, found {cursor.peek()}")
        if cursor.ifopt.cond != BBinOp(BBinOpKind.NE, amount, ZERO_REAL):
            raise self._fail("guarded removal has an unexpected condition")
        join = cursor.after_if()
        if cursor.enter_branch(False) != join:
            raise self._fail("guarded removal must have an empty else")
        inner = cursor.enter_branch(True)
        inner = self._expect_cmd(
            inner,
            BAssert(BBinOp(BBinOpKind.GE, current, amount)),
            "remcheck acc sufficiency",
        )
        inner = self._expect_cmd(
            inner,
            Assign(
                mask_var,
                self._mask_upd(
                    record,
                    receiver,
                    assertion.field,
                    BBinOp(BBinOpKind.SUB, current, amount),
                    mask_var,
                ),
            ),
            "remcheck acc removal",
        )
        if inner != join:
            raise self._fail("guarded removal branch does not end at the join")
        return join
