"""Executable forward-simulation judgements (Sec. 3, Fig. 4).

Trust: **advisory** — simulation *testing* explores executions; the
kernel's rules, not these runs, accept certificates.

The paper's generic judgement ``sim`` quantifies over all related input
states: for every successful Viper execution there must be a Boogie
execution to the exit point ending in related states, and for every failing
Viper execution a failing Boogie execution.  This module makes the
judgement *executable over bounded state samples*:

* :func:`run_boogie_region` enumerates every Boogie execution between two
  program points (cursors);
* :func:`check_statement_simulation` / :func:`check_inhale_simulation` /
  :func:`check_remcheck_simulation` instantiate the generic judgement for
  the three instantiations of Fig. 4 (stmSim, the inhale effect, rcSim with
  its paired evaluation/reduction states);
* :func:`sample_viper_states` provides value-diverse state samples.

These checkers are how the reproduction validates the kernel's lemma
schemas "once and for all" (the role Isabelle proofs play in the paper):
``tests/certification/test_rule_soundness.py`` runs every schema through
them over exhaustive small-domain samples.
"""

from __future__ import annotations

import itertools
import random
from dataclasses import dataclass
from fractions import Fraction
from typing import Callable, Dict, Iterable, List, Mapping, Optional, Sequence, Tuple

from ..boogie.ast import BBool, BInt, BoogieProgram, BReal, BType, Procedure, TCon
from ..boogie.cursor import Cursor
from ..boogie.semantics import (
    BFailure,
    BMagic,
    BNormal,
    BoogieContext,
    step,
)
from ..boogie.state import BoogieState
from ..boogie.values import BValue, BVBool, BVInt, BVReal, FrozenMap, UValue
from ..choice import all_executions, ChoiceOracle
from ..frontend.background import NULL_ADDRESS
from ..viper.ast import Assertion, Stmt, Type
from ..viper.semantics import (
    exhale,
    Failure,
    inhale,
    Normal,
    Outcome,
    remcheck,
    ViperContext,
    exec_stmt,
)
from ..viper.state import ViperState
from .relations import rel_holds, SimRel


# ---------------------------------------------------------------------------
# Boogie region execution
# ---------------------------------------------------------------------------


@dataclass(frozen=True)
class RegionOutcome:
    """One enumerated Boogie execution of a region.

    ``kind`` is ``"reached"`` (exit cursor reached, with the final state),
    ``"failed"``, ``"magic"``, or ``"escaped"`` (execution finished or left
    the region without passing the exit point).
    """

    kind: str
    state: Optional[BoogieState] = None


def run_boogie_region(
    entry: Cursor,
    exit_cursor: Optional[Cursor],
    state: BoogieState,
    ctx: BoogieContext,
    max_paths: int = 100_000,
    max_steps: int = 100_000,
) -> List[RegionOutcome]:
    """Enumerate all executions from ``entry`` until ``exit_cursor``.

    With ``exit_cursor=None``, executions run to completion (termination of
    the whole statement).
    """

    def run(oracle: ChoiceOracle) -> RegionOutcome:
        cursor, current = entry, state
        for _ in range(max_steps):
            if exit_cursor is not None and cursor == exit_cursor:
                return RegionOutcome("reached", current)
            if cursor.is_done:
                if exit_cursor is None:
                    return RegionOutcome("reached", current)
                return RegionOutcome("escaped", current)
            result = step(cursor, current, ctx, oracle)
            if isinstance(result, BFailure):
                return RegionOutcome("failed")
            if isinstance(result, BMagic):
                return RegionOutcome("magic")
            cursor, current = result.cursor, result.state
        raise RuntimeError("Boogie region execution exceeded the step budget")

    return list(all_executions(run, max_paths=max_paths))


# ---------------------------------------------------------------------------
# State sampling
# ---------------------------------------------------------------------------

_SAMPLE_VALUES: Dict[Type, Tuple] = {}


def sample_viper_states(
    var_types: Mapping[str, Type],
    field_types: Mapping[str, Type],
    count: int,
    seed: int = 0,
    addresses: Sequence[int] = (1, 2),
) -> List[ViperState]:
    """Pseudo-random, value-diverse Viper states (stores, heaps, and masks)."""
    from ..viper.semantics import HAVOC_CANDIDATES
    from ..viper.state import default_value

    rng = random.Random(seed)
    perm_choices = [Fraction(0), Fraction(1, 2), Fraction(1)]
    states: List[ViperState] = []
    for _ in range(count):
        store = {
            name: rng.choice(HAVOC_CANDIDATES[typ]) for name, typ in var_types.items()
        }
        heap = {}
        mask = {}
        for address in addresses:
            for field_name, field_type in field_types.items():
                loc = (address, field_name)
                if rng.random() < 0.8:
                    heap[loc] = rng.choice(HAVOC_CANDIDATES[field_type])
                amount = rng.choice(perm_choices)
                if amount:
                    mask[loc] = amount
        states.append(
            ViperState(store=store, heap=heap, mask=mask, field_types=dict(field_types))
        )
    return states


def default_boogie_value(typ: BType) -> BValue:
    """A well-typed default value for initialising Boogie locals."""
    if isinstance(typ, BInt):
        return BVInt(0)
    if isinstance(typ, BReal):
        return BVReal(Fraction(0))
    if isinstance(typ, BBool):
        return BVBool(False)
    if isinstance(typ, TCon):
        if typ.name == "Ref":
            return UValue("Ref", NULL_ADDRESS)
        if typ.name in ("HeapType", "MaskType"):
            return UValue(typ.name, FrozenMap())
        if typ.name == "Field":
            return UValue("Field", "?")
    raise ValueError(f"no default for Boogie type {typ}")


def heap_havoc_hook(field_types: Mapping[str, Type]):
    """A state-aware havoc hook offering idOnPositive-relevant heap variants.

    For a ``HeapType``-typed havoc it returns: the current heap ``H``, plus
    every variant of ``H`` obtained by rewriting the value of up to two
    locations that carry *no* permission in the current mask ``M``.  This
    candidate set always contains the heap the Viper exhale havoc produces
    (which only rewrites newly-unpermissioned locations), so the subsequent
    ``assume idOnPositive(H, H', M)`` admits exactly the right executions.
    """
    from ..frontend.background import to_boogie_value
    from ..viper.semantics import HAVOC_CANDIDATES

    def hook(name: str, typ: BType, state: BoogieState, ctx: BoogieContext):
        if not (isinstance(typ, TCon) and typ.name == "HeapType"):
            return None
        if "H" not in state or "M" not in state:
            return None
        heap_val = state.lookup("H")
        mask_val = state.lookup("M")
        if not (isinstance(heap_val, UValue) and isinstance(heap_val.payload, FrozenMap)):
            return None
        if not (isinstance(mask_val, UValue) and isinstance(mask_val.payload, FrozenMap)):
            return None
        heap_payload = heap_val.payload
        mask_payload = mask_val.payload
        # Locations eligible for havoc: no positive permission in M.
        locs: List[Tuple[int, str]] = []
        for address in (1, 2):
            for field_name in field_types:
                loc = (address, field_name)
                if mask_payload.get(loc, Fraction(0)) <= 0:
                    locs.append(loc)
        candidates = [heap_val]
        for loc in locs:
            for value in HAVOC_CANDIDATES[field_types[loc[1]]]:
                candidates.append(
                    UValue("HeapType", heap_payload.set(loc, to_boogie_value(value)))
                )
        for loc_a, loc_b in itertools.combinations(locs, 2):
            for val_a in HAVOC_CANDIDATES[field_types[loc_a[1]]][:2]:
                for val_b in HAVOC_CANDIDATES[field_types[loc_b[1]]][:2]:
                    payload = heap_payload.set(loc_a, to_boogie_value(val_a))
                    payload = payload.set(loc_b, to_boogie_value(val_b))
                    candidates.append(UValue("HeapType", payload))
        return tuple(dict.fromkeys(candidates))

    return hook


# ---------------------------------------------------------------------------
# The generic simulation check (bounded)
# ---------------------------------------------------------------------------


@dataclass
class SimVerdict:
    """Result of a bounded generic-simulation check."""

    ok: bool
    detail: str = ""
    viper_state: Optional[ViperState] = None
    checked_pairs: int = 0


def _viper_all_outcomes(run: Callable[[ChoiceOracle], Outcome], max_paths: int = 20_000):
    return list(all_executions(run, max_paths=max_paths))


def check_generic_simulation(
    viper_runs: Callable[[ViperState], Iterable[Tuple[ViperState, ViperState, Outcome]]],
    states: Sequence[ViperState],
    boogie_state_of: Callable[[ViperState], BoogieState],
    entry: Cursor,
    exit_cursor: Optional[Cursor],
    ctx_b: BoogieContext,
    rel_out: SimRel,
    field_types: Mapping[str, Type],
) -> SimVerdict:
    """The bounded generic judgement sim (Fig. 4).

    ``viper_runs(σ)`` yields triples ``(σ⁰', σ', outcome)`` — one per
    enumerated Viper execution, where for normal outcomes the pair
    ``(σ⁰', σ')`` is the output (evaluation, reduction) state pair.  For
    every normal outcome a Boogie execution must reach the exit point in a
    state related by ``rel_out``; for every failing outcome some Boogie
    execution from the entry point must fail.
    """
    checked = 0
    for sigma in states:
        boogie_init = boogie_state_of(sigma)
        region: Optional[List[RegionOutcome]] = None
        for eval_out, red_out, outcome in viper_runs(sigma):
            checked += 1
            if isinstance(outcome, Failure):
                if region is None:
                    region = run_boogie_region(
                        entry, exit_cursor, boogie_init, ctx_b
                    )
                if not any(r.kind == "failed" for r in region):
                    return SimVerdict(
                        False,
                        "failing Viper execution has no failing Boogie execution",
                        sigma,
                        checked,
                    )
            elif isinstance(outcome, Normal):
                if region is None:
                    region = run_boogie_region(entry, exit_cursor, boogie_init, ctx_b)
                related = [
                    r
                    for r in region
                    if r.kind == "reached"
                    and rel_holds(rel_out, eval_out, red_out, r.state, field_types)
                ]
                if not related:
                    return SimVerdict(
                        False,
                        "successful Viper execution has no related Boogie execution",
                        sigma,
                        checked,
                    )
    return SimVerdict(True, checked_pairs=checked)


# ---------------------------------------------------------------------------
# Instantiations (Fig. 4)
# ---------------------------------------------------------------------------


def check_statement_simulation(
    stmt: Stmt,
    ctx_v: ViperContext,
    states: Sequence[ViperState],
    boogie_state_of: Callable[[ViperState], BoogieState],
    entry: Cursor,
    exit_cursor: Optional[Cursor],
    ctx_b: BoogieContext,
    rel_out: SimRel,
) -> SimVerdict:
    """stmSim: the forward simulation for Viper statements."""

    def viper_runs(sigma: ViperState):
        for outcome in _viper_all_outcomes(
            lambda oracle: exec_stmt(stmt, sigma, ctx_v, oracle)
        ):
            if isinstance(outcome, Normal):
                yield outcome.state, outcome.state, outcome
            else:
                yield sigma, sigma, outcome

    return check_generic_simulation(
        viper_runs,
        states,
        boogie_state_of,
        entry,
        exit_cursor,
        ctx_b,
        rel_out,
        ctx_v.field_types,
    )


def check_inhale_simulation(
    assertion: Assertion,
    ctx_v: ViperContext,
    states: Sequence[ViperState],
    boogie_state_of: Callable[[ViperState], BoogieState],
    entry: Cursor,
    exit_cursor: Optional[Cursor],
    ctx_b: BoogieContext,
    rel_out: SimRel,
) -> SimVerdict:
    """The simulation for the inhale effect (deterministic, no oracle)."""

    def viper_runs(sigma: ViperState):
        outcome = inhale(assertion, sigma)
        if isinstance(outcome, Normal):
            yield outcome.state, outcome.state, outcome
        else:
            yield sigma, sigma, outcome

    return check_generic_simulation(
        viper_runs,
        states,
        boogie_state_of,
        entry,
        exit_cursor,
        ctx_b,
        rel_out,
        ctx_v.field_types,
    )


def check_remcheck_simulation(
    assertion: Assertion,
    ctx_v: ViperContext,
    states: Sequence[ViperState],
    boogie_state_of: Callable[[ViperState], BoogieState],
    entry: Cursor,
    exit_cursor: Optional[Cursor],
    ctx_b: BoogieContext,
    rel_out: SimRel,
) -> SimVerdict:
    """rcSim: the paired-state simulation for the remcheck effect.

    The evaluation state is the input state (remcheck starts an exhale:
    σ⁰ = σ), the reduction state evolves; the success predicate keeps the
    evaluation state fixed — the instantiation at the bottom of Fig. 4.
    """

    def viper_runs(sigma: ViperState):
        outcome = remcheck(assertion, sigma, sigma)
        if isinstance(outcome, Normal):
            yield sigma, outcome.state, outcome
        else:
            yield sigma, sigma, outcome

    return check_generic_simulation(
        viper_runs,
        states,
        boogie_state_of,
        entry,
        exit_cursor,
        ctx_b,
        rel_out,
        ctx_v.field_types,
    )


def check_exhale_simulation(
    assertion: Assertion,
    ctx_v: ViperContext,
    states: Sequence[ViperState],
    boogie_state_of: Callable[[ViperState], BoogieState],
    entry: Cursor,
    exit_cursor: Optional[Cursor],
    ctx_b: BoogieContext,
    rel_out: SimRel,
) -> SimVerdict:
    """The simulation for the full exhale (remcheck + nonDet, Fig. 6)."""

    def viper_runs(sigma: ViperState):
        for outcome in _viper_all_outcomes(
            lambda oracle: exhale(assertion, sigma, ctx_v, oracle)
        ):
            if isinstance(outcome, Normal):
                yield outcome.state, outcome.state, outcome
            else:
                yield sigma, sigma, outcome

    return check_generic_simulation(
        viper_runs,
        states,
        boogie_state_of,
        entry,
        exit_cursor,
        ctx_b,
        rel_out,
        ctx_v.field_types,
    )
