"""Certificates: proof trees over the simulation rules, plus serialisation.

Trust: **trusted** — the kernel re-parses certificates from this format;
its reader is the kernel's front door.

A certificate is the reproduction's counterpart of the generated Isabelle
proof: a tree of rule applications (:class:`ProofNode`) per method, wrapped
in a :class:`MethodCertificate` (with the translation record and the
non-local *dependencies* it relies on — Sec. 4.2), and bundled into a
:class:`ProgramCertificate`.

Certificates serialise to a line-oriented text format (``.cert``) that can
be parsed back and checked *independently* of the translator that produced
it — the harness measures certificate size in lines of this format, the
analog of the paper's Isabelle-proof LoC columns.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Mapping, Optional, Tuple, Union

from ..frontend.records import TranslationRecord

ParamValue = Union[str, int, bool, None, Tuple[str, ...]]


@dataclass(frozen=True)
class ProofNode:
    """One rule application with parameters and premises."""

    rule: str
    params: Tuple[Tuple[str, ParamValue], ...] = ()
    premises: Tuple["ProofNode", ...] = ()

    def param(self, name: str, default: ParamValue = None) -> ParamValue:
        for key, value in self.params:
            if key == name:
                return value
        return default

    def size(self) -> int:
        return 1 + sum(p.size() for p in self.premises)


def node(rule: str, premises: Tuple[ProofNode, ...] = (), **params: ParamValue) -> ProofNode:
    """Convenience constructor keeping parameter order deterministic."""
    return ProofNode(rule, tuple(sorted(params.items())), premises)


@dataclass(frozen=True)
class MethodCertificate:
    """The per-method relational proof Rel^G_{F,M}(m, p(m)) (Fig. 10)."""

    method: str
    procedure: str
    record: TranslationRecord
    #: Proof of the C1 section (spec well-formedness simulation).
    wf_proof: ProofNode
    #: Proof of the C2 section; ``None`` for abstract methods.
    body_proof: Optional[ProofNode]
    #: Methods whose spec well-formedness this proof depends on (callees
    #: whose wd checks were omitted at call sites — Sec. 4.2).
    dependencies: Tuple[str, ...]

    def size(self) -> int:
        total = self.wf_proof.size()
        if self.body_proof is not None:
            total += self.body_proof.size()
        return total


@dataclass(frozen=True)
class ProgramCertificate:
    """All per-method certificates of one translation run."""

    methods: Tuple[MethodCertificate, ...]

    def certificate_for(self, method: str) -> MethodCertificate:
        for cert in self.methods:
            if cert.method == method:
                return cert
        raise KeyError(f"no certificate for method {method!r}")

    def size(self) -> int:
        return sum(cert.size() for cert in self.methods)


# ---------------------------------------------------------------------------
# Serialisation
# ---------------------------------------------------------------------------


def _encode_param(value: ParamValue) -> str:
    if value is None:
        return "@none"
    if value is True:
        return "@true"
    if value is False:
        return "@false"
    if isinstance(value, int):
        return str(value)
    if isinstance(value, tuple):
        return "@tuple:" + ",".join(value)
    return value


def _decode_param(text: str) -> ParamValue:
    if text == "@none":
        return None
    if text == "@true":
        return True
    if text == "@false":
        return False
    if text.startswith("@tuple:"):
        rest = text[len("@tuple:"):]
        return tuple(rest.split(",")) if rest else ()
    try:
        return int(text)
    except ValueError:
        return text


def _render_node(proof: ProofNode, indent: int, lines: List[str]) -> None:
    params = " ".join(f"{k}={_encode_param(v)}" for k, v in proof.params)
    lines.append("  " * indent + proof.rule + (f" {params}" if params else ""))
    for premise in proof.premises:
        _render_node(premise, indent + 1, lines)


def render_method_certificate(cert: MethodCertificate) -> str:
    """Serialise one method certificate to the line-oriented format."""
    lines: List[str] = []
    lines.append(f"method {cert.method}")
    lines.append(f"procedure {cert.procedure}")
    for viper_var in sorted(cert.record.var_map):
        lines.append(f"var {viper_var} {cert.record.var_map[viper_var]}")
    for field_name in sorted(cert.record.field_consts):
        lines.append(f"fieldconst {field_name} {cert.record.field_consts[field_name]}")
    lines.append(f"heapvar {cert.record.heap_var}")
    lines.append(f"maskvar {cert.record.mask_var}")
    for dep in cert.dependencies:
        lines.append(f"depends {dep}")
    lines.append("wf-proof")
    _render_node(cert.wf_proof, 1, lines)
    if cert.body_proof is not None:
        lines.append("body-proof")
        _render_node(cert.body_proof, 1, lines)
    lines.append("end-method")
    return "\n".join(lines)


def assemble_certificate_text(method_blocks) -> str:
    """Assemble rendered per-method blocks into a whole .cert document.

    The certificate format is deliberately compositional: a program
    certificate is the header, the per-method blocks in program order, and
    the trailer.  The incremental pipeline relies on this to mix cached
    and freshly-rendered method blocks into one document; this helper is
    the single place the framing is spelled out.
    """
    parts = ["CERTIFICATE-V1"]
    parts.extend(method_blocks)
    parts.append("end-certificate")
    return "\n".join(parts) + "\n"


def render_program_certificate(cert: ProgramCertificate) -> str:
    """Serialise a whole program certificate (the .cert file contents)."""
    return assemble_certificate_text(
        render_method_certificate(method_cert) for method_cert in cert.methods
    )


class CertificateParseError(Exception):
    """Raised when certificate text cannot be parsed."""


def _parse_proof_lines(lines: List[str], start: int, base_indent: int):
    """Parse an indented proof-node block; returns (node, next_index)."""
    header = lines[start]
    indent = (len(header) - len(header.lstrip())) // 2
    if indent != base_indent:
        raise CertificateParseError(f"bad indentation at line {start + 1}")
    parts = header.strip().split()
    rule = parts[0]
    params: List[Tuple[str, ParamValue]] = []
    for part in parts[1:]:
        if "=" not in part:
            raise CertificateParseError(f"bad parameter {part!r} at line {start + 1}")
        key, _, raw = part.partition("=")
        params.append((key, _decode_param(raw)))
    premises: List[ProofNode] = []
    index = start + 1
    while index < len(lines):
        line = lines[index]
        if not line.strip():
            index += 1
            continue
        line_indent = (len(line) - len(line.lstrip())) // 2
        if line_indent <= base_indent or not line.startswith("  "):
            break
        if line_indent == base_indent + 1:
            premise, index = _parse_proof_lines(lines, index, base_indent + 1)
            premises.append(premise)
        else:
            raise CertificateParseError(f"bad indentation at line {index + 1}")
    return ProofNode(rule, tuple(params), tuple(premises)), index


def parse_program_certificate(text: str) -> ProgramCertificate:
    """Parse a serialised certificate back into its tree form."""
    lines = text.splitlines()
    if not lines or lines[0].strip() != "CERTIFICATE-V1":
        raise CertificateParseError("missing certificate header")
    index = 1
    methods: List[MethodCertificate] = []
    while index < len(lines):
        line = lines[index].strip()
        if not line:
            index += 1
            continue
        if line == "end-certificate":
            break
        if not line.startswith("method "):
            raise CertificateParseError(f"expected 'method' at line {index + 1}")
        method = line.split()[1]
        index += 1
        procedure = ""
        var_map: Dict[str, str] = {}
        field_consts: Dict[str, str] = {}
        heap_var = "H"
        mask_var = "M"
        dependencies: List[str] = []
        wf_proof: Optional[ProofNode] = None
        body_proof: Optional[ProofNode] = None
        while index < len(lines):
            line = lines[index].strip()
            if not line:
                index += 1
                continue
            if line == "end-method":
                index += 1
                break
            if line.startswith("procedure "):
                procedure = line.split()[1]
                index += 1
            elif line.startswith("var "):
                _, viper_var, boogie_var = line.split()
                var_map[viper_var] = boogie_var
                index += 1
            elif line.startswith("fieldconst "):
                _, field_name, const = line.split()
                field_consts[field_name] = const
                index += 1
            elif line.startswith("heapvar "):
                heap_var = line.split()[1]
                index += 1
            elif line.startswith("maskvar "):
                mask_var = line.split()[1]
                index += 1
            elif line.startswith("depends "):
                dependencies.append(line.split()[1])
                index += 1
            elif line == "wf-proof":
                wf_proof, index = _parse_proof_lines(lines, index + 1, 1)
            elif line == "body-proof":
                body_proof, index = _parse_proof_lines(lines, index + 1, 1)
            else:
                raise CertificateParseError(f"unexpected line {index + 1}: {line!r}")
        if wf_proof is None:
            raise CertificateParseError(f"method {method!r} lacks a wf-proof")
        record = TranslationRecord(
            var_map=var_map,
            heap_var=heap_var,
            mask_var=mask_var,
            field_consts=field_consts,
        )
        methods.append(
            MethodCertificate(
                method=method,
                procedure=procedure,
                record=record,
                wf_proof=wf_proof,
                body_proof=body_proof,
                dependencies=tuple(dependencies),
            )
        )
    return ProgramCertificate(tuple(methods))
