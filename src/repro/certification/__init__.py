"""Forward-simulation certification of the Viper-to-Boogie translation.

Trust: **untrusted-but-checked** — package hub; it re-exports the untrusted
tactic next to the kernel.

The paper's core contribution: per-run generation of a checkable proof that
the correctness of the translated Boogie program implies the correctness of
the input Viper program (Sec. 3–4).  The *tactic* generates certificates
from translator hints (Sec. 4.3); the *checker* (kernel) validates them
independently against the simulation rules of Figs. 2–11; the *theorem*
module composes per-method results into the final statement (Fig. 10 /
Sec. 4.5).  What is trusted and what is not is inventoried in
docs/TRUSTED_BASE.md; the on-disk certificate format the kernel re-parses
is specified in docs/CERTIFICATE_FORMAT.md.
"""

from .checker import CheckError, CheckReport, ProofChecker, QContext  # noqa: F401
from .exprcorr import (  # noqa: F401
    CorrespondenceError,
    kernel_translate_expr,
    kernel_wd_checks,
)
from .prooftree import (  # noqa: F401
    assemble_certificate_text,
    CertificateParseError,
    MethodCertificate,
    node,
    parse_program_certificate,
    ProgramCertificate,
    ProofNode,
    render_method_certificate,
    render_program_certificate,
)
from .rules import render_catalog, rule_info, RULE_NAMES, RULES  # noqa: F401
from .relations import (  # noqa: F401
    boogie_state_for,
    rel_holds,
    SimRel,
)
from .tactic import (  # noqa: F401
    certify_translation,
    generate_method_certificate,
    generate_program_certificate,
    ProofGenError,
)
from .theorem import check_program_certificate, TheoremReport  # noqa: F401
