"""The performance regression observatory over the pipeline's instrumentation.

Trust: **advisory** — performance evidence; no verdict path ever consults
it (docs/TRUSTED_BASE.md).  A corrupted baseline or a wrong comparison
can page an operator, never the kernel.

The paper reports wall-clock blowup tables (Tab. 1) and its predecessor
on validating Boogie's VC generation leans on per-phase timing
breakdowns; both treat performance evidence as a first-class artifact.
This package gives the reproduction a memory of its own performance:

* :mod:`repro.perf.history` — an append-only JSONL baseline store under
  ``benchmarks/results/history/``: each record is one ``bench --json``
  document plus an environment fingerprint and a content digest
  (``repro bench record``);
* :mod:`repro.perf.compare` — the statistical comparator behind
  ``repro bench diff``: per-file, per-stage bootstrap confidence
  intervals on the median ratio, with a noise floor and cross-machine
  calibration so a cold CI runner does not page on jitter;
* :mod:`repro.perf.attribute` — when a file regresses, names the guilty
  stage(s), renders a side-by-side flame-tree diff (reusing the
  :mod:`repro.trace.summarize` tree), and wires deterministic
  ``cProfile`` capture around one pipeline run (``repro perf profile``);
* :mod:`repro.perf.window` — the serving tie-in: a rolling window of
  per-request stage timings behind ``GET /v1/perf`` and the
  ``repro_stage_seconds_baseline_ratio`` gauges.
"""

from .attribute import (  # noqa: F401
    attribution_from_diff,
    flame_diff_lines,
    profile_source,
    render_profile,
    representative_record,
    spans_from_file_record,
)
from .compare import (  # noqa: F401
    CompareConfig,
    DiffReport,
    FileDiff,
    StageDelta,
    STAGE_FIELDS,
    bootstrap_ratio_ci,
    compare_reports,
    file_records,
)
from .history import (  # noqa: F401
    DEFAULT_HISTORY_DIR,
    DEFAULT_HISTORY_FILE,
    HistoryError,
    HistoryRecord,
    append_record,
    environment_fingerprint,
    latest_record,
    make_record,
    read_history,
    report_digest,
)
from .window import (  # noqa: F401
    RollingStageWindow,
    baseline_stage_medians,
    load_baseline,
    stage_medians_from_report,
)

__all__ = [
    "CompareConfig",
    "DEFAULT_HISTORY_DIR",
    "DEFAULT_HISTORY_FILE",
    "DiffReport",
    "FileDiff",
    "HistoryError",
    "HistoryRecord",
    "RollingStageWindow",
    "STAGE_FIELDS",
    "StageDelta",
    "append_record",
    "attribution_from_diff",
    "baseline_stage_medians",
    "bootstrap_ratio_ci",
    "compare_reports",
    "environment_fingerprint",
    "file_records",
    "flame_diff_lines",
    "latest_record",
    "load_baseline",
    "make_record",
    "profile_source",
    "read_history",
    "render_profile",
    "report_digest",
    "representative_record",
    "spans_from_file_record",
    "stage_medians_from_report",
]
