"""The statistical comparator behind ``repro bench diff``.

Trust: **advisory** — a wrong comparison pages an operator or fails a CI
gate; it never reaches a verdict path (docs/TRUSTED_BASE.md).

Timings jitter.  A single slow sample on a cold CI runner must not page,
and a real 2× stage slowdown must.  The comparator therefore works on
*distributions*, not points:

* every history record of the baseline (and every ``--samples`` re-run
  of the current tree) contributes one sample per ``(file, stage)``;
* the test statistic is the **ratio of medians** current/baseline, with
  a seeded **bootstrap confidence interval** (resample both sides,
  recompute the ratio, take the central quantiles) — deterministic for
  a fixed input, so repeated CI invocations agree;
* a ``(file, stage)`` pair regresses only when the *lower* CI bound
  clears ``1 + noise_floor`` — the whole interval must sit above the
  floor, so one jittery sample cannot page;
* pairs where both medians sit under ``min_seconds`` are skipped:
  sub-noise-quantum timings carry no signal;
* when the two environment fingerprints disagree (a baseline recorded
  on a developer machine, diffed on a CI runner) the ratios are
  **calibrated** by the median ratio across all stage pairs (``total``
  excluded — it is the sum of the others), so only *relative* shifts in
  the stage mix page, not the absolute speed of the hardware.

The exit-code contract mirrors ``repro lint`` / ``repro tcb check``:
0 = no regression, 1 = regression(s), 2 = nothing comparable.
"""

from __future__ import annotations

import hashlib
import random
import statistics
from dataclasses import dataclass, field
from typing import Dict, List, Mapping, Optional, Sequence, Tuple

#: The per-file stages the comparator sees, mapped onto the
#: ``FileMetrics`` fields of one ``bench --json`` file row.  ``generate``
#: covers generate+render and ``check`` covers reparse+check, exactly as
#: the paper's tables aggregate them.
STAGE_FIELDS: Tuple[Tuple[str, str], ...] = (
    ("translate", "translate_seconds"),
    ("generate", "generate_seconds"),
    ("check", "check_seconds"),
    ("analyze", "analyze_seconds"),
    ("total", "total_seconds"),
)

#: A file is addressed as (suite, name) across reports.
FileKey = Tuple[str, str]


@dataclass
class CompareConfig:
    """Tunables of one diff; the defaults are the CI gate's policy."""

    #: A stage pages only when its whole CI sits above ``1 + noise_floor``
    #: (default: a calibrated median ratio provably above 1.5×).
    noise_floor: float = 0.5
    #: Pairs where both medians are under this are skipped as noise.
    min_seconds: float = 0.005
    #: Bootstrap resamples per (file, stage) pair.
    bootstrap: int = 400
    #: Central CI mass (0.95 → the 2.5%/97.5% quantiles).
    confidence: float = 0.95
    #: ``auto`` calibrates when fingerprints differ; ``on``/``off`` force.
    calibrate: str = "auto"
    #: Root seed of the deterministic bootstrap.
    seed: int = 0

    def to_dict(self) -> Dict[str, object]:
        return {
            "noise_floor": self.noise_floor,
            "min_seconds": self.min_seconds,
            "bootstrap": self.bootstrap,
            "confidence": self.confidence,
            "calibrate": self.calibrate,
            "seed": self.seed,
        }


def file_records(
    reports: Sequence[Mapping[str, object]], suite: Optional[str] = None
) -> Dict[FileKey, List[Dict[str, object]]]:
    """Per-file rows across several bench reports (one list entry per
    report that contains the file), optionally restricted to one suite."""
    out: Dict[FileKey, List[Dict[str, object]]] = {}
    for report in reports:
        suites = report.get("suites")
        if not isinstance(suites, dict):
            continue
        for suite_name, payload in suites.items():
            if suite is not None and suite_name != suite:
                continue
            for row in (payload or {}).get("files", []):
                key = (str(suite_name), str(row.get("name", "")))
                out.setdefault(key, []).append(dict(row))
    return out


def _stage_samples(rows: Sequence[Mapping[str, object]]) -> Dict[str, List[float]]:
    samples: Dict[str, List[float]] = {stage: [] for stage, _ in STAGE_FIELDS}
    for row in rows:
        for stage, fld in STAGE_FIELDS:
            value = row.get(fld)
            if isinstance(value, (int, float)):
                samples[stage].append(float(value))
    return samples


def _pair_seed(root: int, suite: str, name: str, stage: str) -> int:
    """A stable per-pair bootstrap seed (never the process hash seed)."""
    digest = hashlib.sha256(f"{root}|{suite}|{name}|{stage}".encode()).digest()
    return int.from_bytes(digest[:8], "big")


def bootstrap_ratio_ci(
    base: Sequence[float],
    current: Sequence[float],
    *,
    resamples: int = 400,
    confidence: float = 0.95,
    seed: int = 0,
) -> Tuple[float, float]:
    """A seeded bootstrap CI on ``median(current)/median(base)``.

    With one sample per side the interval degenerates to the point
    ratio, which is exactly the honest answer: no spread was observed.
    """
    base = [max(b, 0.0) for b in base]
    current = [max(c, 0.0) for c in current]
    if not base or not current:
        return (float("inf"), float("inf"))

    def ratio(b: Sequence[float], c: Sequence[float]) -> float:
        mb = statistics.median(b)
        mc = statistics.median(c)
        return mc / mb if mb > 0 else float("inf")

    if len(base) == 1 and len(current) == 1:
        point = ratio(base, current)
        return (point, point)
    rng = random.Random(seed)
    ratios = sorted(
        ratio(rng.choices(base, k=len(base)), rng.choices(current, k=len(current)))
        for _ in range(max(resamples, 1))
    )
    lo_index = int(((1.0 - confidence) / 2.0) * (len(ratios) - 1))
    hi_index = int((1.0 - (1.0 - confidence) / 2.0) * (len(ratios) - 1))
    return (ratios[lo_index], ratios[hi_index])


@dataclass
class StageDelta:
    """One (file, stage) comparison."""

    stage: str
    base_median: float
    current_median: float
    ratio: float
    calibrated_ratio: float
    ci_low: float
    ci_high: float
    regressed: bool
    skipped: bool
    base_samples: int
    current_samples: int

    @property
    def delta_seconds(self) -> float:
        return self.current_median - self.base_median

    def to_dict(self) -> Dict[str, object]:
        return {
            "stage": self.stage,
            "base_median": self.base_median,
            "current_median": self.current_median,
            "ratio": self.ratio,
            "calibrated_ratio": self.calibrated_ratio,
            "ci_low": self.ci_low,
            "ci_high": self.ci_high,
            "regressed": self.regressed,
            "skipped": self.skipped,
            "delta_seconds": self.delta_seconds,
            "base_samples": self.base_samples,
            "current_samples": self.current_samples,
        }


@dataclass
class FileDiff:
    """All stage comparisons for one corpus file."""

    suite: str
    name: str
    stages: Dict[str, StageDelta]

    @property
    def regressed(self) -> bool:
        return any(d.regressed for d in self.stages.values())

    @property
    def guilty_stages(self) -> List[str]:
        """The stage(s) to blame, most seconds lost first.

        ``total`` is only named when no specific stage cleared the floor
        (a diffuse slowdown spread across stages).
        """
        guilty = [
            d for d in self.stages.values() if d.regressed and d.stage != "total"
        ]
        if not guilty:
            guilty = [d for d in self.stages.values() if d.regressed]
        return [d.stage for d in sorted(guilty, key=lambda d: -d.delta_seconds)]

    def to_dict(self) -> Dict[str, object]:
        return {
            "suite": self.suite,
            "name": self.name,
            "regressed": self.regressed,
            "guilty_stages": self.guilty_stages,
            "stages": {stage: d.to_dict() for stage, d in self.stages.items()},
        }


@dataclass
class DiffReport:
    """The complete result of one ``repro bench diff``."""

    files: List[FileDiff]
    calibration: Dict[str, object]
    config: CompareConfig
    missing_in_current: List[str] = field(default_factory=list)
    missing_in_base: List[str] = field(default_factory=list)
    base_info: Dict[str, object] = field(default_factory=dict)
    current_info: Dict[str, object] = field(default_factory=dict)
    #: Attribution payloads attached by the CLI (one per regressed file).
    attributions: List[Dict[str, object]] = field(default_factory=list)

    @property
    def regressions(self) -> List[FileDiff]:
        return [f for f in self.files if f.regressed]

    @property
    def compared_pairs(self) -> int:
        return sum(
            1 for f in self.files for d in f.stages.values() if not d.skipped
        )

    @property
    def ok(self) -> bool:
        return not self.regressions and self.compared_pairs > 0

    @property
    def exit_code(self) -> int:
        """0 = clean, 1 = regression(s), 2 = nothing was comparable."""
        if self.compared_pairs == 0:
            return 2
        return 1 if self.regressions else 0

    def to_dict(self) -> Dict[str, object]:
        return {
            "schema": 1,
            "ok": self.ok,
            "exit_code": self.exit_code,
            "config": self.config.to_dict(),
            "calibration": dict(self.calibration),
            "base": dict(self.base_info),
            "current": dict(self.current_info),
            "compared_pairs": self.compared_pairs,
            "files": [f.to_dict() for f in self.files],
            "regressions": [
                {
                    "suite": f.suite,
                    "name": f.name,
                    "guilty_stages": f.guilty_stages,
                }
                for f in self.regressions
            ],
            "missing_in_current": list(self.missing_in_current),
            "missing_in_base": list(self.missing_in_base),
            "attribution": list(self.attributions),
        }

    def render(self) -> str:
        """The human-readable diff table plus the verdict line."""
        lines: List[str] = []
        cal = self.calibration
        if cal.get("applied"):
            lines.append(
                f"calibration: ×{cal['factor']:.3f} "
                f"({cal.get('reason', 'forced')}) — ratios below are relative"
            )
        header = (
            f"{'file':<28} {'stage':<10} {'base ms':>10} {'curr ms':>10} "
            f"{'ratio':>7} {'ci':>15}  verdict"
        )
        lines.append(header)
        lines.append("-" * len(header))
        for file_diff in self.files:
            for delta in file_diff.stages.values():
                if delta.skipped:
                    continue
                verdict = "REGRESSED" if delta.regressed else "ok"
                ci = f"[{delta.ci_low:.2f}, {delta.ci_high:.2f}]"
                lines.append(
                    f"{file_diff.suite + '/' + file_diff.name:<28} "
                    f"{delta.stage:<10} {delta.base_median * 1000:>10.3f} "
                    f"{delta.current_median * 1000:>10.3f} "
                    f"{delta.calibrated_ratio:>7.2f} {ci:>15}  {verdict}"
                )
        for name in self.missing_in_current:
            lines.append(f"{name}: in baseline only (not compared)")
        for name in self.missing_in_base:
            lines.append(f"{name}: new since baseline (not compared)")
        lines.append("")
        if self.compared_pairs == 0:
            lines.append("nothing comparable: no (file, stage) pair passed the filters")
        elif self.regressions:
            for file_diff in self.regressions:
                guilty = ", ".join(file_diff.guilty_stages) or "total"
                lines.append(
                    f"REGRESSION {file_diff.suite}/{file_diff.name}: "
                    f"stage(s) {guilty}"
                )
        else:
            floor = 1.0 + self.config.noise_floor
            lines.append(
                f"no regressions: {self.compared_pairs} stage comparisons, "
                f"all CIs below the ×{floor:.2f} floor"
            )
        return "\n".join(lines)


def _fingerprints_comparable(
    base: Mapping[str, object], current: Mapping[str, object]
) -> bool:
    """Same machine class?  Version/git drift is fine; hardware is not."""
    if not base or not current:
        return True  # nothing to compare against: assume same machine
    keys = ("platform", "machine", "cpu_count", "python", "implementation")
    return all(base.get(k) == current.get(k) for k in keys)


def compare_reports(
    base_reports: Sequence[Mapping[str, object]],
    current_reports: Sequence[Mapping[str, object]],
    config: Optional[CompareConfig] = None,
    *,
    suite: Optional[str] = None,
    base_fingerprint: Optional[Mapping[str, object]] = None,
    current_fingerprint: Optional[Mapping[str, object]] = None,
) -> DiffReport:
    """Compare two sample sets of bench reports, file by file, stage by stage."""
    config = config or CompareConfig()
    base_rows = file_records(base_reports, suite=suite)
    current_rows = file_records(current_reports, suite=suite)
    shared = sorted(set(base_rows) & set(current_rows))
    missing_in_current = sorted(
        f"{s}/{n}" for s, n in set(base_rows) - set(current_rows)
    )
    missing_in_base = sorted(
        f"{s}/{n}" for s, n in set(current_rows) - set(base_rows)
    )

    base_fp = dict(base_fingerprint or {})
    current_fp = dict(current_fingerprint or {})
    if config.calibrate == "on":
        applied, reason = True, "forced (--calibrate on)"
    elif config.calibrate == "off":
        applied, reason = False, "disabled (--calibrate off)"
    else:
        applied = not _fingerprints_comparable(base_fp, current_fp)
        reason = (
            "environment fingerprints differ (cross-machine diff)"
            if applied
            else "same machine class"
        )

    # Per-pair medians first: the calibration factor is the median ratio
    # across all real stage pairs ("total" excluded — it is the sum of
    # the others and would double-weight any shift).
    medians: Dict[Tuple[FileKey, str], Tuple[float, float, int, int]] = {}
    for key in shared:
        base_samples = _stage_samples(base_rows[key])
        current_samples = _stage_samples(current_rows[key])
        for stage, _ in STAGE_FIELDS:
            b, c = base_samples[stage], current_samples[stage]
            if not b or not c:
                continue
            medians[(key, stage)] = (
                statistics.median(b),
                statistics.median(c),
                len(b),
                len(c),
            )

    factor = 1.0
    if applied:
        ratios = [
            c / b
            for (key, stage), (b, c, _, _) in medians.items()
            if stage != "total" and b >= config.min_seconds / 4 and c > 0
        ]
        if ratios:
            factor = statistics.median(ratios)
        if factor <= 0:
            factor = 1.0
    calibration = {"applied": applied, "factor": factor, "reason": reason}

    files: List[FileDiff] = []
    for key in shared:
        suite_name, name = key
        base_samples = _stage_samples(base_rows[key])
        current_samples = _stage_samples(current_rows[key])
        deltas: Dict[str, StageDelta] = {}
        for stage, _ in STAGE_FIELDS:
            if (key, stage) not in medians:
                continue
            base_med, cur_med, n_base, n_cur = medians[(key, stage)]
            skipped = max(base_med, cur_med) < config.min_seconds
            ratio = cur_med / base_med if base_med > 0 else float("inf")
            ci_low, ci_high = bootstrap_ratio_ci(
                base_samples[stage],
                current_samples[stage],
                resamples=config.bootstrap,
                confidence=config.confidence,
                seed=_pair_seed(config.seed, suite_name, name, stage),
            )
            calibrated = ratio / factor
            cal_low, cal_high = ci_low / factor, ci_high / factor
            regressed = (not skipped) and cal_low > 1.0 + config.noise_floor
            deltas[stage] = StageDelta(
                stage=stage,
                base_median=base_med,
                current_median=cur_med,
                ratio=ratio,
                calibrated_ratio=calibrated,
                ci_low=cal_low,
                ci_high=cal_high,
                regressed=regressed,
                skipped=skipped,
                base_samples=n_base,
                current_samples=n_cur,
            )
        files.append(FileDiff(suite=suite_name, name=name, stages=deltas))

    return DiffReport(
        files=files,
        calibration=calibration,
        config=config,
        missing_in_current=missing_in_current,
        missing_in_base=missing_in_base,
        base_info={"fingerprint": base_fp, "samples": len(base_reports)},
        current_info={"fingerprint": current_fp, "samples": len(current_reports)},
    )
