"""The append-only benchmark history store behind ``repro bench record``.

Trust: **advisory** — performance baselines; nothing here is consulted by
any verdict path (docs/TRUSTED_BASE.md).

One history file is a JSONL sequence of *records*; one record is one
``bench --json`` document plus just enough context to compare it later:

* an **environment fingerprint** (repro version, python version,
  platform, CPU count, ``git describe``) so a diff knows whether two
  records came from comparable machines — the comparator
  (:mod:`repro.perf.compare`) auto-calibrates when they did not;
* a **content digest** (SHA-256 over the canonical JSON of the report)
  so a truncated or hand-edited baseline is detected at read time
  instead of silently skewing a comparison;
* an optional **label** and a wall-clock timestamp.

Records are append-only: ``repro bench record`` only ever adds lines, so
the checked-in baselines under ``benchmarks/results/history/`` keep
their history across re-recordings and multiple lines of the same label
act as repeated *samples* for the bootstrap comparator.
"""

from __future__ import annotations

import hashlib
import json
import os
import platform
import subprocess
import sys
import time
from dataclasses import dataclass, field
from typing import Dict, List, Optional

#: Bumped when the record envelope changes shape incompatibly.
SCHEMA_VERSION = 1

#: Where ``repro bench record`` appends by default (relative to the cwd).
DEFAULT_HISTORY_DIR = os.path.join("benchmarks", "results", "history")
DEFAULT_HISTORY_FILE = os.path.join(DEFAULT_HISTORY_DIR, "history.jsonl")


class HistoryError(ValueError):
    """A history file that cannot be trusted: bad JSON, bad digest, bad shape."""


def _git_describe() -> str:
    """``git describe --always --dirty`` for the checkout, else ``unknown``.

    Best-effort by design: an installed package without a ``.git`` — or a
    machine without git — still fingerprints, just without a revision.
    """
    try:
        completed = subprocess.run(
            ["git", "describe", "--always", "--dirty", "--tags"],
            cwd=os.path.dirname(os.path.abspath(__file__)),
            capture_output=True,
            text=True,
            timeout=5,
        )
    except (OSError, subprocess.SubprocessError):
        return "unknown"
    if completed.returncode != 0:
        return "unknown"
    return completed.stdout.strip() or "unknown"


def environment_fingerprint() -> Dict[str, object]:
    """The environment block stamped onto every record (and ``bench --json``).

    ``python`` and ``platform`` keep the exact semantics the pre-observatory
    ``bench --json`` meta block had, so old readers keep working; the rest
    is additive.
    """
    from .. import __version__

    return {
        "repro_version": __version__,
        "python": sys.version.split()[0],
        "implementation": platform.python_implementation(),
        "platform": platform.platform(),
        "machine": platform.machine(),
        "cpu_count": os.cpu_count() or 1,
        "git_describe": _git_describe(),
    }


def canonical_json(payload: object) -> str:
    """The canonical serialisation digests are computed over."""
    return json.dumps(payload, sort_keys=True, separators=(",", ":"))


def report_digest(report: Dict[str, object]) -> str:
    """``sha256:<hex>`` over the canonical JSON of one bench report."""
    return "sha256:" + hashlib.sha256(canonical_json(report).encode("utf-8")).hexdigest()


@dataclass
class HistoryRecord:
    """One line of a history file: a bench report plus its provenance."""

    report: Dict[str, object]
    fingerprint: Dict[str, object]
    digest: str
    label: str = ""
    recorded_unix: float = 0.0
    schema: int = SCHEMA_VERSION
    #: Where the record was read from (not serialised; set by the reader).
    path: str = field(default="", compare=False)
    line: int = field(default=0, compare=False)

    def to_dict(self) -> Dict[str, object]:
        return {
            "schema": self.schema,
            "label": self.label,
            "recorded_unix": self.recorded_unix,
            "fingerprint": dict(self.fingerprint),
            "digest": self.digest,
            "report": self.report,
        }

    @classmethod
    def from_dict(
        cls, payload: Dict[str, object], *, verify: bool = True
    ) -> "HistoryRecord":
        if not isinstance(payload, dict) or "report" not in payload:
            raise HistoryError("history record is not an object with a 'report'")
        report = payload["report"]
        if not isinstance(report, dict):
            raise HistoryError("history record 'report' is not an object")
        digest = str(payload.get("digest", ""))
        if verify:
            expected = report_digest(report)
            if digest != expected:
                raise HistoryError(
                    f"history record digest mismatch: stored {digest or '<none>'}, "
                    f"recomputed {expected} — the baseline was corrupted or "
                    f"hand-edited"
                )
        return cls(
            report=report,
            fingerprint=dict(payload.get("fingerprint") or {}),
            digest=digest,
            label=str(payload.get("label", "")),
            recorded_unix=float(payload.get("recorded_unix", 0.0)),
            schema=int(payload.get("schema", SCHEMA_VERSION)),
        )


def make_record(report: Dict[str, object], label: str = "") -> HistoryRecord:
    """Seal one bench report into a record (fingerprint + digest + stamp)."""
    return HistoryRecord(
        report=report,
        fingerprint=environment_fingerprint(),
        digest=report_digest(report),
        label=label,
        recorded_unix=time.time(),
    )


def append_record(path: str, record: HistoryRecord) -> None:
    """Append one record line to ``path``, creating parents as needed."""
    parent = os.path.dirname(os.path.abspath(path))
    if parent:
        os.makedirs(parent, exist_ok=True)
    with open(path, "a", encoding="utf-8") as handle:
        handle.write(canonical_json(record.to_dict()) + "\n")


def read_history(path: str, *, verify: bool = True) -> List[HistoryRecord]:
    """All records of one history file, in append order.

    With ``verify`` (the default) every record's digest is recomputed and
    a mismatch raises :class:`HistoryError` — a silently-corrupt baseline
    is worse than no baseline.
    """
    records: List[HistoryRecord] = []
    with open(path, "r", encoding="utf-8") as handle:
        for number, line in enumerate(handle, start=1):
            line = line.strip()
            if not line:
                continue
            try:
                payload = json.loads(line)
            except json.JSONDecodeError as error:
                raise HistoryError(f"{path}:{number}: invalid JSON: {error}") from None
            try:
                record = HistoryRecord.from_dict(payload, verify=verify)
            except HistoryError as error:
                raise HistoryError(f"{path}:{number}: {error}") from None
            record.path = path
            record.line = number
            records.append(record)
    if not records:
        raise HistoryError(f"{path}: no history records")
    return records


def latest_record(
    records: List[HistoryRecord], label: Optional[str] = None
) -> HistoryRecord:
    """The most recently appended record (optionally of one label)."""
    candidates = (
        [r for r in records if r.label == label] if label is not None else records
    )
    if not candidates:
        raise HistoryError(f"no history record with label {label!r}")
    return candidates[-1]
