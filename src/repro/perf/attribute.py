"""Stage-level attribution: *which stage* made a file slow, shown as a flame diff.

Trust: **advisory** — explains a regression to a human; no verdict path
consults it (docs/TRUSTED_BASE.md).

The comparator (:mod:`repro.perf.compare`) says *that* a file regressed
and in which aggregate stage; this module turns that verdict into an
explanation:

* :func:`spans_from_file_record` rebuilds a deterministic span tree from
  one ``bench --json`` file row — the pipeline root, one child per
  aggregate stage, and one grandchild per method unit (from the unit
  cache summary) — so the regular :mod:`repro.trace.summarize` flame
  machinery renders it;
* :func:`flame_diff_lines` walks the baseline and current trees in
  lockstep and prints them side by side with per-node ratios;
* :func:`attribution_from_diff` packages the guilty stages, the
  per-method deltas, and the flame diff into one JSON-able payload;
* :func:`profile_source` wires ``cProfile`` around a single in-process
  pipeline run with deterministically ordered top-N hotspots
  (``repro perf profile``).
"""

from __future__ import annotations

import cProfile
import hashlib
import io
import pstats
import statistics
from typing import Any, Dict, List, Mapping, Optional, Sequence, Tuple

from ..trace.spans import Span
from ..trace.summarize import flame_tree
from .compare import STAGE_FIELDS, FileDiff

#: Where a unit-cache stage books in the aggregate per-file stages.
_UNIT_STAGE_PARENT = {
    "translate": "translate",
    "generate": "generate",
    "render": "generate",
    "reparse": "check",
    "check": "check",
    "analyze": "analyze",
}


def _span_id(trace_id: str, path: str) -> str:
    """A deterministic 16-hex span id — same row, same tree, every run."""
    return hashlib.sha256(f"{trace_id}:{path}".encode()).hexdigest()[:16]


def representative_record(rows: Sequence[Mapping[str, object]]) -> Dict[str, object]:
    """The sample row closest to the median total — the one worth rendering."""
    if not rows:
        raise ValueError("no sample rows to choose a representative from")
    totals = [float(r.get("total_seconds") or 0.0) for r in rows]
    target = statistics.median(totals)
    best = min(range(len(rows)), key=lambda i: abs(totals[i] - target))
    return dict(rows[best])


def spans_from_file_record(
    row: Mapping[str, object], *, trace_id: str = "0" * 31 + "1"
) -> List[Span]:
    """A synthetic, deterministic span tree for one bench file row.

    Root = the whole pipeline run (``total_seconds``); children = the
    aggregate stages of :data:`~repro.perf.compare.STAGE_FIELDS`
    (``total`` excluded); grandchildren = the per-method unit timings
    from the row's unit-cache summary, parented under the stage they ran
    in.  Span ids are content-derived so two renders of the same row are
    identical — a requirement for diffing the trees line by line.
    """
    name = str(row.get("name", "?"))
    root = Span(
        name="pipeline",
        trace_id=trace_id,
        span_id=_span_id(trace_id, "pipeline"),
        start_unix=0.0,
        duration=float(row.get("total_seconds") or 0.0),
        attributes={"file": name, "suite": str(row.get("suite", ""))},
    )
    spans = [root]
    stage_ids: Dict[str, str] = {}
    offset = 0.0
    for position, (stage, fld) in enumerate(STAGE_FIELDS):
        if stage == "total":
            continue
        seconds = row.get(fld)
        if not isinstance(seconds, (int, float)):
            continue
        span_id = _span_id(trace_id, f"stage:{stage}")
        stage_ids[stage] = span_id
        spans.append(
            Span(
                name=stage,
                trace_id=trace_id,
                span_id=span_id,
                parent_id=root.span_id,
                start_unix=offset + position * 1e-9,
                duration=float(seconds),
            )
        )
        offset += float(seconds)
    unit_cache = row.get("unit_cache")
    methods = (unit_cache or {}).get("methods") if isinstance(unit_cache, dict) else None
    for method, entry in sorted((methods or {}).items()):
        for unit_stage, timing in sorted((entry.get("stages") or {}).items()):
            parent_stage = _UNIT_STAGE_PARENT.get(unit_stage)
            parent = stage_ids.get(parent_stage) if parent_stage else None
            if parent is None:
                continue
            spans.append(
                Span(
                    name=f"unit:{method}",
                    trace_id=trace_id,
                    span_id=_span_id(trace_id, f"unit:{unit_stage}:{method}"),
                    parent_id=parent,
                    start_unix=offset,
                    duration=float(timing.get("seconds") or 0.0),
                    attributes={
                        "method": method,
                        "tier": str(timing.get("tier", "")),
                        "cache": "hit" if timing.get("reused") else "miss",
                    },
                )
            )
    return spans


def _tree_for_row(row: Mapping[str, object]) -> Dict[str, Any]:
    spans = spans_from_file_record(row)
    return flame_tree(spans, spans[0])


def _index_children(node: Mapping[str, Any]) -> Dict[str, Mapping[str, Any]]:
    return {child["name"]: child for child in node.get("children", ())}


def flame_diff_lines(
    base_row: Mapping[str, object],
    current_row: Mapping[str, object],
    *,
    indent: str = "  ",
) -> List[str]:
    """The two flame trees of one file, walked in lockstep, side by side.

    Every node present in either tree gets a line: base ms, current ms,
    and the ratio (``-`` when a side is missing).  Node order follows the
    current tree, with baseline-only nodes appended at their depth.
    """
    base_tree = _tree_for_row(base_row)
    current_tree = _tree_for_row(current_row)
    header = f"{'span':<30} {'base ms':>10} {'curr ms':>10} {'ratio':>7}"
    lines = [header, "-" * len(header)]

    def fmt(value: Optional[float]) -> str:
        return f"{value * 1000:>10.3f}" if value is not None else f"{'-':>10}"

    def walk(
        base_node: Optional[Mapping[str, Any]],
        current_node: Optional[Mapping[str, Any]],
        depth: int,
    ) -> None:
        name = (current_node or base_node or {}).get("name", "?")
        base_ms = base_node.get("duration") if base_node else None
        cur_ms = current_node.get("duration") if current_node else None
        if base_ms and cur_ms is not None:
            ratio = f"{cur_ms / base_ms:>7.2f}" if base_ms > 0 else f"{'inf':>7}"
        else:
            ratio = f"{'-':>7}"
        label = f"{indent * depth}{name}"
        lines.append(f"{label:<30} {fmt(base_ms)} {fmt(cur_ms)} {ratio}")
        base_children = _index_children(base_node) if base_node else {}
        current_children = _index_children(current_node) if current_node else {}
        for child_name, child in current_children.items():
            walk(base_children.get(child_name), child, depth + 1)
        for child_name, child in base_children.items():
            if child_name not in current_children:
                walk(child, None, depth + 1)

    walk(base_tree, current_tree, 0)
    return lines


def _method_deltas(
    base_row: Mapping[str, object], current_row: Mapping[str, object]
) -> List[Dict[str, object]]:
    """Per-method second deltas across the unit-cache summaries, worst first."""

    def per_method(row: Mapping[str, object]) -> Dict[str, float]:
        unit_cache = row.get("unit_cache")
        methods = (
            (unit_cache or {}).get("methods") if isinstance(unit_cache, dict) else None
        )
        totals: Dict[str, float] = {}
        for method, entry in (methods or {}).items():
            totals[method] = sum(
                float(t.get("seconds") or 0.0)
                for t in (entry.get("stages") or {}).values()
            )
        return totals

    base_totals = per_method(base_row)
    current_totals = per_method(current_row)
    deltas = []
    for method in sorted(set(base_totals) | set(current_totals)):
        base_s = base_totals.get(method, 0.0)
        cur_s = current_totals.get(method, 0.0)
        deltas.append(
            {
                "method": method,
                "base_seconds": base_s,
                "current_seconds": cur_s,
                "delta_seconds": cur_s - base_s,
            }
        )
    deltas.sort(key=lambda d: -d["delta_seconds"])
    return deltas


def attribution_from_diff(
    file_diff: FileDiff,
    base_rows: Sequence[Mapping[str, object]],
    current_rows: Sequence[Mapping[str, object]],
) -> Dict[str, object]:
    """The full attribution payload for one regressed file.

    Names the guilty stage(s) (most seconds lost first), lists the
    per-method deltas from the unit-cache summaries, and attaches the
    side-by-side flame diff of the representative baseline and current
    sample rows.
    """
    base_row = representative_record(base_rows)
    current_row = representative_record(current_rows)
    guilty = file_diff.guilty_stages
    return {
        "suite": file_diff.suite,
        "name": file_diff.name,
        "guilty_stages": guilty,
        "stages": {
            stage: delta.to_dict() for stage, delta in file_diff.stages.items()
        },
        "method_deltas": _method_deltas(base_row, current_row)[:10],
        "flame_diff": flame_diff_lines(base_row, current_row),
    }


def profile_source(
    source: str,
    *,
    upto: str = "check",
    top: int = 20,
    analyze: bool = True,
) -> Dict[str, object]:
    """One in-process pipeline run under ``cProfile``, hotspots first.

    Deterministic in everything but the timings themselves: hotspots are
    ordered by cumulative time with the printed function name as the tie
    breaker, truncated to ``top``, and the per-stage seconds come from
    the same :class:`PipelineInstrumentation` the bench harness uses.
    """
    from ..pipeline import PipelineInstrumentation, run_pipeline

    inst = PipelineInstrumentation()
    profiler = cProfile.Profile()
    profiler.enable()
    try:
        run_pipeline(
            source, upto=upto, instrumentation=inst, analyze=analyze,
            wrap_errors=True,
        )
    finally:
        profiler.disable()
    stats = pstats.Stats(profiler, stream=io.StringIO())
    hotspots: List[Dict[str, object]] = []
    rows: List[Tuple[float, str, Dict[str, object]]] = []
    for (filename, lineno, function), (cc, nc, tt, ct, _callers) in (
        stats.stats.items()  # type: ignore[attr-defined]
    ):
        if function.startswith("<") and filename == "~":
            continue  # builtins noise
        where = f"{filename.rsplit('/', 1)[-1]}:{lineno}:{function}"
        rows.append(
            (
                ct,
                where,
                {
                    "function": where,
                    "calls": int(nc),
                    "primitive_calls": int(cc),
                    "total_seconds": tt,
                    "cumulative_seconds": ct,
                },
            )
        )
    rows.sort(key=lambda r: (-r[0], r[1]))
    hotspots = [payload for _, _, payload in rows[: max(top, 0)]]
    stage_seconds = {
        stage: inst.stage_seconds(stage)
        for stage in sorted({r.stage for r in inst.records})
    }
    return {
        "schema": 1,
        "upto": upto,
        "total_seconds": inst.total_seconds(),
        "stage_seconds": stage_seconds,
        "hotspots": hotspots,
    }


def render_profile(profile: Mapping[str, object]) -> str:
    """The human-readable ``repro perf profile`` report."""
    lines = [
        f"pipeline total: {float(profile.get('total_seconds') or 0.0) * 1000:.3f} ms "
        f"(upto {profile.get('upto', 'check')})",
        "",
        "per-stage seconds:",
    ]
    for stage, seconds in sorted(
        (profile.get("stage_seconds") or {}).items(), key=lambda kv: -kv[1]
    ):
        lines.append(f"  {stage:<12} {seconds * 1000:>10.3f} ms")
    lines.append("")
    header = f"{'cumulative ms':>13} {'self ms':>10} {'calls':>8}  function"
    lines.append(header)
    lines.append("-" * len(header))
    for spot in profile.get("hotspots") or []:
        lines.append(
            f"{float(spot['cumulative_seconds']) * 1000:>13.3f} "
            f"{float(spot['total_seconds']) * 1000:>10.3f} "
            f"{int(spot['calls']):>8}  {spot['function']}"
        )
    return "\n".join(lines)
