"""The serving tie-in: a rolling window of per-request stage timings.

Trust: **advisory** — feeds ``GET /v1/perf`` and the
``repro_stage_seconds_baseline_ratio`` gauges; no verdict path consults
it (docs/TRUSTED_BASE.md).

A deployed node should report its own drift without an external metrics
stack: the server feeds every request's per-stage seconds into a
bounded :class:`RollingStageWindow`, and the window compares its rolling
medians against the per-stage medians of a recorded baseline
(``repro serve --perf-baseline benchmarks/results/history/…``).  A
ratio of ~1.0 means the node performs as recorded; a sustained 2.0 on
one stage is the serving-time analogue of a failed ``repro bench diff``.
"""

from __future__ import annotations

import statistics
import threading
from collections import deque
from typing import Deque, Dict, List, Mapping, Optional, Sequence, Tuple

from .compare import STAGE_FIELDS
from .history import latest_record, read_history


def stage_medians_from_report(report: Mapping[str, object]) -> Dict[str, float]:
    """Per-stage median seconds across every file of one bench report."""
    samples: Dict[str, List[float]] = {stage: [] for stage, _ in STAGE_FIELDS}
    suites = report.get("suites")
    if isinstance(suites, dict):
        for payload in suites.values():
            for row in (payload or {}).get("files", []):
                for stage, fld in STAGE_FIELDS:
                    value = row.get(fld)
                    if isinstance(value, (int, float)):
                        samples[stage].append(float(value))
    return {
        stage: statistics.median(values)
        for stage, values in samples.items()
        if values
    }


def baseline_stage_medians(
    reports: Sequence[Mapping[str, object]]
) -> Dict[str, float]:
    """Per-stage medians pooled across several baseline reports."""
    pooled: Dict[str, List[float]] = {}
    for report in reports:
        for stage, median in stage_medians_from_report(report).items():
            pooled.setdefault(stage, []).append(median)
    return {stage: statistics.median(values) for stage, values in pooled.items()}


def load_baseline(
    path: str, label: Optional[str] = None
) -> Tuple[Dict[str, float], Dict[str, object]]:
    """A history file → (per-stage baseline medians, its fingerprint).

    All records (of ``label``, when given) are pooled as samples; the
    fingerprint is the latest record's.
    """
    records = read_history(path)
    if label is not None:
        records = [r for r in records if r.label == label]
    latest = latest_record(records)
    medians = baseline_stage_medians([r.report for r in records])
    return medians, dict(latest.fingerprint)


class RollingStageWindow:
    """A thread-safe bounded window of per-request stage timings.

    The server calls :meth:`observe` once per completed certification
    request with that request's ``stage_seconds`` map; readers get
    rolling medians, the drift ratios against the baseline, and the
    ``GET /v1/perf`` snapshot.
    """

    def __init__(
        self,
        maxlen: int = 256,
        baseline: Optional[Mapping[str, float]] = None,
        baseline_info: Optional[Mapping[str, object]] = None,
    ) -> None:
        self._lock = threading.Lock()
        self._requests: Deque[Dict[str, float]] = deque(maxlen=max(maxlen, 1))
        self._baseline = dict(baseline or {})
        self._baseline_info = dict(baseline_info or {})

    def observe(self, stage_seconds: Mapping[str, object]) -> None:
        """Record one request's per-stage seconds (non-numeric keys dropped)."""
        cleaned = {
            str(stage): float(seconds)
            for stage, seconds in stage_seconds.items()
            if isinstance(seconds, (int, float))
        }
        if not cleaned:
            return
        with self._lock:
            self._requests.append(cleaned)

    def __len__(self) -> int:
        with self._lock:
            return len(self._requests)

    @property
    def baseline(self) -> Dict[str, float]:
        return dict(self._baseline)

    def _samples(self) -> Dict[str, List[float]]:
        with self._lock:
            requests = list(self._requests)
        samples: Dict[str, List[float]] = {}
        for request in requests:
            for stage, seconds in request.items():
                samples.setdefault(stage, []).append(seconds)
        return samples

    def medians(self) -> Dict[str, float]:
        """Rolling per-stage median seconds over the window."""
        return {
            stage: statistics.median(values)
            for stage, values in self._samples().items()
        }

    def ratio(self, stage: str) -> float:
        """Rolling median / baseline median for one stage (nan when unknown).

        ``nan`` — not 0 or 1 — when there is no window data or no
        baseline for the stage: the metrics layer renders nan natively
        and dashboards treat it as "no data", which is the truth.
        """
        baseline = self._baseline.get(stage)
        samples = self._samples().get(stage)
        if not samples or not baseline or baseline <= 0:
            return float("nan")
        return statistics.median(samples) / baseline

    def snapshot(self) -> Dict[str, object]:
        """The ``GET /v1/perf`` document."""
        samples = self._samples()
        stages: Dict[str, Dict[str, object]] = {}
        for stage in sorted(set(samples) | set(self._baseline)):
            values = sorted(samples.get(stage, ()))
            entry: Dict[str, object] = {"count": len(values)}
            if values:
                entry["median_seconds"] = statistics.median(values)
                entry["max_seconds"] = values[-1]
                entry["p95_seconds"] = values[
                    min(len(values) - 1, int(0.95 * (len(values) - 1)))
                ]
            baseline = self._baseline.get(stage)
            if baseline is not None:
                entry["baseline_seconds"] = baseline
                if values and baseline > 0:
                    entry["baseline_ratio"] = statistics.median(values) / baseline
            stages[stage] = entry
        with self._lock:
            size, maxlen = len(self._requests), self._requests.maxlen
        return {
            "schema": 1,
            "window": {"requests": size, "maxlen": maxlen},
            "baseline": {
                "stages": dict(self._baseline),
                "info": dict(self._baseline_info),
            },
            "stages": stages,
        }
